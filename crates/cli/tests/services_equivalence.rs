//! The load-bearing equivalence harness for the data-driven service
//! profiles: every runner must produce byte-identical output whether its
//! profile data comes from the hard-wired Rust constructors or from the
//! shipped `configs/services/*.json` files (`--services`). Existing
//! golden fixtures are compared as-committed — zero re-blessing — so the
//! refactor is pinned to be a pure data-path change.
//!
//! Also home of the golden fixtures for the three new workload packs
//! (`ai-inference`, `kvstore`, `pqc`), following the `golden_faults.json`
//! pattern:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test -p accelerometer-cli --test services_equivalence
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use accelerometer_cli::run;
use accelerometer_fleet::set_active_registry;

/// Serializes every test in this binary: `--services` installs a
/// process-wide registry, and the builtin sides of each comparison must
/// never observe a sibling thread's loaded registry.
static REGISTRY_GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    REGISTRY_GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

fn services_dir() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../configs/services")
        .to_string_lossy()
        .into_owned()
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/{name}"))
}

/// Runs a command twice — builtin path, then `--services` data path —
/// and returns both outputs with the registry global restored.
fn run_both_paths(cmd: &[&str]) -> (String, String) {
    let dir = services_dir();
    set_active_registry(None);
    let builtin = run(&args(cmd)).expect("builtin path runs");
    let mut with_flag = vec!["--services", dir.as_str()];
    with_flag.extend_from_slice(cmd);
    let data = run(&args(&with_flag)).expect("data path runs");
    set_active_registry(None);
    (builtin, data)
}

#[test]
fn faults_through_the_data_path_matches_the_committed_golden_fixture() {
    let _guard = lock();
    let (builtin, data) = run_both_paths(&["faults"]);
    assert_eq!(builtin, data, "faults output depends on the profile source");
    // The pre-existing fixture, byte-for-byte, driven through JSON
    // profiles — this is the zero-re-bless guarantee.
    let expected = fs::read_to_string(fixture_path("golden_faults.json"))
        .expect("committed golden_faults.json fixture");
    assert_eq!(expected, data, "data path drifted from the golden fixture");
}

#[test]
fn sharded_faults_through_the_data_path_matches_its_golden_fixture() {
    let _guard = lock();
    let (builtin, data) = run_both_paths(&["--shards", "2", "faults"]);
    accelerometer_sim::set_default_shards(0);
    assert_eq!(builtin, data);
    let expected = fs::read_to_string(fixture_path("golden_faults_sharded.json"))
        .expect("committed golden_faults_sharded.json fixture");
    assert_eq!(expected, data);
}

#[test]
fn every_paper_table_is_byte_identical_through_the_data_path() {
    let _guard = lock();
    // Includes table6 (the simulator A/B validation) and table7 — the
    // rows whose case-study and recommendation data now ride in JSON.
    let (builtin, data) = run_both_paths(&["tables", "all"]);
    assert_eq!(builtin, data, "a table depends on the profile source");
    assert!(data.contains("Table 6"), "{data}");
}

#[test]
fn project_and_characterize_are_byte_identical_through_the_data_path() {
    let _guard = lock();
    let (builtin, data) = run_both_paths(&["project"]);
    assert_eq!(builtin, data);
    let (builtin, data) =
        run_both_paths(&["characterize", "cache1", "--samples", "4000"]);
    assert_eq!(builtin, data);
}

#[test]
fn validate_case_study_is_byte_identical_through_the_data_path() {
    let _guard = lock();
    let (builtin, data) = run_both_paths(&["validate", "--case", "aes-ni"]);
    assert_eq!(builtin, data);
    assert!(data.contains("case study aes-ni"), "{data}");
}

#[test]
fn new_pack_characterizations_match_their_golden_fixtures() {
    let _guard = lock();
    set_active_registry(None);
    for slug in ["ai-inference", "kvstore", "pqc"] {
        let out = run(&args(&["characterize", slug, "--samples", "5000"]))
            .expect("pack characterizes");
        let path = fixture_path(&format!("golden_pack_{slug}.txt"));
        if std::env::var_os("GOLDEN_BLESS").is_some() {
            fs::write(&path, &out).expect("write pack fixture");
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing fixture {path:?} ({e}); run with GOLDEN_BLESS=1")
        });
        assert_eq!(
            expected, out,
            "{slug} characterization drifted; if intentional, regenerate with GOLDEN_BLESS=1"
        );
    }
}

#[test]
fn pack_fixtures_reflect_their_defining_taxes() {
    // The AI pack's story (per AI Tax): pre/post-processing overheads
    // tax more cycles than the inference core itself.
    let ai = fs::read_to_string(fixture_path("golden_pack_ai-inference.txt"))
        .expect("ai-inference fixture");
    assert!(ai.contains("Prediction/Ranking"), "{ai}");
    // The kvstore pack leans on hashing + spin locks (kernels::kvstore's
    // tag-probed shard); the PQC pack on SSL/Math/Hashing leaves.
    let kv = fs::read_to_string(fixture_path("golden_pack_kvstore.txt"))
        .expect("kvstore fixture");
    assert!(kv.contains("characterization of KVStore"), "{kv}");
    let pqc = fs::read_to_string(fixture_path("golden_pack_pqc.txt")).expect("pqc fixture");
    assert!(pqc.contains("characterization of PQC"), "{pqc}");
}

#[test]
fn services_validate_gates_the_shipped_directory_and_rejects_corruption() {
    let _guard = lock();
    set_active_registry(None);
    let out = run(&args(&["services", "validate", &services_dir()])).expect("shipped dir valid");
    assert!(out.contains("ok: 11 valid service spec(s)"), "{out}");

    // A malformed pack must fail the gate with a structured message.
    let dir = std::env::temp_dir().join(format!("accel-badpack-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("temp dir");
    let good = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../configs/services/kvstore.json"),
    )
    .expect("kvstore spec");
    // Knock one functionality share off balance: sums to ~95%, not 100%.
    let bad = good.replacen("34.0", "29.0", 1);
    assert_ne!(good, bad, "corruption must change the spec");
    fs::write(dir.join("kvstore.json"), bad).expect("write corrupt spec");
    let err = run(&args(&["services", "validate", &dir.to_string_lossy()])).unwrap_err();
    assert!(err.contains("breakdown must sum to ~100%"), "{err}");
    fs::remove_dir_all(&dir).ok();

    // And `--services` refuses to install the corrupt data at all.
    set_active_registry(None);
}

#[test]
fn services_list_and_export_round_trip() {
    let _guard = lock();
    set_active_registry(None);
    let out = run(&args(&["services", "list"])).expect("list runs");
    for slug in ["web", "ai-inference", "kvstore", "pqc"] {
        assert!(out.contains(slug), "{out}");
    }
    let dir = std::env::temp_dir().join(format!("accel-export-cli-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let out = run(&args(&["services", "export", &dir.to_string_lossy()])).expect("export runs");
    assert_eq!(out.lines().count(), 11, "{out}");
    // Exported files are byte-identical to the shipped ones.
    for slug in ["web", "cache1", "pqc"] {
        let exported = fs::read_to_string(dir.join(format!("{slug}.json"))).expect("exported");
        let shipped = fs::read_to_string(
            PathBuf::from(services_dir()).join(format!("{slug}.json")),
        )
        .expect("shipped");
        assert_eq!(exported, shipped, "{slug}");
    }
    fs::remove_dir_all(&dir).ok();
}
