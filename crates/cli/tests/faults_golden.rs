//! Golden-output tests for `accelctl faults`: the committed fixture pins
//! the report byte-for-byte, proves it is identical at any `--jobs`
//! width, and demonstrates the acceptance properties — retries alone
//! yield strictly higher goodput than no recovery, and retry + fallback
//! additionally zeroes failed requests and collapses the outage tail by
//! an order of magnitude while its host re-executions (real, scheduled
//! core slices since the fallback-capacity fix) cost at most a few
//! percent of goodput.
//!
//! To regenerate after an intentional output change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test -p accelerometer-cli --test faults_golden
//! ```
//!
//! Blessing also rewrites `configs/faults-degradation.json`, keeping the
//! shipped scenario file in lockstep with the built-in demo scenario.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use accelerometer_cli::run;
use accelerometer_sim::faultsweep::{demo_scenario, FaultSweepReport};

/// Serializes the tests that touch the process-wide `--shards` default:
/// the classic golden test must never observe a sharded global left by
/// the sharded golden test running on a sibling thread.
static SHARDS_GLOBAL: Mutex<()> = Mutex::new(());

fn lock_shards_global() -> std::sync::MutexGuard<'static, ()> {
    SHARDS_GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_faults.json")
}

fn sharded_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_faults_sharded.json")
}

fn config_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../configs/faults-degradation.json")
}

#[test]
fn faults_report_matches_golden_fixture_at_any_jobs_width() {
    let _guard = lock_shards_global();
    let one = run(&args(&["--jobs", "1", "faults"])).expect("faults runs");
    let many = run(&args(&["--jobs", "4", "faults"])).expect("faults runs");
    accelerometer::exec::set_default_jobs(0);
    assert_eq!(one, many, "faults report must not depend on --jobs");

    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        fs::write(&path, &one).expect("write fixture");
        let scenario_json = serde_json::to_string_pretty(&demo_scenario(20_260_806))
            .expect("scenario serializes");
        fs::write(config_path(), scenario_json).expect("write scenario config");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); run with GOLDEN_BLESS=1"));
    assert_eq!(
        expected, one,
        "golden faults report drifted; if intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn sharded_faults_report_matches_its_golden_fixture_at_any_width() {
    let _guard = lock_shards_global();
    let one = run(&args(&["--shards", "1", "faults"])).expect("faults runs");
    let four = run(&args(&["--shards", "4", "faults"])).expect("faults runs");
    accelerometer_sim::set_default_shards(0);
    let classic = run(&args(&["faults"])).expect("faults runs");
    assert_eq!(one, four, "sharded faults report must not depend on --shards");
    assert_ne!(
        one, classic,
        "the demo scenario shards 2-ways; sharded output is a distinct run"
    );

    let path = sharded_fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::write(&path, &one).expect("write sharded fixture");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); run with GOLDEN_BLESS=1"));
    assert_eq!(
        expected, one,
        "sharded golden faults report drifted; if intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn sharded_fixture_still_shows_recovery_beating_no_recovery() {
    let report: FaultSweepReport =
        serde_json::from_str(&fs::read_to_string(sharded_fixture_path()).expect("fixture exists"))
            .expect("fixture parses");
    let outcome = |name: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("policy {name} in fixture"))
    };
    let none = outcome("no-recovery");
    let retry = outcome("retry");
    let recovered = outcome("retry-fallback");
    assert!(
        retry.goodput_per_gcycle > none.goodput_per_gcycle,
        "goodput {:.2} vs {:.2}",
        retry.goodput_per_gcycle,
        none.goodput_per_gcycle
    );
    assert_eq!(recovered.metrics.faults.failed_requests, 0);
    assert!(
        recovered.p99_latency < none.p99_latency,
        "p99 {:.0} vs {:.0}",
        recovered.p99_latency,
        none.p99_latency
    );
    // Honest accounting: fallback re-executions are scheduled slices,
    // so the sharded run conserves core capacity too.
    for o in &report.outcomes {
        assert!(
            o.metrics.core_utilization <= 1.0 + 1e-9,
            "{}: core util {}",
            o.policy,
            o.metrics.core_utilization
        );
    }
}

#[test]
fn shipped_scenario_config_matches_the_builtin_demo() {
    let text = fs::read_to_string(config_path()).expect("configs/faults-degradation.json exists");
    let parsed: accelerometer_sim::FaultScenario =
        serde_json::from_str(&text).expect("scenario parses");
    assert_eq!(parsed, demo_scenario(20_260_806));
}

#[test]
fn fixture_shows_recovery_strictly_beats_no_recovery() {
    let report: FaultSweepReport =
        serde_json::from_str(&fs::read_to_string(fixture_path()).expect("fixture exists"))
            .expect("fixture parses");
    let outcome = |name: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("policy {name} in fixture"))
    };
    let none = outcome("no-recovery");
    let retry = outcome("retry");
    let recovered = outcome("retry-fallback");
    // Retries convert transient failures into successes without
    // consuming host capacity: a strict goodput win.
    assert!(
        retry.goodput_per_gcycle > none.goodput_per_gcycle,
        "goodput {:.2} vs {:.2}",
        retry.goodput_per_gcycle,
        none.goodput_per_gcycle
    );
    // Fallback additionally eliminates failures and collapses the tail;
    // its host re-executions are real scheduled slices, so that
    // protection costs a bounded few percent of goodput during a full
    // outage (where unprotected requests are merely late, not lost).
    assert_eq!(recovered.metrics.faults.failed_requests, 0);
    assert!(
        recovered.p99_latency * 10.0 < none.p99_latency,
        "p99 {:.0} vs {:.0}",
        recovered.p99_latency,
        none.p99_latency
    );
    assert!(
        recovered.goodput_per_gcycle > 0.95 * none.goodput_per_gcycle,
        "goodput {:.2} vs {:.2}",
        recovered.goodput_per_gcycle,
        none.goodput_per_gcycle
    );
    // Capacity is conserved for every policy — the old phantom
    // accounting pushed retry-fallback's utilization past 1.
    for o in &report.outcomes {
        assert!(
            o.metrics.core_utilization <= 1.0 + 1e-9,
            "{}: core util {}",
            o.policy,
            o.metrics.core_utilization
        );
    }
    // Fallback alone caps the damage but cannot restore the SLO; the
    // combined policy (retries + fallback + admission control) does.
    assert!(!none.slo_met);
    assert!(!recovered.slo_met);
    assert!(outcome("full").slo_met);
}
