//! Golden-output tests for `accelctl faults`: the committed fixture pins
//! the report byte-for-byte, proves it is identical at any `--jobs`
//! width, and demonstrates the acceptance property — retry + fallback
//! recovery yields strictly higher goodput and a strictly lower p99 than
//! no recovery under device degradation.
//!
//! To regenerate after an intentional output change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test -p accelerometer-cli --test faults_golden
//! ```
//!
//! Blessing also rewrites `configs/faults-degradation.json`, keeping the
//! shipped scenario file in lockstep with the built-in demo scenario.

use std::fs;
use std::path::PathBuf;

use accelerometer_cli::run;
use accelerometer_sim::faultsweep::{demo_scenario, FaultSweepReport};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_faults.json")
}

fn config_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../configs/faults-degradation.json")
}

#[test]
fn faults_report_matches_golden_fixture_at_any_jobs_width() {
    let one = run(&args(&["--jobs", "1", "faults"])).expect("faults runs");
    let many = run(&args(&["--jobs", "4", "faults"])).expect("faults runs");
    accelerometer::exec::set_default_jobs(0);
    assert_eq!(one, many, "faults report must not depend on --jobs");

    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        fs::write(&path, &one).expect("write fixture");
        let scenario_json = serde_json::to_string_pretty(&demo_scenario(20_260_806))
            .expect("scenario serializes");
        fs::write(config_path(), scenario_json).expect("write scenario config");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); run with GOLDEN_BLESS=1"));
    assert_eq!(
        expected, one,
        "golden faults report drifted; if intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn shipped_scenario_config_matches_the_builtin_demo() {
    let text = fs::read_to_string(config_path()).expect("configs/faults-degradation.json exists");
    let parsed: accelerometer_sim::FaultScenario =
        serde_json::from_str(&text).expect("scenario parses");
    assert_eq!(parsed, demo_scenario(20_260_806));
}

#[test]
fn fixture_shows_recovery_strictly_beats_no_recovery() {
    let report: FaultSweepReport =
        serde_json::from_str(&fs::read_to_string(fixture_path()).expect("fixture exists"))
            .expect("fixture parses");
    let outcome = |name: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("policy {name} in fixture"))
    };
    let none = outcome("no-recovery");
    let recovered = outcome("retry-fallback");
    assert!(
        recovered.goodput_per_gcycle > none.goodput_per_gcycle,
        "goodput {:.2} vs {:.2}",
        recovered.goodput_per_gcycle,
        none.goodput_per_gcycle
    );
    assert!(
        recovered.p99_latency < none.p99_latency,
        "p99 {:.0} vs {:.0}",
        recovered.p99_latency,
        none.p99_latency
    );
    // Fallback alone caps the damage but cannot restore the SLO; the
    // combined policy (retries + fallback + admission control) does.
    assert!(!none.slo_met);
    assert!(!recovered.slo_met);
    assert!(outcome("full").slo_met);
}
