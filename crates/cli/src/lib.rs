//! # accelctl
//!
//! The Accelerometer artifact workflow as a command-line tool
//! (Appendix A.5 of the paper): "(a) identify model parameters for the
//! accelerator under test, (b) input these model parameters into a
//! configuration file, and (c) run the Accelerometer model for these
//! model parameters to estimate speedup from acceleration."
//!
//! Commands:
//!
//! * `accelctl estimate <config.json>` — evaluate every scenario in a
//!   parameter file (see [`accelerometer::config`] for the format);
//! * `accelctl breakeven --cb <c/B> --a <A> [--o0 N] [--l N] [--q N]
//!   [--o1 N] [--design D] [--strategy S]` — minimum lucrative `g`;
//! * `accelctl sweep <config.json> --axis <axis> --from <x> --to <x>
//!   [--points N]` — sweep one parameter of the file's first scenario;
//! * `accelctl project` — the §5 acceleration recommendations (Fig. 20);
//! * `accelctl characterize <service> [--samples N] [--seed N]` — run the
//!   synthetic profiler and print the §2 breakdowns;
//! * `accelctl validate [--seed N] [--case C]` — run the Table 6 A/B
//!   validation in the simulator (optionally a single case study, or
//!   `--case fallback` for the fault-capacity validation table);
//! * `accelctl faults [scenario.json] [--seed N]` — sweep a fault
//!   scenario across recovery policies and emit a JSON report
//!   (deterministic at any `--jobs` width);
//! * `accelctl timeline <design>` — render the Figs. 12–14 offload
//!   timeline for a threading design;
//! * `accelctl bounds <config.json>` — decompose each scenario's cycle
//!   budget and name the dominant performance bound;
//! * `accelctl slo <config.json> [--min-reduction R]` — latency-SLO
//!   guardrails: tolerable L, n, and required A per scenario;
//! * `accelctl tables <id|all>` — regenerate the paper's tables;
//! * `accelctl services list|validate <path>|export <dir>` — inspect,
//!   check, or regenerate the data-driven service profiles under
//!   `configs/services/`.
//!
//! The global `--services <dir|file>` flag loads service profiles from
//! JSON and routes every command through them instead of the built-in
//! constructors — byte-identically for the shipped files, which the
//! golden equivalence suite pins.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    bounds, project, slo, sweep, throughput_breakeven, AccelerationStrategy, BreakEven,
    ConfigFile, Cycles, DriverMode, KernelCost, LatencySlo, OffloadContext, OffloadOverheads,
    Scenario, ThreadingDesign, Timeline, TimelineSpec,
};
use accelerometer_fleet::params::all_recommendations;
use accelerometer_fleet::{
    active_registry, all_case_studies, profile, ServiceId, ServiceRegistry,
};
use accelerometer_kernels::dispatch;
use accelerometer_profiler::{analyze, to_folded, TraceGenerator};
use accelerometer_sim::faultsweep::demo_scenario;
use accelerometer_sim::{
    run_fault_sweep, set_default_shards, set_trace_reuse, simulate, validate_all,
    validate_fallback, Calibrator, FaultScenario, SimError, CASE_STUDY_NAMES,
};

/// Top-level usage text.
pub const USAGE: &str = "usage: accelctl [--jobs N] [--shards N] [--trace-reuse on|off] [--isa scalar|auto] [--services <dir|file>] <command> [args]
global flags:
  --jobs N                        worker threads for independent runs
                                  (default: available parallelism; results
                                  are byte-identical at any N)
  --shards N                      shard each simulation across worker
                                  threads (default: off). The shard count
                                  is derived from the configuration, so
                                  output is byte-identical at any N >= 1;
                                  sharded output is a different (documented)
                                  decomposition than the unsharded engine
  --trace-reuse on|off            reuse one frozen workload trace across a
                                  sweep's grid points (default: on). Both
                                  settings are byte-identical; off exists
                                  to prove it and to measure the sampling
                                  cost it removes
  --isa scalar|auto               pin the measured kernels' ISA dispatch
                                  (default: auto, or KERNELS_FORCE_SCALAR=1).
                                  Kernel outputs are bit-identical either
                                  way; only wall-clock changes, which is
                                  what `calibrate` measures
  --services <dir|file>           load service profiles from JSON spec
                                  files (see configs/services/) instead of
                                  the built-in constructors; services
                                  without a file keep their builtin. The
                                  shipped files reproduce the builtin
                                  output byte-for-byte
commands:
  estimate <config.json>          evaluate scenarios from a parameter file
  breakeven --cb <c/B> --a <A> [--o0 N] [--l N] [--q N] [--o1 N]
            [--design D] [--strategy S]
  sweep <config.json> --axis <peak-speedup|interface-latency|offloads|
        kernel-fraction|queueing|thread-switch> --from X --to X [--points N]
  project                         Section 5 recommendations (Fig. 20)
  characterize <service> [--samples N] [--seed N] [--folded]
  validate [--seed N] [--case C]  Table 6 A/B validation in the simulator
                                  (C: aes-ni | encryption | inference |
                                  fallback — the fault-capacity table:
                                  model fallback-load term vs simulated
                                  A/B per failure probability)
  calibrate                       measure the case-study kernels on this
                                  host, both ISA tiers paired in the same
                                  session; prints per-kernel cycles/byte
                                  and the measured acceleration factor
  faults [scenario.json] [--seed N]   fault-injection sweep across recovery
                                  policies; JSON report, byte-identical at
                                  any --jobs width
  timeline <sync|sync-os|async-same-thread|async-distinct-thread|
            async-no-response>
  bounds <config.json>            dominant performance bound per scenario
  slo <config.json> [--min-reduction R]   latency-SLO guardrails
  tables <id|all>                 regenerate the paper's tables
                                  (table1 .. table7)
  services list                   service ids, slugs, and profile sources
  services validate <dir|file>    parse + validate profile JSON; exits
                                  non-zero on the first malformed spec
  services export <dir>           write every builtin profile as
                                  <dir>/<slug>.json (the generator for
                                  configs/services/)";

/// Runs the CLI on pre-split arguments (excluding the program name),
/// returning the text to print.
///
/// # Errors
///
/// Returns a human-readable error message for unknown commands, missing
/// arguments, unreadable files, or invalid parameters.
pub fn run(args: &[String]) -> Result<String, String> {
    let args = apply_jobs_flag(args)?;
    let args = apply_shards_flag(&args)?;
    let args = apply_trace_reuse_flag(&args)?;
    let mut args = apply_isa_flag(&args)?;
    accelerometer_fleet::apply_services_flag(&mut args)?;
    let args = args.as_slice();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("calibrate") => Ok(cmd_calibrate()),
        Some("breakeven") => cmd_breakeven(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("project") => Ok(cmd_project()),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("slo") => cmd_slo(&args[1..]),
        Some("tables") => cmd_tables(&args[1..]),
        Some("services") => cmd_services(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// Strips the global `--jobs N` flag, installing `N` as the default
/// worker count for every pool-backed command (`validate`, `estimate`,
/// batch sweeps). Jobs only affect wall-clock time, never results.
fn apply_jobs_flag(args: &[String]) -> Result<Vec<String>, String> {
    let mut args = args.to_vec();
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(args);
    };
    let value = args
        .get(i + 1)
        .ok_or("--jobs requires a value (worker thread count)")?;
    let jobs: usize = value
        .parse()
        .map_err(|_| format!("--jobs expects a positive integer, got '{value}'"))?;
    if jobs == 0 {
        return Err("--jobs expects a positive integer, got 0".to_owned());
    }
    accelerometer::exec::set_default_jobs(jobs);
    args.drain(i..=i + 1);
    Ok(args)
}

/// Strips the global `--shards N` flag, routing every simulation-backed
/// command through the sharded runner. `N` picks only the worker-thread
/// width — the shard decomposition itself is derived from each
/// configuration — so any `N >= 1` produces byte-identical output.
fn apply_shards_flag(args: &[String]) -> Result<Vec<String>, String> {
    let mut args = args.to_vec();
    let Some(i) = args.iter().position(|a| a == "--shards") else {
        return Ok(args);
    };
    let value = args
        .get(i + 1)
        .ok_or("--shards requires a value (worker thread count)")?;
    let shards: usize = value
        .parse()
        .map_err(|_| format!("--shards expects a positive integer, got '{value}'"))?;
    if shards == 0 {
        return Err("--shards expects a positive integer, got 0".to_owned());
    }
    set_default_shards(shards);
    args.drain(i..=i + 1);
    Ok(args)
}

/// Strips the global `--trace-reuse on|off` flag, toggling cross-point
/// frozen-trace reuse in the sweep runners. Both settings produce
/// byte-identical output (the tier-1 smoke diffs them); `off` exists to
/// prove that and to measure the sampling cost reuse removes.
fn apply_trace_reuse_flag(args: &[String]) -> Result<Vec<String>, String> {
    let mut args = args.to_vec();
    let Some(i) = args.iter().position(|a| a == "--trace-reuse") else {
        return Ok(args);
    };
    let value = args
        .get(i + 1)
        .ok_or("--trace-reuse requires a value (on or off)")?;
    match value.as_str() {
        "on" => set_trace_reuse(true),
        "off" => set_trace_reuse(false),
        other => return Err(format!("--trace-reuse expects 'on' or 'off', got '{other}'")),
    }
    args.drain(i..=i + 1);
    Ok(args)
}

/// Strips the global `--isa scalar|auto` flag, pinning the kernel
/// crate's runtime ISA dispatch. `scalar` forces every kernel onto its
/// scalar reference path (the same effect as `KERNELS_FORCE_SCALAR=1`);
/// `auto` uses whatever the host exposes. Kernel outputs are
/// bit-identical either way — the mode changes only wall-clock, which
/// is exactly what `calibrate` measures.
fn apply_isa_flag(args: &[String]) -> Result<Vec<String>, String> {
    let mut args = args.to_vec();
    let Some(i) = args.iter().position(|a| a == "--isa") else {
        return Ok(args);
    };
    let value = args
        .get(i + 1)
        .ok_or("--isa requires a value (scalar or auto)")?;
    match value.as_str() {
        "scalar" => dispatch::set_isa_mode(dispatch::IsaMode::Scalar),
        "auto" => dispatch::set_isa_mode(dispatch::IsaMode::Auto),
        other => return Err(format!("--isa expects 'scalar' or 'auto', got '{other}'")),
    }
    args.drain(i..=i + 1);
    Ok(args)
}

/// `accelctl calibrate`: measure every case-study kernel on this host,
/// pairing the dispatched and scalar tiers in the same session so the
/// printed acceleration factor is a genuine A/B (same buffers, same
/// driver, same scheduler weather). Numbers are timing-dependent by
/// nature — this command is the interactive companion to the committed
/// `BENCH_kernels.json` medians, not a golden output.
fn cmd_calibrate() -> String {
    // The paper's 2 GHz busy frequency; matches the harness convention.
    let cal = Calibrator::new(2.0e9, 32, 16);
    let mut out = String::new();
    out.push_str(&format!(
        "host ISA: detected {} | active {}\n",
        dispatch::detected_summary(),
        dispatch::active_summary()
    ));
    out.push_str(&format!(
        "{:<12} {:>16} {:>16} {:>8}\n",
        "kernel", "dispatched c/B", "scalar c/B", "factor"
    ));
    for pair in cal.paired_case_studies() {
        out.push_str(&format!(
            "{:<12} {:>16.4} {:>16.4} {:>7.2}x\n",
            pair.dispatched.name,
            pair.dispatched.cycles_per_byte().get(),
            pair.scalar.cycles_per_byte().get(),
            pair.acceleration_factor()
        ));
    }
    out.push_str(
        "factor = scalar/dispatched cycles per byte; < 1.00x means the\n\
         SIMD path loses at this granularity (reported honestly).",
    );
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_f64(args: &[String], name: &str, default: Option<f64>) -> Result<f64, String> {
    match flag_value(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got '{v}'")),
        None => default.ok_or_else(|| format!("missing required flag {name}")),
    }
}

fn parse_design(value: &str) -> Result<ThreadingDesign, String> {
    serde_json::from_value(serde_json::Value::String(value.to_owned()))
        .map_err(|_| format!("unknown threading design '{value}'"))
}

fn parse_strategy(value: &str) -> Result<AccelerationStrategy, String> {
    serde_json::from_value(serde_json::Value::String(value.to_owned()))
        .map_err(|_| format!("unknown strategy '{value}'"))
}

fn parse_service(value: &str) -> Result<ServiceId, String> {
    ServiceId::ALL
        .into_iter()
        .find(|s| s.to_string().eq_ignore_ascii_case(value))
        .ok_or_else(|| format!("unknown service '{value}' (expected Web, Feed1, ..., Cache3)"))
}

fn load_config(path: &str) -> Result<ConfigFile, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ConfigFile::from_json(&text).map_err(|e| e.to_string())
}

fn format_scenario_estimate(
    name: &str,
    scenario: &Scenario,
    est: &accelerometer::Estimate,
) -> String {
    format!(
        "{name}: throughput speedup {:.4}x ({:+.2}%), latency reduction {:.4}x ({:+.2}%)  [{} / {}]",
        est.throughput_speedup,
        est.throughput_gain_percent(),
        est.latency_reduction,
        est.latency_gain_percent(),
        scenario.design,
        scenario.strategy,
    )
}

fn cmd_estimate(args: &[String]) -> Result<String, String> {
    let path = args
        .first()
        .ok_or("estimate requires a config file path")?;
    let cfg = load_config(path)?;
    let scenarios = cfg.to_scenarios().map_err(|e| e.to_string())?;
    if scenarios.is_empty() {
        return Err("config contains no scenarios".to_owned());
    }
    // Evaluate all scenarios through the worker pool (honors --jobs).
    let bare: Vec<Scenario> = scenarios.iter().map(|(_, s)| *s).collect();
    let estimates = sweep::estimate_batch(&bare);
    let mut out = String::new();
    for ((name, scenario), est) in scenarios.iter().zip(&estimates) {
        let _ = writeln!(out, "{}", format_scenario_estimate(name, scenario, est));
    }
    Ok(out)
}

fn cmd_breakeven(args: &[String]) -> Result<String, String> {
    let cb = parse_f64(args, "--cb", None)?;
    let a = parse_f64(args, "--a", None)?;
    let o0 = parse_f64(args, "--o0", Some(0.0))?;
    let l = parse_f64(args, "--l", Some(0.0))?;
    let q = parse_f64(args, "--q", Some(0.0))?;
    let o1 = parse_f64(args, "--o1", Some(0.0))?;
    let design = match flag_value(args, "--design") {
        Some(d) => parse_design(&d)?,
        None => ThreadingDesign::Sync,
    };
    let strategy = match flag_value(args, "--strategy") {
        Some(s) => parse_strategy(&s)?,
        None => AccelerationStrategy::OffChip,
    };
    let ctx = OffloadContext::new(OffloadOverheads::new(o0, l, q, o1), a, design, strategy);
    let cost = KernelCost::linear(cycles_per_byte(cb));
    let be = throughput_breakeven(&cost, &ctx);
    Ok(match be {
        BreakEven::AtLeast(g) => format!(
            "offloads improve throughput when g >= {:.1} B  [{design} / {strategy}]",
            g.get()
        ),
        BreakEven::Always => format!("every offload improves throughput  [{design} / {strategy}]"),
        BreakEven::Never => format!(
            "no granularity improves throughput (A = {a} cannot recoup overheads)  [{design} / {strategy}]"
        ),
    })
}

fn cmd_sweep(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("sweep requires a config file path")?;
    let cfg = load_config(path)?;
    let (name, scenario) = cfg
        .to_scenarios()
        .map_err(|e| e.to_string())?
        .into_iter()
        .next()
        .ok_or("config contains no scenarios")?;
    let axis_name = flag_value(args, "--axis").ok_or("missing required flag --axis")?;
    let axis: sweep::SweepAxis =
        serde_json::from_value(serde_json::Value::String(axis_name.clone()))
            .map_err(|_| format!("unknown sweep axis '{axis_name}'"))?;
    let from = parse_f64(args, "--from", None)?;
    let to = parse_f64(args, "--to", None)?;
    let points = parse_f64(args, "--points", Some(10.0))? as usize;
    if from >= to || points < 2 {
        return Err("sweep requires --from < --to and --points >= 2".to_owned());
    }
    let values = if from > 0.0 {
        sweep::log_space(from, to, points)
    } else {
        sweep::lin_space(from, to, points)
    };
    let mut out = format!("sweep of {axis_name} for scenario '{name}':\n");
    for point in sweep::sweep(&scenario, axis, &values) {
        let _ = writeln!(
            out,
            "  {axis_name} = {:>12.2}: speedup {:.4}x, latency reduction {:.4}x",
            point.x, point.estimate.throughput_speedup, point.estimate.latency_reduction
        );
    }
    Ok(out)
}

fn cmd_project() -> String {
    let mut out = String::from("Section 5 acceleration recommendations (Fig. 20):\n");
    for rec in all_recommendations() {
        let _ = writeln!(out, "{} (ideal {:.1}%):", rec.name, rec.paper_ideal_percent);
        for cfg in &rec.configs {
            let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy)
                .expect("static recommendation parameters are valid");
            let breakeven = match p.breakeven {
                BreakEven::AtLeast(g) => format!("g >= {:.0} B", g.get()),
                BreakEven::Always => "all offloads".to_owned(),
                BreakEven::Never => "never lucrative".to_owned(),
            };
            let _ = writeln!(
                out,
                "  {:<18} speedup {:>6.2}%  latency {:>6.2}%  n = {:>9.0}  ({breakeven})",
                cfg.label,
                p.estimate.throughput_gain_percent(),
                p.estimate.latency_gain_percent(),
                p.selection.offloads,
            );
        }
    }
    out
}

fn cmd_characterize(args: &[String]) -> Result<String, String> {
    let service = parse_service(args.first().ok_or("characterize requires a service name")?)?;
    let samples = parse_f64(args, "--samples", Some(50_000.0))? as usize;
    let seed = parse_f64(args, "--seed", Some(42.0))? as u64;
    if samples == 0 {
        return Err("--samples must be positive".to_owned());
    }
    let mut generator = TraceGenerator::new(profile(service), seed);
    let traces = generator.generate(samples);
    if args.iter().any(|a| a == "--folded") {
        // Collapsed-stack output for flamegraph tooling.
        return Ok(to_folded(&traces));
    }
    let report = analyze(&traces, generator.registry());
    Ok(format!("characterization of {service}:\n{}", report.render()))
}

fn cmd_validate(args: &[String]) -> Result<String, String> {
    let seed = parse_f64(args, "--seed", Some(20_260_706.0))? as u64;
    if let Some(name) = flag_value(args, "--case") {
        if name == "fallback" {
            // Not a Table 6 row: the fault-capacity analogue. Model's
            // fallback-load term vs a simulated A/B per failure rate.
            let mut out = String::from(
                "fallback-capacity validation (model vs simulated A/B; retries 1, fallback-to-host):\n",
            );
            for r in validate_fallback(seed) {
                let _ = writeln!(
                    out,
                    "  p = {:.1}  E[a] {:.2}  p_fb {:.3}  model {:>6.2}%  simulated {:>6.2}%  fallbacks {:>5}  core util {:.4}  (model-vs-sim {:.2} pts)",
                    r.failure_probability,
                    r.expected_attempts,
                    r.fallback_probability,
                    r.model_gain_percent,
                    r.simulated_gain_percent,
                    r.fallbacks,
                    r.core_utilization,
                    r.model_vs_simulated_points(),
                );
            }
            out.push_str(
                "fallback re-executions are scheduled core slices: the model's\n\
                 p_fb*alpha load term tracks the simulator within 2 points\n",
            );
            return Ok(out);
        }
        let studies = all_case_studies();
        let Some(study) = studies.iter().find(|s| s.name == name) else {
            // `fallback` is a CLI-level case (handled above), not a sim
            // case study, so append it to the sim error's valid list.
            return Err(format!(
                "{}; 'fallback' selects the fault-capacity table",
                SimError::UnknownCaseStudy {
                    name,
                    valid: CASE_STUDY_NAMES,
                }
            ));
        };
        let (v, _ab) = simulate(study, seed).map_err(|e| e.to_string())?;
        return Ok(format!(
            "case study {}: model {:.2}%  simulated {:.2}%  paper est {:.1}% real {:.2}%  (model-vs-sim {:.2} pts)\n",
            v.name,
            v.model_estimate_percent,
            v.simulated_percent,
            v.paper_estimated_percent,
            v.paper_real_percent,
            v.model_vs_simulated_points(),
        ));
    }
    let mut out = String::from("Table 6 validation (model vs simulated A/B vs paper):\n");
    for v in validate_all(seed) {
        let _ = writeln!(
            out,
            "  {:<11} model {:>6.2}%  simulated {:>6.2}%  paper est {:>5.1}% real {:>6.2}%  (model-vs-sim {:.2} pts)",
            v.name,
            v.model_estimate_percent,
            v.simulated_percent,
            v.paper_estimated_percent,
            v.paper_real_percent,
            v.model_vs_simulated_points(),
        );
    }
    out.push_str("paper's bound: model estimates real speedup with <= 3.7% error\n");
    Ok(out)
}

/// `accelctl faults [scenario.json] [--seed N]`: run the fault sweep —
/// the built-in degradation scenario by default, or one loaded from a
/// JSON file — and emit the report as pretty-printed JSON. Every run is
/// an independent seeded simulation, so output is byte-identical at any
/// `--jobs` width.
fn cmd_faults(args: &[String]) -> Result<String, String> {
    let seed = parse_f64(args, "--seed", Some(20_260_806.0))? as u64;
    let scenario = match args.first().filter(|a| !a.starts_with("--")) {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut scenario: FaultScenario = serde_json::from_str(&text)
                .map_err(|e| format!("invalid fault scenario {path}: {e}"))?;
            // --seed overrides the file's seed; otherwise the file wins.
            if flag_value(args, "--seed").is_some() {
                scenario.base.seed = seed;
            }
            scenario
        }
        None => demo_scenario(seed),
    };
    let report = run_fault_sweep(&scenario).map_err(|e| e.to_string())?;
    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
}

fn cmd_timeline(args: &[String]) -> Result<String, String> {
    let design = parse_design(args.first().ok_or("timeline requires a threading design")?)?;
    let spec = TimelineSpec {
        kernel_cycles: Cycles::new(10_000.0),
        peak_speedup: 10.0,
        overheads: OffloadOverheads::new(300.0, 600.0, 200.0, 500.0),
        design,
        strategy: AccelerationStrategy::OffChip,
        driver: DriverMode::AwaitsAck,
    };
    Ok(format!(
        "offload timeline for {design}:\n{}",
        Timeline::build(spec).render_ascii(70)
    ))
}

fn cmd_bounds(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("bounds requires a config file path")?;
    let cfg = load_config(path)?;
    let scenarios = cfg.to_scenarios().map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (name, scenario) in &scenarios {
        let report = bounds::diagnose(scenario);
        let _ = writeln!(out, "{name}:");
        for line in report.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    Ok(out)
}

fn cmd_slo(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("slo requires a config file path")?;
    let cfg = load_config(path)?;
    let min_reduction = parse_f64(args, "--min-reduction", Some(1.0))?;
    let target = LatencySlo::at_least(min_reduction).map_err(|e| e.to_string())?;
    let scenarios = cfg.to_scenarios().map_err(|e| e.to_string())?;
    let mut out = format!("latency SLO: require C/CL >= {min_reduction}\n");
    for (name, scenario) in &scenarios {
        let met = if target.is_met_by(scenario) { "MET" } else { "VIOLATED" };
        let max_l = slo::max_interface_latency(scenario, target)
            .map_or("infeasible".to_owned(), |c| format!("{:.0} cycles", c.get()));
        let max_n = slo::max_offload_rate(scenario, target)
            .map_or("infeasible".to_owned(), |n| {
                if n.is_infinite() {
                    "unbounded".to_owned()
                } else {
                    format!("{n:.0}/window")
                }
            });
        let min_a = slo::min_peak_speedup(scenario, target)
            .map_or("infeasible".to_owned(), |a| format!("{a:.2}"));
        let _ = writeln!(
            out,
            "  {name}: {met}; max L = {max_l}; max n = {max_n}; min A = {min_a}"
        );
        if slo::gains_throughput_but_slows_requests(scenario) {
            let _ = writeln!(
                out,
                "    warning: gains throughput while slowing individual requests (Sync-OS hazard)"
            );
        }
    }
    Ok(out)
}

/// `accelctl tables <id|all>`: regenerate the paper's tables through
/// whatever profile data is active — built-in constructors by default,
/// or JSON specs when `--services` is given. The tier-1 gate diffs the
/// two paths byte-for-byte.
fn cmd_tables(args: &[String]) -> Result<String, String> {
    let id = args
        .first()
        .ok_or("tables requires a table id (table1 .. table7) or 'all'")?;
    if id == "all" {
        let mut out = String::new();
        for id in accelerometer_bench::TABLE_IDS {
            out.push_str(&accelerometer_bench::render_table(id).expect("known table id"));
            out.push('\n');
        }
        return Ok(out);
    }
    accelerometer_bench::render_table(id)
        .ok_or_else(|| format!("unknown table '{id}' (expected table1 .. table7 or all)"))
}

/// `accelctl services list|validate <dir|file>|export <dir>`: the
/// data-driven profile toolkit. `validate` is the CI gate over
/// `configs/services/`; `export` regenerates those files from the
/// built-in constructors.
fn cmd_services(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let active = active_registry();
            let registry = active
                .as_deref()
                .map_or_else(ServiceRegistry::builtin, Clone::clone);
            let mut out = format!(
                "{:<14} {:<14} {:<13} source\n",
                "service", "slug", "domain"
            );
            for id in ServiceId::ALL {
                let source = if registry.loaded_services().contains(&id) {
                    "loaded file"
                } else {
                    "builtin"
                };
                let _ = writeln!(
                    out,
                    "{:<14} {:<14} {:<13} {source}",
                    id.to_string(),
                    id.slug(),
                    format!("{:?}", id.domain()),
                );
            }
            Ok(out)
        }
        Some("validate") => {
            let path = args
                .get(1)
                .ok_or("services validate requires a path (profile dir or file)")?;
            let registry = ServiceRegistry::load_path(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            let loaded: Vec<&str> = registry
                .loaded_services()
                .iter()
                .map(|id| id.slug())
                .collect();
            Ok(format!(
                "ok: {} valid service spec(s): {}\n",
                loaded.len(),
                loaded.join(", ")
            ))
        }
        Some("export") => {
            let dir = args
                .get(1)
                .ok_or("services export requires a target directory")?;
            let written = ServiceRegistry::export_dir(std::path::Path::new(dir))
                .map_err(|e| e.to_string())?;
            let mut out = String::new();
            for path in &written {
                let _ = writeln!(out, "wrote {}", path.display());
            }
            Ok(out)
        }
        _ => Err("services requires a subcommand: list | validate <dir|file> | export <dir>"
            .to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, PoisonError};

    use super::*;

    /// Serializes tests that mutate or depend on the process-wide
    /// `--shards` default, so parallel test threads cannot observe each
    /// other's global state.
    static SHARDS_GLOBAL: Mutex<()> = Mutex::new(());

    fn lock_shards_global() -> std::sync::MutexGuard<'static, ()> {
        SHARDS_GLOBAL
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    fn write_config() -> String {
        let path = std::env::temp_dir().join(format!("accelctl-test-{}.json", std::process::id()));
        fs::write(
            &path,
            r#"{"scenarios": [{
                "name": "aes-ni-cache1",
                "c": 2.0e9, "alpha": 0.165844, "n": 298951,
                "o0": 10, "l": 3, "a": 6,
                "design": "sync", "strategy": "on-chip"
            }]}"#,
        )
        .expect("temp file writable");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).unwrap().contains("usage"));
        assert!(run(&args(&["help"])).unwrap().contains("estimate"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn jobs_flag_is_global_and_validated() {
        let path = write_config();
        let out = run(&args(&["--jobs", "2", "estimate", &path])).unwrap();
        fs::remove_file(&path).ok();
        assert!(out.contains("aes-ni-cache1"), "{out}");
        assert!(out.contains("+15.7"), "{out}");
        // Missing / non-positive values are rejected before dispatch.
        assert!(run(&args(&["--jobs"])).unwrap_err().contains("--jobs"));
        assert!(run(&args(&["--jobs", "zero", "help"])).is_err());
        assert!(run(&args(&["--jobs", "0", "help"])).is_err());
        accelerometer::exec::set_default_jobs(0);
    }

    #[test]
    fn isa_flag_is_global_and_validated() {
        // The flag must strip cleanly ahead of any command and reject
        // unknown modes before dispatch. Outputs are bit-identical at
        // either setting (the kernels' equivalence suite proves that),
        // so `help` is a sufficient carrier command here.
        let out = run(&args(&["--isa", "scalar", "help"])).unwrap();
        assert!(out.contains("usage:"), "{out}");
        let out = run(&args(&["--isa", "auto", "help"])).unwrap();
        assert!(out.contains("usage:"), "{out}");
        assert!(run(&args(&["--isa"])).unwrap_err().contains("--isa"));
        assert!(run(&args(&["--isa", "avx512", "help"]))
            .unwrap_err()
            .contains("avx512"));
        // Leave the process in auto mode for any test that runs after.
        dispatch::set_isa_mode(dispatch::IsaMode::Auto);
    }

    #[test]
    fn calibrate_reports_all_paired_kernels() {
        let out = run(&args(&["calibrate"])).unwrap();
        for kernel in ["encryption", "compression", "hashing", "inference"] {
            assert!(out.contains(kernel), "missing {kernel}:\n{out}");
        }
        assert!(out.contains("host ISA: detected"), "{out}");
        // Honest-reporting footer: losses are printed, not hidden.
        assert!(out.contains("reported honestly"), "{out}");
    }

    #[test]
    fn estimate_reproduces_case_study_1() {
        let path = write_config();
        let out = run(&args(&["estimate", &path])).unwrap();
        fs::remove_file(&path).ok();
        assert!(out.contains("aes-ni-cache1"), "{out}");
        assert!(out.contains("+15.7"), "{out}");
    }

    #[test]
    fn estimate_errors_on_missing_file() {
        let err = run(&args(&["estimate", "/nonexistent/file.json"])).unwrap_err();
        assert!(err.contains("cannot read"));
        assert!(run(&args(&["estimate"])).is_err());
    }

    #[test]
    fn breakeven_reports_425_bytes() {
        let out = run(&args(&[
            "breakeven", "--cb", "5.62", "--a", "27", "--l", "2300",
        ]))
        .unwrap();
        assert!(out.contains("425"), "{out}");
        // Async variant: threshold drops to ~409 B.
        let out = run(&args(&[
            "breakeven",
            "--cb",
            "5.62",
            "--a",
            "27",
            "--l",
            "2300",
            "--design",
            "async-no-response",
        ]))
        .unwrap();
        assert!(out.contains("409"), "{out}");
    }

    #[test]
    fn breakeven_requires_cb_and_a() {
        assert!(run(&args(&["breakeven", "--cb", "5.0"])).is_err());
        assert!(run(&args(&["breakeven", "--a", "6"])).is_err());
        assert!(run(&args(&["breakeven", "--cb", "x", "--a", "6"])).is_err());
    }

    #[test]
    fn sweep_runs_over_config() {
        let path = write_config();
        let out = run(&args(&[
            "sweep", &path, "--axis", "peak-speedup", "--from", "2", "--to", "32", "--points", "5",
        ]))
        .unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(out.lines().count(), 6, "{out}");
        assert!(out.contains("speedup"));
        // Bad axis.
        let err = run(&args(&["sweep", "/nonexistent", "--axis", "x"])).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn project_prints_fig20_numbers() {
        let out = cmd_project();
        assert!(out.contains("Feed1: Compression"));
        assert!(out.contains("13.6"), "{out}");
        assert!(out.contains("g >= 425 B"), "{out}");
    }

    #[test]
    fn characterize_runs_profiler() {
        let out = run(&args(&["characterize", "web", "--samples", "5000"])).unwrap();
        assert!(out.contains("characterization of Web"));
        assert!(out.contains("Logging"));
        let err = run(&args(&["characterize", "nope"])).unwrap_err();
        assert!(err.contains("unknown service"));
    }

    #[test]
    fn bounds_names_the_dominant_term() {
        let path = write_config();
        let out = run(&args(&["bounds", &path])).unwrap();
        fs::remove_file(&path).ok();
        assert!(out.contains("aes-ni-cache1"), "{out}");
        assert!(out.contains("accelerator time on host path"), "{out}");
        assert!(out.contains("ceiling"), "{out}");
    }

    #[test]
    fn slo_reports_guardrails() {
        let path = write_config();
        let out = run(&args(&["slo", &path])).unwrap();
        fs::remove_file(&path).ok();
        assert!(out.contains("MET"), "{out}");
        assert!(out.contains("max L"), "{out}");
        // An unreachable SLO reports infeasibility.
        let path = write_config();
        let out = run(&args(&["slo", &path, "--min-reduction", "3.0"])).unwrap();
        fs::remove_file(&path).ok();
        assert!(out.contains("VIOLATED"), "{out}");
        assert!(out.contains("infeasible"), "{out}");
    }

    #[test]
    fn characterize_folded_emits_collapsed_stacks() {
        let out = run(&args(&["characterize", "cache1", "--samples", "500", "--folded"])).unwrap();
        assert!(out.lines().count() > 20, "{out}");
        let first = out.lines().next().unwrap();
        assert!(first.contains(';'), "{first}");
        assert!(first.rsplit(' ').next().unwrap().parse::<u64>().is_ok());
    }

    #[test]
    fn validate_runs_a_single_case_and_rejects_unknown_names() {
        let out = run(&args(&["validate", "--case", "aes-ni"])).unwrap();
        assert!(out.contains("case study aes-ni"), "{out}");
        assert!(out.contains("model"), "{out}");
        // Regression: an unknown name used to panic inside the sim
        // crate; it must now surface the structured error listing the
        // valid names.
        let err = run(&args(&["validate", "--case", "bogus"])).unwrap_err();
        assert!(err.contains("unknown case study 'bogus'"), "{err}");
        assert!(err.contains("aes-ni, encryption, inference"), "{err}");
        assert!(err.contains("'fallback'"), "{err}");
    }

    #[test]
    fn validate_fallback_prints_the_fault_capacity_table() {
        let out = run(&args(&["validate", "--case", "fallback"])).unwrap();
        assert!(out.contains("fallback-capacity validation"), "{out}");
        // One row per swept probability, healthy row included.
        for p in ["p = 0.0", "p = 0.2", "p = 0.5", "p = 0.8"] {
            assert!(out.contains(p), "missing {p}:\n{out}");
        }
        assert!(out.contains("model-vs-sim"), "{out}");
    }

    #[test]
    fn shards_flag_is_global_and_validated() {
        let _guard = lock_shards_global();
        let one = run(&args(&["--shards", "1", "faults"])).unwrap();
        let four = run(&args(&["--shards", "4", "faults"])).unwrap();
        set_default_shards(0);
        assert_eq!(one, four, "faults report must not depend on --shards width");
        let classic = run(&args(&["faults"])).unwrap();
        assert_ne!(
            one, classic,
            "the demo scenario decomposes into 2 shards, a different run"
        );
        // Missing / non-positive values are rejected before dispatch.
        assert!(run(&args(&["--shards"])).unwrap_err().contains("--shards"));
        assert!(run(&args(&["--shards", "zero", "help"])).is_err());
        assert!(run(&args(&["--shards", "0", "help"])).is_err());
    }

    #[test]
    fn trace_reuse_flag_is_global_validated_and_byte_exact() {
        let _guard = lock_shards_global();
        // The sweep-level bit-exactness contract: a full fault sweep's
        // JSON must not change by a byte whether grid points share one
        // frozen trace (default) or redraw their streams per point.
        let reused = run(&args(&["--trace-reuse", "on", "faults"])).unwrap();
        let redrawn = run(&args(&["--trace-reuse", "off", "faults"])).unwrap();
        set_trace_reuse(true);
        assert_eq!(reused, redrawn, "trace reuse changed sweep output");
        // And under sharding, where traces are per derived shard seed.
        let reused = run(&args(&["--trace-reuse", "on", "--shards", "2", "faults"])).unwrap();
        let redrawn = run(&args(&["--trace-reuse", "off", "--shards", "2", "faults"])).unwrap();
        set_default_shards(0);
        set_trace_reuse(true);
        assert_eq!(reused, redrawn, "trace reuse changed sharded sweep output");
        // Missing / unknown values are rejected before dispatch.
        assert!(run(&args(&["--trace-reuse"]))
            .unwrap_err()
            .contains("--trace-reuse"));
        assert!(run(&args(&["--trace-reuse", "maybe", "help"])).is_err());
    }

    #[test]
    fn faults_sweep_reports_every_policy() {
        let _guard = lock_shards_global();
        let out = run(&args(&["faults", "--seed", "11"])).unwrap();
        for policy in ["no-recovery", "retry", "retry-fallback", "admission", "full"] {
            assert!(out.contains(&format!("\"{policy}\"")), "{policy} missing");
        }
        assert!(out.contains("goodput_per_gcycle"), "{out}");
        assert!(out.contains("slo_met"), "{out}");
        assert!(run(&args(&["faults", "/nonexistent.json"]))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn faults_config_file_matches_the_builtin_scenario() {
        let _guard = lock_shards_global();
        let builtin = run(&args(&["faults"])).unwrap();
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/faults-degradation.json"
        );
        let from_file = run(&args(&["faults", path])).unwrap();
        assert_eq!(builtin, from_file);
    }

    #[test]
    fn timeline_renders_designs() {
        let out = run(&args(&["timeline", "sync-os"])).unwrap();
        assert!(out.contains("accelerator"));
        assert!(run(&args(&["timeline", "bogus"])).is_err());
    }
}
