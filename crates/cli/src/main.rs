//! `accelctl`: the Accelerometer artifact workflow (see crate docs).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match accelerometer_cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("accelctl: {message}");
            ExitCode::FAILURE
        }
    }
}
