//! Byte-accounted memory operations: the `memcpy`/`memmove`/`memset`/
//! `memcmp` leaf functions of Fig. 3, instrumented so a harness can
//! derive per-byte costs and per-origin attributions.
//!
//! The paper attributes memory copies to the functionality that invoked
//! them (Fig. 4); [`OpCounter`] reproduces that attribution with a tag
//! per operation.

use serde::{Deserialize, Serialize};

/// The memory operations tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum MemOp {
    /// `memcpy`-style non-overlapping copy.
    Copy,
    /// `memmove`-style possibly-overlapping copy.
    Move,
    /// `memset`-style fill.
    Set,
    /// `memcmp`-style comparison.
    Compare,
}

/// Per-operation, per-tag byte and invocation counters.
///
/// Backed by a flat `(op, tag, invocations, bytes)` table scanned
/// linearly: the tag population is the handful of copy origins of
/// Fig. 4, so a scan over a few entries beats hashing the tag (and the
/// per-record `String` allocation a map keyed by owned tags would
/// need). Neither [`OpCounter::get`] nor a repeat `record` allocates; a
/// tag's `String` is built once, on its first record.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpCounter {
    counts: Vec<(MemOp, String, u64, u64)>,
}

impl OpCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&mut self, op: MemOp, tag: &str, bytes: usize) {
        for (o, t, invocations, total) in &mut self.counts {
            if *o == op && t == tag {
                *invocations += 1;
                *total += bytes as u64;
                return;
            }
        }
        self.counts.push((op, tag.to_owned(), 1, bytes as u64));
    }

    /// `(invocations, bytes)` for an operation+tag pair.
    #[must_use]
    pub fn get(&self, op: MemOp, tag: &str) -> (u64, u64) {
        self.counts
            .iter()
            .find(|(o, t, _, _)| *o == op && t == tag)
            .map_or((0, 0), |(_, _, invocations, bytes)| (*invocations, *bytes))
    }

    /// Total `(invocations, bytes)` for an operation across all tags.
    #[must_use]
    pub fn total(&self, op: MemOp) -> (u64, u64) {
        self.counts
            .iter()
            .filter(|(o, _, _, _)| *o == op)
            .fold((0, 0), |(i, b), (_, _, di, db)| (i + di, b + db))
    }

    /// Fraction of an operation's bytes attributed to each tag — the
    /// Fig. 4 "copy origins" view.
    #[must_use]
    pub fn attribution(&self, op: MemOp) -> Vec<(String, f64)> {
        let (_, total_bytes) = self.total(op);
        if total_bytes == 0 {
            return Vec::new();
        }
        let mut shares: Vec<(String, f64)> = self
            .counts
            .iter()
            .filter(|(o, _, _, _)| *o == op)
            .map(|(_, tag, _, bytes)| (tag.clone(), *bytes as f64 / total_bytes as f64))
            .collect();
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
        shares
    }
}

/// Copies `src` into `dst`, attributing the bytes to `tag`. Dispatches
/// to an explicit AVX2 copy loop when [`crate::dispatch`] reports AVX2;
/// byte-identical to [`copy_scalar`] (it is a copy), and measured
/// honestly: libc's `memcpy` behind `copy_from_slice` is already
/// vectorized, so the explicit path is about breaking even, not
/// winning — see EXPERIMENTS.md.
///
/// # Panics
///
/// Panics if the slices differ in length (mirroring `memcpy`'s
/// fixed-count contract).
pub fn copy(counter: &mut OpCounter, tag: &str, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "copy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::has(crate::dispatch::AVX2) {
        // SAFETY: AVX2 verified at runtime; lengths asserted equal.
        #[allow(unsafe_code)]
        unsafe {
            simd::copy(dst, src);
        }
        counter.record(MemOp::Copy, tag, src.len());
        return;
    }
    dst.copy_from_slice(src);
    counter.record(MemOp::Copy, tag, src.len());
}

/// [`copy`] pinned to the scalar reference path (`copy_from_slice`,
/// i.e. libc `memcpy`), regardless of the dispatch mode.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn copy_scalar(counter: &mut OpCounter, tag: &str, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "copy length mismatch");
    dst.copy_from_slice(src);
    counter.record(MemOp::Copy, tag, src.len());
}

/// Moves bytes within a buffer (`memmove` semantics: ranges may overlap).
///
/// # Panics
///
/// Panics if either range is out of bounds.
pub fn move_within(
    counter: &mut OpCounter,
    tag: &str,
    buf: &mut [u8],
    src_start: usize,
    dst_start: usize,
    len: usize,
) {
    assert!(src_start + len <= buf.len() && dst_start + len <= buf.len());
    buf.copy_within(src_start..src_start + len, dst_start);
    counter.record(MemOp::Move, tag, len);
}

/// Fills `dst` with `value`.
pub fn set(counter: &mut OpCounter, tag: &str, dst: &mut [u8], value: u8) {
    dst.fill(value);
    counter.record(MemOp::Set, tag, dst.len());
}

/// Compares two buffers, returning their ordering. On the AVX2 path the
/// common prefix is scanned 32 bytes per step and the first differing
/// byte decides (falling back to length order) — exactly the
/// lexicographic ordering `<[u8]>::cmp` computes, so the result is
/// identical across ISA tiers.
#[must_use]
pub fn compare(counter: &mut OpCounter, tag: &str, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    counter.record(MemOp::Compare, tag, a.len().min(b.len()));
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::has(crate::dispatch::AVX2) {
        // SAFETY: AVX2 verified at runtime.
        #[allow(unsafe_code)]
        let first_diff = unsafe { simd::first_diff(a, b) };
        return match first_diff {
            Some(i) => a[i].cmp(&b[i]),
            None => a.len().cmp(&b.len()),
        };
    }
    a.cmp(b)
}

/// [`compare`] pinned to the scalar reference path (`<[u8]>::cmp`, i.e.
/// libc `memcmp`), regardless of the dispatch mode.
#[must_use]
pub fn compare_scalar(counter: &mut OpCounter, tag: &str, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    counter.record(MemOp::Compare, tag, a.len().min(b.len()));
    a.cmp(b)
}

/// AVX2 loops for [`copy`] and [`compare`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_storeu_si256,
    };

    /// 32-bytes-per-step copy with a `copy_from_slice` tail.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and that the slices
    /// have equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn copy(dst: &mut [u8], src: &[u8]) {
        let len = src.len();
        let mut i = 0;
        while i + 32 <= len {
            // SAFETY: `i + 32 <= len` bounds both sides.
            unsafe {
                let v = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
            }
            i += 32;
        }
        dst[i..].copy_from_slice(&src[i..]);
    }

    /// Index of the first byte where `a` and `b` differ within their
    /// common prefix, scanning 32 bytes per step (`cmpeq`+`movemask`;
    /// trailing zeros of the complement locate the byte), `None` if the
    /// shorter slice is a prefix of the longer.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn first_diff(a: &[u8], b: &[u8]) -> Option<usize> {
        let n = a.len().min(b.len());
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: `i + 32 <= n` bounds both loads.
            let diff = unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
                let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
                !(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32)
            };
            if diff != 0 {
                return Some(i + diff.trailing_zeros() as usize);
            }
            i += 32;
        }
        (i..n).find(|&j| a[j] != b[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn copy_copies_and_counts() {
        let mut c = OpCounter::new();
        let src = [1u8, 2, 3, 4];
        let mut dst = [0u8; 4];
        copy(&mut c, "serialization", &mut dst, &src);
        assert_eq!(dst, src);
        assert_eq!(c.get(MemOp::Copy, "serialization"), (1, 4));
        assert_eq!(c.get(MemOp::Copy, "io"), (0, 0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_rejects_mismatched_lengths() {
        let mut c = OpCounter::new();
        let mut dst = [0u8; 3];
        copy(&mut c, "x", &mut dst, &[1, 2, 3, 4]);
    }

    #[test]
    fn move_handles_overlap() {
        let mut c = OpCounter::new();
        let mut buf = [1u8, 2, 3, 4, 5, 6];
        // Shift [1,2,3,4] right by two — overlapping ranges.
        move_within(&mut c, "io", &mut buf, 0, 2, 4);
        assert_eq!(buf, [1, 2, 1, 2, 3, 4]);
        assert_eq!(c.total(MemOp::Move), (1, 4));
    }

    #[test]
    fn set_fills() {
        let mut c = OpCounter::new();
        let mut buf = [0u8; 8];
        set(&mut c, "init", &mut buf, 0x5A);
        assert!(buf.iter().all(|&b| b == 0x5A));
        assert_eq!(c.total(MemOp::Set), (1, 8));
    }

    #[test]
    fn compare_orders_and_counts_min_len() {
        let mut c = OpCounter::new();
        assert_eq!(compare(&mut c, "kv", b"abc", b"abd"), Ordering::Less);
        assert_eq!(compare(&mut c, "kv", b"abc", b"ab"), Ordering::Greater);
        assert_eq!(compare(&mut c, "kv", b"abc", b"abc"), Ordering::Equal);
        let (invocations, bytes) = c.total(MemOp::Compare);
        assert_eq!(invocations, 3);
        assert_eq!(bytes, 3 + 2 + 3);
    }

    #[test]
    fn dispatched_ops_match_scalar() {
        // Sizes straddling the 32-byte vector width, plus ordering cases
        // decided in the tail and by length.
        let mut c = OpCounter::new();
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut b = a.clone();
            let mut dst = vec![0u8; len];
            copy(&mut c, "t", &mut dst, &a);
            assert_eq!(dst, a);
            assert_eq!(compare(&mut c, "t", &a, &b), Ordering::Equal);
            if len > 0 {
                let flip = len - 1;
                b[flip] ^= 0xFF;
                assert_eq!(compare(&mut c, "t", &a, &b), a.cmp(&b));
                assert_eq!(compare(&mut c, "t", &b, &a), b.cmp(&a));
            }
            assert_eq!(compare(&mut c, "t", &a, &a[..len / 2]), a[..].cmp(&a[..len / 2]));
        }
    }

    #[test]
    fn attribution_reproduces_copy_origins() {
        let mut c = OpCounter::new();
        let mut buf = [0u8; 100];
        copy(&mut c, "io-pre-post", &mut buf[..60], &[1u8; 60]);
        copy(&mut c, "serialization", &mut buf[..30], &[2u8; 30]);
        copy(&mut c, "application-logic", &mut buf[..10], &[3u8; 10]);
        let shares = c.attribution(MemOp::Copy);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares[0].0, "io-pre-post");
        assert!((shares[0].1 - 0.6).abs() < 1e-12);
        assert!((shares[1].1 - 0.3).abs() < 1e-12);
        // Shares sum to 1.
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_attribution() {
        let c = OpCounter::new();
        assert!(c.attribution(MemOp::Copy).is_empty());
        assert_eq!(c.total(MemOp::Copy), (0, 0));
    }

    #[test]
    fn tags_are_isolated_across_ops() {
        let mut c = OpCounter::new();
        let mut buf = [0u8; 4];
        copy(&mut c, "x", &mut buf, &[1, 2, 3, 4]);
        set(&mut c, "x", &mut buf, 0);
        assert_eq!(c.get(MemOp::Copy, "x"), (1, 4));
        assert_eq!(c.get(MemOp::Set, "x"), (1, 4));
        assert_eq!(c.get(MemOp::Move, "x"), (0, 0));
    }
}
