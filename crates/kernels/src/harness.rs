//! The parameter-measurement harness: §4's methodology for deriving
//! model parameters from micro-benchmarks.
//!
//! The paper measures `Cb` (host cycles per byte), `A` (the accelerator's
//! peak speedup, as the ratio of host to accelerator per-byte cost), and
//! `o0`/`L` from micro-benchmarks plus specification sheets. This module
//! provides the timing harness: run a kernel over a known byte volume,
//! convert elapsed wall time to cycles at the host's nominal frequency,
//! and report [`accelerometer`] model inputs directly.

use std::hint::black_box;
use std::time::{Duration, Instant};

use accelerometer::units::CyclesPerByte;
use accelerometer::{Complexity, KernelCost};

/// A completed kernel measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// Total bytes the kernel processed.
    pub bytes_processed: u64,
    /// Total invocations.
    pub invocations: u64,
    /// Elapsed wall time.
    pub elapsed: Duration,
    /// The nominal host clock used to convert time to cycles (Hz).
    pub clock_hz: f64,
}

impl KernelMeasurement {
    /// Total host cycles at the nominal clock.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.elapsed.as_secs_f64() * self.clock_hz
    }

    /// `Cb`: host cycles per byte.
    #[must_use]
    pub fn cycles_per_byte(&self) -> CyclesPerByte {
        CyclesPerByte::new(self.cycles() / self.bytes_processed.max(1) as f64)
    }

    /// Cycles per invocation (`o0`-style fixed costs show up here when
    /// the per-invocation byte count is small).
    #[must_use]
    pub fn cycles_per_invocation(&self) -> f64 {
        self.cycles() / self.invocations.max(1) as f64
    }

    /// Packages the measurement as a linear-complexity [`KernelCost`]
    /// ready for break-even analysis.
    #[must_use]
    pub fn kernel_cost(&self) -> KernelCost {
        KernelCost {
            cycles_per_byte: self.cycles_per_byte(),
            complexity: Complexity::LINEAR,
        }
    }

    /// Throughput in bytes per second.
    #[must_use]
    pub fn bytes_per_second(&self) -> f64 {
        self.bytes_processed as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The micro-benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Harness {
    clock_hz: f64,
}

impl Harness {
    /// Creates a harness converting wall time to cycles at `clock_hz`
    /// (e.g. `2.0e9` to mirror the paper's 2 GHz busy frequency).
    ///
    /// # Panics
    ///
    /// Panics unless `clock_hz` is positive and finite.
    #[must_use]
    pub fn new(clock_hz: f64) -> Self {
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock must be positive"
        );
        Self { clock_hz }
    }

    /// The configured clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Measures a kernel: invokes `kernel` once per iteration, charging
    /// `bytes_per_invocation` bytes to each. The kernel's return value is
    /// passed through [`black_box`] so the work is not optimized away.
    pub fn measure<T>(
        &self,
        invocations: u64,
        bytes_per_invocation: u64,
        mut kernel: impl FnMut() -> T,
    ) -> KernelMeasurement {
        let start = Instant::now();
        for _ in 0..invocations {
            black_box(kernel());
        }
        let elapsed = start.elapsed();
        KernelMeasurement {
            bytes_processed: invocations * bytes_per_invocation,
            invocations,
            elapsed,
            clock_hz: self.clock_hz,
        }
    }

    /// Measures a kernel in batches: `batch_size` invocations per timer
    /// read, `batches` timer reads. Amortizing the clock read over a
    /// batch keeps timer overhead out of the measured kernel cost — the
    /// same trick the criterion harness uses for warm-up — which matters
    /// for kernels whose per-call cost is within an order of magnitude
    /// of `Instant::now()` itself.
    pub fn measure_batched<T>(
        &self,
        batches: u64,
        batch_size: u64,
        bytes_per_invocation: u64,
        mut kernel: impl FnMut() -> T,
    ) -> BatchedMeasurement {
        let mut elapsed = Duration::ZERO;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..batch_size {
                black_box(kernel());
            }
            elapsed += start.elapsed();
        }
        BatchedMeasurement {
            batches,
            batch_size,
            bytes_processed: batches * batch_size * bytes_per_invocation,
            elapsed,
            clock_hz: self.clock_hz,
        }
    }

    /// Constructs a measurement from a known elapsed time (for tests and
    /// for replaying external measurements, e.g. device spec sheets).
    #[must_use]
    pub fn from_elapsed(
        &self,
        invocations: u64,
        bytes_per_invocation: u64,
        elapsed: Duration,
    ) -> KernelMeasurement {
        KernelMeasurement {
            bytes_processed: invocations * bytes_per_invocation,
            invocations,
            elapsed,
            clock_hz: self.clock_hz,
        }
    }
}

/// A completed batched measurement: `batch_size` kernel invocations per
/// timer read (see [`Harness::measure_batched`]).
///
/// Reports both granularities the model calibrates against: per-call
/// cost (the `α·C` of one kernel execution) and per-batch cost (the
/// granularity an offload dispatches at when invocations are batched to
/// amortize the interface cost, as in the paper's Fig. 14 study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedMeasurement {
    /// Number of timer reads (batches).
    pub batches: u64,
    /// Kernel invocations per batch.
    pub batch_size: u64,
    /// Total bytes the kernel processed.
    pub bytes_processed: u64,
    /// Elapsed wall time summed across batches.
    pub elapsed: Duration,
    /// The nominal host clock used to convert time to cycles (Hz).
    pub clock_hz: f64,
}

impl BatchedMeasurement {
    /// Total host cycles at the nominal clock.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.elapsed.as_secs_f64() * self.clock_hz
    }

    /// Cycles per kernel invocation.
    #[must_use]
    pub fn cycles_per_call(&self) -> f64 {
        self.cycles() / (self.batches * self.batch_size).max(1) as f64
    }

    /// Cycles per batch of `batch_size` invocations.
    #[must_use]
    pub fn cycles_per_batch(&self) -> f64 {
        self.cycles() / self.batches.max(1) as f64
    }

    /// The measurement viewed per-call, for the same downstream
    /// arithmetic (`Cb`, [`KernelCost`]) as [`Harness::measure`].
    #[must_use]
    pub fn per_call(&self) -> KernelMeasurement {
        KernelMeasurement {
            bytes_processed: self.bytes_processed,
            invocations: self.batches * self.batch_size,
            elapsed: self.elapsed,
            clock_hz: self.clock_hz,
        }
    }
}

/// `A`: the peak acceleration factor between a baseline and an
/// accelerated implementation of the same kernel — the ratio of their
/// per-byte costs.
#[must_use]
pub fn acceleration_factor(baseline: &KernelMeasurement, accelerated: &KernelMeasurement) -> f64 {
    baseline.cycles_per_byte().get() / accelerated.cycles_per_byte().get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_measurement_arithmetic() {
        let h = Harness::new(2.0e9);
        // 1000 invocations × 100 B in 50 µs at 2 GHz = 100k cycles.
        let m = h.from_elapsed(1000, 100, Duration::from_micros(50));
        assert_eq!(m.bytes_processed, 100_000);
        assert!((m.cycles() - 100_000.0).abs() < 1.0);
        assert!((m.cycles_per_byte().get() - 1.0).abs() < 1e-9);
        assert!((m.cycles_per_invocation() - 100.0).abs() < 1e-9);
        assert!((m.bytes_per_second() - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn acceleration_factor_is_cost_ratio() {
        let h = Harness::new(2.0e9);
        let slow = h.from_elapsed(100, 1000, Duration::from_millis(6));
        let fast = h.from_elapsed(100, 1000, Duration::from_millis(1));
        assert!((acceleration_factor(&slow, &fast) - 6.0).abs() < 1e-9);
        assert!((acceleration_factor(&fast, &slow) - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_cost_feeds_breakeven() {
        use accelerometer::units::bytes;
        let h = Harness::new(2.0e9);
        let m = h.from_elapsed(1, 1000, Duration::from_nanos(2810)); // 5.62 cyc/B
        let cost = m.kernel_cost();
        assert!((cost.cycles_per_byte.get() - 5.62).abs() < 0.01);
        assert!((cost.host_cycles(bytes(425.0)).get() - 5.62 * 425.0).abs() < 5.0);
    }

    #[test]
    fn live_measurement_produces_positive_costs() {
        let h = Harness::new(2.0e9);
        let data = vec![0xA5u8; 4096];
        let m = h.measure(50, 4096, || crate::hash::fnv1a_64(&data));
        assert_eq!(m.invocations, 50);
        assert_eq!(m.bytes_processed, 50 * 4096);
        assert!(m.elapsed > Duration::ZERO);
        assert!(m.cycles_per_byte().get() > 0.0);
    }

    #[test]
    fn batched_measurement_arithmetic() {
        let h = Harness::new(2.0e9);
        let data = vec![0x5Au8; 512];
        let m = h.measure_batched(4, 25, 512, || crate::hash::fnv1a_64(&data));
        assert_eq!(m.batches, 4);
        assert_eq!(m.batch_size, 25);
        assert_eq!(m.bytes_processed, 4 * 25 * 512);
        assert!(m.elapsed > Duration::ZERO);
        // Per-batch cost is batch_size × per-call cost, by construction.
        assert!((m.cycles_per_batch() - 25.0 * m.cycles_per_call()).abs() < 1e-6);
        // The per-call view feeds the same downstream arithmetic.
        let per_call = m.per_call();
        assert_eq!(per_call.invocations, 100);
        assert_eq!(per_call.bytes_processed, m.bytes_processed);
        assert!(per_call.cycles_per_byte().get() > 0.0);
    }

    #[test]
    fn batched_zero_guards() {
        let m = BatchedMeasurement {
            batches: 0,
            batch_size: 0,
            bytes_processed: 0,
            elapsed: Duration::from_nanos(10),
            clock_hz: 1.0e9,
        };
        assert!(m.cycles_per_call().is_finite());
        assert!(m.cycles_per_batch().is_finite());
    }

    #[test]
    fn zero_guards() {
        let h = Harness::new(1.0e9);
        let m = h.from_elapsed(0, 0, Duration::from_nanos(10));
        // Division guards: no NaN/inf from zero invocations/bytes.
        assert!(m.cycles_per_byte().get().is_finite());
        assert!(m.cycles_per_invocation().is_finite());
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn rejects_bad_clock() {
        let _ = Harness::new(0.0);
    }
}
