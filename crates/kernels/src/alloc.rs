//! A size-class slab allocator modeling TCMalloc's fast path.
//!
//! §2.3.1 explains why allocation and especially `free()` are expensive
//! at hyperscale: `free()` takes no size parameter, so the allocator
//! performs a (TLB-unfriendly) lookup to recover the block's size class,
//! while C++14's sized `delete` can skip it. This module reproduces that
//! structure — size classes, per-class free lists, and *both* free paths
//! — with cycle-relevant events (size-class lookups, page appends, list
//! pushes) surfaced as counters so the harness can derive the model's
//! allocation parameters (`Cb`, and Mallacc-style `A ≈ 1.5`).
//!
//! The allocator is fully safe Rust: allocations are handles into
//! per-class slabs, and `free` consumes the handle, making double frees
//! unrepresentable.

use serde::{Deserialize, Serialize};

/// Slab growth increment, matching the 4 KiB pages the paper's free-path
/// discussion revolves around.
pub const PAGE_BYTES: usize = 4096;

/// The largest size the class array serves; larger requests are refused
/// (a real allocator would fall through to a page heap).
pub const MAX_CLASS_BYTES: usize = 4096;

/// A live allocation: an opaque handle that must be returned via
/// [`SizeClassAllocator::free`] or [`SizeClassAllocator::free_with_size`].
///
/// The handle is deliberately neither `Clone` nor `Copy`; consuming it on
/// free makes use-after-free and double-free unrepresentable.
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    class: u32,
    slot: u32,
    requested: u32,
}

impl Allocation {
    /// The number of bytes the caller asked for.
    #[must_use]
    pub fn requested_bytes(&self) -> usize {
        self.requested as usize
    }
}

/// Event counters a micro-benchmark reads to cost the allocator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Frees via the unsized path (each pays a size-class lookup).
    pub frees: u64,
    /// Frees via the sized path (no lookup).
    pub sized_frees: u64,
    /// Size-class lookups performed (alloc always; free only unsized).
    pub class_lookups: u64,
    /// New pages appended to slabs.
    pub pages_grown: u64,
    /// Requests refused because they exceeded the largest class.
    pub oversize_rejections: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SizeClass {
    /// The block size this class serves.
    block_bytes: usize,
    /// Backing storage; slot `i` occupies `[i*block, (i+1)*block)`.
    storage: Vec<u8>,
    /// Free slot indices (LIFO, like a thread-cache free list).
    free_list: Vec<u32>,
    /// Slots handed out and never yet freed.
    live: u64,
}

impl SizeClass {
    fn slots(&self) -> usize {
        self.storage.len() / self.block_bytes
    }
}

/// The allocator: an array of size classes with per-class free lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeClassAllocator {
    classes: Vec<SizeClass>,
    stats: AllocStats,
}

impl Default for SizeClassAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SizeClassAllocator {
    /// Creates an allocator with TCMalloc-style size classes: 8-byte
    /// steps to 64 B, 16-byte steps to 256 B, then powers of two to 4 KiB.
    #[must_use]
    pub fn new() -> Self {
        let mut sizes = Vec::new();
        let mut s = 8;
        while s <= 64 {
            sizes.push(s);
            s += 8;
        }
        let mut s = 80;
        while s <= 256 {
            sizes.push(s);
            s += 16;
        }
        let mut s = 512;
        while s <= MAX_CLASS_BYTES {
            sizes.push(s);
            s *= 2;
        }
        let classes = sizes
            .into_iter()
            .map(|block_bytes| SizeClass {
                block_bytes,
                storage: Vec::new(),
                free_list: Vec::new(),
                live: 0,
            })
            .collect();
        Self {
            classes,
            stats: AllocStats::default(),
        }
    }

    /// Number of size classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The block size of the class that would serve `size`, or `None` for
    /// oversize requests. This is the "size-class lookup" whose cost the
    /// paper's free-path discussion centers on.
    #[must_use]
    pub fn class_for(&self, size: usize) -> Option<usize> {
        self.class_index(size).map(|i| self.classes[i].block_bytes)
    }

    fn class_index(&self, size: usize) -> Option<usize> {
        if size == 0 || size > MAX_CLASS_BYTES {
            return None;
        }
        self.classes
            .iter()
            .position(|c| c.block_bytes >= size)
    }

    /// Allocates `size` bytes, zero-filled on first use of a slot.
    ///
    /// Returns `None` (and counts an oversize rejection) for zero-byte or
    /// larger-than-4-KiB requests.
    pub fn alloc(&mut self, size: usize) -> Option<Allocation> {
        self.stats.class_lookups += 1;
        let Some(class_idx) = self.class_index(size) else {
            self.stats.oversize_rejections += 1;
            return None;
        };
        let class = &mut self.classes[class_idx];
        let slot = if let Some(slot) = class.free_list.pop() {
            slot
        } else {
            // Grow the slab by one page worth of blocks.
            let first_new = class.slots() as u32;
            let blocks = (PAGE_BYTES / class.block_bytes).max(1);
            class
                .storage
                .resize(class.storage.len() + blocks * class.block_bytes, 0);
            self.stats.pages_grown += 1;
            // Push all but the first new slot onto the free list.
            for s in (first_new + 1..first_new + blocks as u32).rev() {
                class.free_list.push(s);
            }
            first_new
        };
        class.live += 1;
        self.stats.allocations += 1;
        Some(Allocation {
            class: class_idx as u32,
            slot,
            requested: size as u32,
        })
    }

    /// Access the bytes of a live allocation (length = requested size).
    #[must_use]
    pub fn data_mut(&mut self, allocation: &Allocation) -> &mut [u8] {
        let class = &mut self.classes[allocation.class as usize];
        let start = allocation.slot as usize * class.block_bytes;
        &mut class.storage[start..start + allocation.requested as usize]
    }

    /// Frees via the *unsized* path (`free(ptr)`): pays a size-class
    /// lookup, like TCMalloc recovering the class from the page map.
    pub fn free(&mut self, allocation: Allocation) {
        self.stats.class_lookups += 1;
        self.stats.frees += 1;
        self.release(allocation);
    }

    /// Frees via the *sized* path (C++14 `operator delete(ptr, size)`):
    /// skips the size-class lookup.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not match the allocation's requested size —
    /// mismatched sized delete is undefined behaviour in C++, surfaced
    /// here as a hard failure.
    pub fn free_with_size(&mut self, allocation: Allocation, size: usize) {
        assert_eq!(
            allocation.requested as usize, size,
            "sized free with mismatched size"
        );
        self.stats.sized_frees += 1;
        self.release(allocation);
    }

    fn release(&mut self, allocation: Allocation) {
        let class = &mut self.classes[allocation.class as usize];
        class.free_list.push(allocation.slot);
        class.live -= 1;
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Total live allocations across all classes.
    #[must_use]
    pub fn live_allocations(&self) -> u64 {
        self.classes.iter().map(|c| c.live).sum()
    }

    /// Bytes of slab memory owned by the allocator.
    #[must_use]
    pub fn slab_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.storage.len()).sum()
    }

    /// Internal fragmentation of the live set: 1 − requested/rounded.
    /// Returns 0 when nothing is live.
    #[must_use]
    pub fn internal_fragmentation(&self, live: &[Allocation]) -> f64 {
        let requested: usize = live.iter().map(Allocation::requested_bytes).sum();
        let rounded: usize = live
            .iter()
            .map(|a| self.classes[a.class as usize].block_bytes)
            .sum();
        if rounded == 0 {
            0.0
        } else {
            1.0 - requested as f64 / rounded as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_are_monotone_and_cover_range() {
        let a = SizeClassAllocator::new();
        assert!(a.class_count() > 10);
        let mut prev = 0;
        for size in 1..=MAX_CLASS_BYTES {
            let class = a.class_for(size).expect("covered");
            assert!(class >= size, "class {class} < size {size}");
            let _ = prev;
            prev = class;
        }
        assert_eq!(a.class_for(8), Some(8));
        assert_eq!(a.class_for(9), Some(16));
        assert_eq!(a.class_for(100), Some(112));
        assert_eq!(a.class_for(257), Some(512));
        assert!(a.class_for(0).is_none());
        assert!(a.class_for(MAX_CLASS_BYTES + 1).is_none());
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut a = SizeClassAllocator::new();
        let h = a.alloc(100).unwrap();
        assert_eq!(h.requested_bytes(), 100);
        assert_eq!(a.live_allocations(), 1);
        a.free(h);
        assert_eq!(a.live_allocations(), 0);
        let stats = a.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.frees, 1);
        // One lookup for alloc, one for the unsized free.
        assert_eq!(stats.class_lookups, 2);
    }

    #[test]
    fn sized_free_skips_lookup() {
        let mut a = SizeClassAllocator::new();
        let h = a.alloc(64).unwrap();
        let lookups_before = a.stats().class_lookups;
        a.free_with_size(h, 64);
        assert_eq!(a.stats().class_lookups, lookups_before);
        assert_eq!(a.stats().sized_frees, 1);
        assert_eq!(a.stats().frees, 0);
    }

    #[test]
    #[should_panic(expected = "mismatched size")]
    fn sized_free_rejects_wrong_size() {
        let mut a = SizeClassAllocator::new();
        let h = a.alloc(64).unwrap();
        a.free_with_size(h, 65);
    }

    #[test]
    fn slots_are_reused_after_free() {
        let mut a = SizeClassAllocator::new();
        let h1 = a.alloc(32).unwrap();
        let slot1 = h1.slot;
        a.free(h1);
        let pages_before = a.stats().pages_grown;
        let h2 = a.alloc(32).unwrap();
        assert_eq!(h2.slot, slot1, "LIFO free list reuses the hot slot");
        assert_eq!(a.stats().pages_grown, pages_before, "no new page needed");
        a.free(h2);
    }

    #[test]
    fn data_is_isolated_between_allocations() {
        let mut a = SizeClassAllocator::new();
        let h1 = a.alloc(64).unwrap();
        let h2 = a.alloc(64).unwrap();
        a.data_mut(&h1).fill(0xAA);
        a.data_mut(&h2).fill(0xBB);
        assert!(a.data_mut(&h1).iter().all(|&b| b == 0xAA));
        assert!(a.data_mut(&h2).iter().all(|&b| b == 0xBB));
        assert_eq!(a.data_mut(&h1).len(), 64);
        a.free(h1);
        a.free(h2);
    }

    #[test]
    fn page_growth_batches_slots() {
        let mut a = SizeClassAllocator::new();
        // 4096/8 = 512 slots per page for the 8-byte class: the first
        // allocation grows one page, the next 511 reuse it.
        let handles: Vec<Allocation> = (0..512).map(|_| a.alloc(8).unwrap()).collect();
        assert_eq!(a.stats().pages_grown, 1);
        let h = a.alloc(8).unwrap();
        assert_eq!(a.stats().pages_grown, 2);
        for handle in handles {
            a.free(handle);
        }
        a.free(h);
        assert_eq!(a.live_allocations(), 0);
    }

    #[test]
    fn oversize_requests_are_rejected() {
        let mut a = SizeClassAllocator::new();
        assert!(a.alloc(0).is_none());
        assert!(a.alloc(MAX_CLASS_BYTES + 1).is_none());
        assert_eq!(a.stats().oversize_rejections, 2);
        assert_eq!(a.stats().allocations, 0);
    }

    #[test]
    fn fragmentation_accounting() {
        let mut a = SizeClassAllocator::new();
        // 9-byte requests land in the 16-byte class: 7/16 wasted.
        let live: Vec<Allocation> = (0..10).map(|_| a.alloc(9).unwrap()).collect();
        let frag = a.internal_fragmentation(&live);
        assert!((frag - 7.0 / 16.0).abs() < 1e-9);
        assert_eq!(a.internal_fragmentation(&[]), 0.0);
        for h in live {
            a.free(h);
        }
    }

    #[test]
    fn slab_bytes_grow_in_pages() {
        let mut a = SizeClassAllocator::new();
        assert_eq!(a.slab_bytes(), 0);
        let h = a.alloc(2048).unwrap();
        assert_eq!(a.slab_bytes(), PAGE_BYTES);
        a.free(h);
        // Memory is retained for reuse (like a thread cache).
        assert_eq!(a.slab_bytes(), PAGE_BYTES);
    }
}
