//! Multilayer-perceptron inference: the ML kernel of Feed1/Feed2/Ads1
//! (§2.1 notes the inference services use Multilayer Perceptrons).
//!
//! Deliberately scalar and allocation-free in the hot path, so the
//! per-inference cost measured by the harness represents unaccelerated
//! host inference — the `α·C` the remote-inference case study offloads.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors constructing or evaluating an MLP.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlpError {
    /// A layer's weight matrix does not match its declared dimensions.
    ShapeMismatch {
        /// Layer index.
        layer: usize,
        /// Expected weight count (`inputs × outputs`).
        expected: usize,
        /// Actual weight count supplied.
        actual: usize,
    },
    /// Consecutive layers disagree on their shared dimension.
    LayerMismatch {
        /// Index of the later layer.
        layer: usize,
        /// The previous layer's output width.
        expected_inputs: usize,
        /// The later layer's declared input width.
        actual_inputs: usize,
    },
    /// The input vector's length does not match the first layer.
    InputMismatch {
        /// Expected input width.
        expected: usize,
        /// Supplied input width.
        actual: usize,
    },
    /// The network has no layers.
    Empty,
}

impl fmt::Display for MlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlpError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer {layer}: expected {expected} weights, got {actual}"),
            MlpError::LayerMismatch {
                layer,
                expected_inputs,
                actual_inputs,
            } => write!(
                f,
                "layer {layer}: expects {actual_inputs} inputs but previous layer outputs {expected_inputs}"
            ),
            MlpError::InputMismatch { expected, actual } => {
                write!(f, "input has {actual} features, network expects {expected}")
            }
            MlpError::Empty => write!(f, "network has no layers"),
        }
    }
}

impl std::error::Error for MlpError {}

/// The activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Identity (used for output layers producing raw scores).
    Linear,
    /// Logistic sigmoid (used for click-probability outputs).
    Sigmoid,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// One dense layer: `outputs = act(W·inputs + b)` with row-major `W`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    inputs: usize,
    outputs: usize,
    /// Row-major weights: `weights[o * inputs + i]`.
    weights: Vec<f32>,
    biases: Vec<f32>,
    activation: Activation,
}

impl Layer {
    /// Creates a dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::ShapeMismatch`] if `weights.len()` is not
    /// `inputs × outputs` or `biases.len()` is not `outputs`.
    pub fn new(
        inputs: usize,
        outputs: usize,
        weights: Vec<f32>,
        biases: Vec<f32>,
        activation: Activation,
    ) -> Result<Self, MlpError> {
        if weights.len() != inputs * outputs || biases.len() != outputs {
            return Err(MlpError::ShapeMismatch {
                layer: 0,
                expected: inputs * outputs,
                actual: weights.len(),
            });
        }
        Ok(Self {
            inputs,
            outputs,
            weights,
            biases,
            activation,
        })
    }

    /// Deterministic pseudo-random layer for benchmarks and tests
    /// (xorshift-seeded weights in [-0.5, 0.5)).
    #[must_use]
    pub fn seeded(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let weights = (0..inputs * outputs).map(|_| next()).collect();
        let biases = (0..outputs).map(|_| next()).collect();
        Self {
            inputs,
            outputs,
            weights,
            biases,
            activation,
        }
    }

    fn forward(&self, input: &[f32], output: &mut Vec<f32>) {
        output.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            output.push(self.activation.apply(acc));
        }
    }
}

/// A multilayer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network from layers, validating that consecutive layers
    /// agree on their shared dimension.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::Empty`] for zero layers or
    /// [`MlpError::LayerMismatch`] for incompatible shapes.
    pub fn new(layers: Vec<Layer>) -> Result<Self, MlpError> {
        if layers.is_empty() {
            return Err(MlpError::Empty);
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].outputs != pair[1].inputs {
                return Err(MlpError::LayerMismatch {
                    layer: i + 1,
                    expected_inputs: pair[0].outputs,
                    actual_inputs: pair[1].inputs,
                });
            }
        }
        Ok(Self { layers })
    }

    /// A deterministic ReLU MLP with the given layer widths (e.g.
    /// `[512, 256, 64, 1]`), sigmoid on the output layer — the shape of a
    /// feed-ranking relevance model.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    #[must_use]
    pub fn seeded_ranker(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    Activation::Sigmoid
                } else {
                    Activation::Relu
                };
                Layer::seeded(w[0], w[1], act, seed.wrapping_add(i as u64 * 0x9E37_79B9))
            })
            .collect();
        Self { layers }
    }

    /// The expected input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.layers[0].inputs
    }

    /// The output width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty by construction").outputs
    }

    /// Number of multiply-accumulate operations per inference.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.layers.iter().map(|l| l.inputs * l.outputs).sum()
    }

    /// Runs inference on one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] if the feature vector's length
    /// differs from [`Mlp::input_width`].
    pub fn infer(&self, features: &[f32]) -> Result<Vec<f32>, MlpError> {
        if features.len() != self.input_width() {
            return Err(MlpError::InputMismatch {
                expected: self.input_width(),
                actual: features.len(),
            });
        }
        let mut current = features.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        Ok(current)
    }

    /// Runs inference on a batch, the way Ads1 batches offloads (§4,
    /// case study 3).
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] on the first mismatched
    /// feature vector.
    pub fn infer_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, MlpError> {
        batch.iter().map(|f| self.infer(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_forward_pass() {
        // One layer: 2 inputs, 2 outputs, ReLU.
        // W = [[1, 2], [-1, 1]], b = [0.5, -10].
        let layer = Layer::new(
            2,
            2,
            vec![1.0, 2.0, -1.0, 1.0],
            vec![0.5, -10.0],
            Activation::Relu,
        )
        .unwrap();
        let mlp = Mlp::new(vec![layer]).unwrap();
        let out = mlp.infer(&[3.0, 4.0]).unwrap();
        // [1*3 + 2*4 + 0.5, relu(-3 + 4 - 10)] = [11.5, 0].
        assert_eq!(out, vec![11.5, 0.0]);
    }

    #[test]
    fn sigmoid_output_is_probability() {
        let mlp = Mlp::seeded_ranker(&[32, 16, 1], 42);
        let features: Vec<f32> = (0..32).map(|i| i as f32 / 32.0).collect();
        let out = mlp.infer(&features).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn inference_is_deterministic() {
        let mlp = Mlp::seeded_ranker(&[64, 32, 8, 1], 7);
        let features = vec![0.25f32; 64];
        assert_eq!(mlp.infer(&features).unwrap(), mlp.infer(&features).unwrap());
        // Different seeds give different networks.
        let other = Mlp::seeded_ranker(&[64, 32, 8, 1], 8);
        assert_ne!(mlp.infer(&features).unwrap(), other.infer(&features).unwrap());
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Layer::new(2, 2, vec![1.0; 3], vec![0.0; 2], Activation::Linear),
            Err(MlpError::ShapeMismatch { .. })
        ));
        let a = Layer::seeded(4, 8, Activation::Relu, 1);
        let b = Layer::seeded(9, 2, Activation::Linear, 2);
        assert!(matches!(
            Mlp::new(vec![a, b]),
            Err(MlpError::LayerMismatch { layer: 1, .. })
        ));
        assert!(matches!(Mlp::new(vec![]), Err(MlpError::Empty)));
    }

    #[test]
    fn input_width_validation() {
        let mlp = Mlp::seeded_ranker(&[16, 1], 3);
        assert!(matches!(
            mlp.infer(&[0.0; 15]),
            Err(MlpError::InputMismatch {
                expected: 16,
                actual: 15
            })
        ));
    }

    #[test]
    fn macs_counts_multiplies() {
        let mlp = Mlp::seeded_ranker(&[512, 256, 64, 1], 1);
        assert_eq!(mlp.macs(), 512 * 256 + 256 * 64 + 64);
        assert_eq!(mlp.input_width(), 512);
        assert_eq!(mlp.output_width(), 1);
    }

    #[test]
    fn batch_matches_individual() {
        let mlp = Mlp::seeded_ranker(&[8, 4, 1], 11);
        let batch: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..8).map(|j| (i * 8 + j) as f32 / 40.0).collect())
            .collect();
        let outs = mlp.infer_batch(&batch).unwrap();
        for (f, o) in batch.iter().zip(&outs) {
            assert_eq!(mlp.infer(f).unwrap(), *o);
        }
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(5.0), 5.0);
        assert_eq!(Activation::Linear.apply(-5.0), -5.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn error_display() {
        let e = MlpError::InputMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(MlpError::Empty.to_string().contains("no layers"));
    }
}
