//! Multilayer-perceptron inference: the ML kernel of Feed1/Feed2/Ads1
//! (§2.1 notes the inference services use Multilayer Perceptrons).
//!
//! Deliberately scalar and allocation-free in the hot path, so the
//! per-inference cost measured by the harness represents unaccelerated
//! host inference — the `α·C` the remote-inference case study offloads.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors constructing or evaluating an MLP.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlpError {
    /// A layer's weight matrix does not match its declared dimensions.
    ShapeMismatch {
        /// Layer index.
        layer: usize,
        /// Expected weight count (`inputs × outputs`).
        expected: usize,
        /// Actual weight count supplied.
        actual: usize,
    },
    /// Consecutive layers disagree on their shared dimension.
    LayerMismatch {
        /// Index of the later layer.
        layer: usize,
        /// The previous layer's output width.
        expected_inputs: usize,
        /// The later layer's declared input width.
        actual_inputs: usize,
    },
    /// The input vector's length does not match the first layer.
    InputMismatch {
        /// Expected input width.
        expected: usize,
        /// Supplied input width.
        actual: usize,
    },
    /// The network has no layers.
    Empty,
}

impl fmt::Display for MlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlpError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer {layer}: expected {expected} weights, got {actual}"),
            MlpError::LayerMismatch {
                layer,
                expected_inputs,
                actual_inputs,
            } => write!(
                f,
                "layer {layer}: expects {actual_inputs} inputs but previous layer outputs {expected_inputs}"
            ),
            MlpError::InputMismatch { expected, actual } => {
                write!(f, "input has {actual} features, network expects {expected}")
            }
            MlpError::Empty => write!(f, "network has no layers"),
        }
    }
}

impl std::error::Error for MlpError {}

/// The activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Identity (used for output layers producing raw scores).
    Linear,
    /// Logistic sigmoid (used for click-probability outputs).
    Sigmoid,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// How a layer's weight matrix is stored.
///
/// Both layouts traverse each output's multiply-accumulate chain in
/// ascending input order, so the computed values are bit-identical; the
/// layout only changes the memory-access pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WeightLayout {
    /// `weights[o * inputs + i]`: one contiguous row per output neuron.
    #[default]
    RowMajor,
    /// `weights[i * outputs + o]`: one contiguous column per input
    /// feature. Sequential access when traversing input-outer, which is
    /// cache-friendlier for wide layers at batch size 1.
    Transposed,
}

/// One dense layer: `outputs = act(W·inputs + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    inputs: usize,
    outputs: usize,
    /// Weights in the order [`WeightLayout`] describes.
    weights: Vec<f32>,
    biases: Vec<f32>,
    activation: Activation,
    #[serde(default)]
    layout: WeightLayout,
}

impl Layer {
    /// Creates a dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::ShapeMismatch`] if `weights.len()` is not
    /// `inputs × outputs` or `biases.len()` is not `outputs`.
    pub fn new(
        inputs: usize,
        outputs: usize,
        weights: Vec<f32>,
        biases: Vec<f32>,
        activation: Activation,
    ) -> Result<Self, MlpError> {
        if weights.len() != inputs * outputs || biases.len() != outputs {
            return Err(MlpError::ShapeMismatch {
                layer: 0,
                expected: inputs * outputs,
                actual: weights.len(),
            });
        }
        Ok(Self {
            inputs,
            outputs,
            weights,
            biases,
            activation,
            layout: WeightLayout::RowMajor,
        })
    }

    /// Converts the layer to the given weight layout (no-op if already
    /// there). Outputs are unchanged bit for bit — only the traversal
    /// order of memory changes.
    #[must_use]
    pub fn with_layout(mut self, layout: WeightLayout) -> Self {
        if self.layout == layout {
            return self;
        }
        let mut converted = vec![0.0f32; self.weights.len()];
        for o in 0..self.outputs {
            for i in 0..self.inputs {
                let (row_major, transposed) = (o * self.inputs + i, i * self.outputs + o);
                let (from, to) = match layout {
                    WeightLayout::Transposed => (row_major, transposed),
                    WeightLayout::RowMajor => (transposed, row_major),
                };
                converted[to] = self.weights[from];
            }
        }
        self.weights = converted;
        self.layout = layout;
        self
    }

    /// The layer's weight storage layout.
    #[must_use]
    pub fn layout(&self) -> WeightLayout {
        self.layout
    }

    /// Deterministic pseudo-random layer for benchmarks and tests
    /// (xorshift-seeded weights in [-0.5, 0.5)).
    #[must_use]
    pub fn seeded(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let weights = (0..inputs * outputs).map(|_| next()).collect();
        let biases = (0..outputs).map(|_| next()).collect();
        Self {
            inputs,
            outputs,
            weights,
            biases,
            activation,
            layout: WeightLayout::RowMajor,
        }
    }

    /// Forward pass for one input. `output` is cleared and refilled.
    ///
    /// Per output neuron the accumulation runs `bias + Σ wᵢ·xᵢ` in
    /// ascending `i`, identically under both layouts — and identically
    /// on the AVX2 path (`simd`), where the transposed layout runs
    /// eight output neurons per vector, each lane its own ascending-`i`
    /// mul-then-add chain, so the f32 results are bit-identical. The
    /// row-major single-input pass is one serial dependency chain per
    /// output and stays scalar by design (vectorizing it would
    /// re-associate the sum).
    fn forward(&self, input: &[f32], output: &mut Vec<f32>, simd: bool) {
        #[cfg(not(target_arch = "x86_64"))]
        let _ = simd;
        output.clear();
        match self.layout {
            WeightLayout::RowMajor => {
                for o in 0..self.outputs {
                    let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
                    let mut acc = self.biases[o];
                    for (w, x) in row.iter().zip(input) {
                        acc += w * x;
                    }
                    output.push(self.activation.apply(acc));
                }
            }
            WeightLayout::Transposed => {
                #[cfg(target_arch = "x86_64")]
                if simd {
                    output.resize(self.outputs, 0.0);
                    // SAFETY: `simd` is only set after runtime AVX2
                    // detection; slice lengths are validated shapes.
                    #[allow(unsafe_code)]
                    unsafe {
                        simd::forward_transposed(&self.weights, &self.biases, input, output);
                    }
                    for acc in output.iter_mut() {
                        *acc = self.activation.apply(*acc);
                    }
                    return;
                }
                output.extend_from_slice(&self.biases);
                for (i, &x) in input.iter().enumerate() {
                    let col = &self.weights[i * self.outputs..(i + 1) * self.outputs];
                    for (acc, w) in output.iter_mut().zip(col) {
                        *acc += w * x;
                    }
                }
                for acc in output.iter_mut() {
                    *acc = self.activation.apply(*acc);
                }
            }
        }
    }

    /// Forward pass for a feature-major batch: `input[i * batch_len + b]`
    /// holds input feature `i` of batch element `b`, and the output is
    /// written the same way (`output[o * batch_len + b]`). `output` is
    /// cleared and refilled.
    ///
    /// Feature-major layout puts the B independent accumulation chains
    /// for one output neuron contiguously, so the inner loop runs across
    /// the batch in 8-wide chunks — independent chains the CPU can
    /// pipeline (and pack into SIMD lanes) instead of stalling on one
    /// serial f32 add chain. Per (input, output) pair the accumulation
    /// order is exactly [`Layer::forward`]'s — `bias + Σ wᵢ·xᵢ` in
    /// ascending `i` — so batch outputs are bit-identical to
    /// `batch_len` scalar passes.
    fn forward_batch(&self, input: &[f32], batch_len: usize, output: &mut Vec<f32>, simd: bool) {
        debug_assert_eq!(input.len(), batch_len * self.inputs);
        #[cfg(not(target_arch = "x86_64"))]
        let _ = simd;
        output.clear();
        if batch_len == 0 {
            return;
        }
        output.resize(batch_len * self.outputs, 0.0);
        match self.layout {
            WeightLayout::RowMajor => {
                for o in 0..self.outputs {
                    let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
                    let bias = self.biases[o];
                    let yrow = &mut output[o * batch_len..(o + 1) * batch_len];
                    let mut b0 = 0;
                    while b0 + 8 <= batch_len {
                        #[cfg(target_arch = "x86_64")]
                        if simd {
                            // SAFETY: `simd` is only set after runtime
                            // AVX2 detection; `b0 + 8 <= batch_len`
                            // bounds every lane load.
                            #[allow(unsafe_code)]
                            let acc =
                                unsafe { simd::row_batch8(row, bias, input, batch_len, b0) };
                            for (y, a) in yrow[b0..b0 + 8].iter_mut().zip(acc) {
                                *y = self.activation.apply(a);
                            }
                            b0 += 8;
                            continue;
                        }
                        let mut acc = [bias; 8];
                        for (&w, xrow) in row.iter().zip(input.chunks_exact(batch_len)) {
                            let x: &[f32; 8] =
                                xrow[b0..b0 + 8].try_into().expect("8-wide chunk");
                            for (a, &x) in acc.iter_mut().zip(x) {
                                *a += w * x;
                            }
                        }
                        for (y, a) in yrow[b0..b0 + 8].iter_mut().zip(acc) {
                            *y = self.activation.apply(a);
                        }
                        b0 += 8;
                    }
                    for b in b0..batch_len {
                        let mut acc = bias;
                        for (&w, xrow) in row.iter().zip(input.chunks_exact(batch_len)) {
                            acc += w * xrow[b];
                        }
                        yrow[b] = self.activation.apply(acc);
                    }
                }
            }
            WeightLayout::Transposed => {
                #[cfg(target_arch = "x86_64")]
                if simd {
                    // SAFETY: `simd` is only set after runtime AVX2
                    // detection; shapes are validated at construction.
                    #[allow(unsafe_code)]
                    unsafe {
                        simd::forward_batch_transposed(
                            &self.weights,
                            &self.biases,
                            input,
                            batch_len,
                            output,
                        );
                    }
                    for y in output.iter_mut() {
                        *y = self.activation.apply(*y);
                    }
                    return;
                }
                for (o, &bias) in self.biases.iter().enumerate() {
                    output[o * batch_len..(o + 1) * batch_len].fill(bias);
                }
                for (col, xrow) in self
                    .weights
                    .chunks_exact(self.outputs)
                    .zip(input.chunks_exact(batch_len))
                {
                    for (&w, yrow) in col.iter().zip(output.chunks_exact_mut(batch_len)) {
                        for (y, &x) in yrow.iter_mut().zip(xrow) {
                            *y += w * x;
                        }
                    }
                }
                for y in output.iter_mut() {
                    *y = self.activation.apply(*y);
                }
            }
        }
    }
}

/// AVX2 micro-kernels for [`Layer`]. Every kernel keeps each output
/// neuron's accumulation a mul-then-add chain over ascending input
/// index starting from the bias — exactly the scalar order — so f32
/// results are bit-identical (`_mm256_mul_ps` + `_mm256_add_ps` per
/// element is the same two roundings as `acc + w * x`; no FMA, which
/// would contract them into one). Activations are applied by the caller
/// through the scalar [`Activation::apply`] pass.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// Eight batch lanes of one row-major output neuron: lane `j`
    /// accumulates `bias + Σᵢ row[i]·input[i·B + b0 + j]` in ascending
    /// `i` — the vector register is exactly the scalar code's
    /// `[bias; 8]` accumulator array.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and guarantee
    /// `b0 + 8 <= batch_len` with `input.len() = inputs · batch_len`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_batch8(
        row: &[f32],
        bias: f32,
        input: &[f32],
        batch_len: usize,
        b0: usize,
    ) -> [f32; 8] {
        let mut acc = _mm256_set1_ps(bias);
        for (i, &w) in row.iter().enumerate() {
            let wv = _mm256_set1_ps(w);
            // SAFETY: `i·B + b0 + 8 <= inputs·B = input.len()`.
            let x = unsafe { _mm256_loadu_ps(input.as_ptr().add(i * batch_len + b0)) };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, x));
        }
        let mut out = [0.0f32; 8];
        // SAFETY: `out` is exactly 32 bytes.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr(), acc) };
        out
    }

    /// Transposed single-input forward, vectorized across output
    /// neurons: each vector holds eight contiguous outputs of one
    /// weight column slab, each lane its own ascending-`i` chain.
    /// Raw accumulations only — the caller applies the activation.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime;
    /// `weights.len() = input.len() · biases.len()` and
    /// `output.len() = biases.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn forward_transposed(
        weights: &[f32],
        biases: &[f32],
        input: &[f32],
        output: &mut [f32],
    ) {
        let outputs = biases.len();
        let mut o0 = 0;
        while o0 + 8 <= outputs {
            // SAFETY: `o0 + 8 <= outputs` bounds the bias load, the
            // column loads (`i·O + o0 + 8 <= (i+1)·O`) and the store.
            unsafe {
                let mut acc = _mm256_loadu_ps(biases.as_ptr().add(o0));
                for (i, &x) in input.iter().enumerate() {
                    let xv = _mm256_set1_ps(x);
                    let w = _mm256_loadu_ps(weights.as_ptr().add(i * outputs + o0));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(w, xv));
                }
                _mm256_storeu_ps(output.as_mut_ptr().add(o0), acc);
            }
            o0 += 8;
        }
        for o in o0..outputs {
            let mut acc = biases[o];
            for (i, &x) in input.iter().enumerate() {
                acc += weights[i * outputs + o] * x;
            }
            output[o] = acc;
        }
    }

    /// Transposed feature-major batch forward, vectorized across
    /// output neurons and register-blocked four batch elements deep
    /// (one column-slab load feeds four accumulators), so the weight
    /// matrix streams `⌈B/4⌉` times instead of `B`. Lane `k` of
    /// accumulator `j` is output `o0+k` of batch element `b0+j`, an
    /// ascending-`i` chain from the bias. Raw accumulations only.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime;
    /// `input.len() = inputs · batch_len`,
    /// `weights.len() = inputs · biases.len()`, and
    /// `output.len() = biases.len() · batch_len`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn forward_batch_transposed(
        weights: &[f32],
        biases: &[f32],
        input: &[f32],
        batch_len: usize,
        output: &mut [f32],
    ) {
        let outputs = biases.len();
        let inputs = input.len() / batch_len;
        let mut o0 = 0;
        while o0 + 8 <= outputs {
            // SAFETY: `o0 + 8 <= outputs` bounds the bias and column
            // loads as in `forward_transposed`.
            let bias = unsafe { _mm256_loadu_ps(biases.as_ptr().add(o0)) };
            let mut b0 = 0;
            while b0 + 4 <= batch_len {
                let (mut a0, mut a1, mut a2, mut a3) = (bias, bias, bias, bias);
                for i in 0..inputs {
                    // SAFETY: column load bounded as above.
                    let w = unsafe { _mm256_loadu_ps(weights.as_ptr().add(i * outputs + o0)) };
                    let xs = &input[i * batch_len + b0..i * batch_len + b0 + 4];
                    a0 = _mm256_add_ps(a0, _mm256_mul_ps(w, _mm256_set1_ps(xs[0])));
                    a1 = _mm256_add_ps(a1, _mm256_mul_ps(w, _mm256_set1_ps(xs[1])));
                    a2 = _mm256_add_ps(a2, _mm256_mul_ps(w, _mm256_set1_ps(xs[2])));
                    a3 = _mm256_add_ps(a3, _mm256_mul_ps(w, _mm256_set1_ps(xs[3])));
                }
                let mut lanes = [[0.0f32; 8]; 4];
                // SAFETY: each destination is exactly 32 bytes.
                unsafe {
                    _mm256_storeu_ps(lanes[0].as_mut_ptr(), a0);
                    _mm256_storeu_ps(lanes[1].as_mut_ptr(), a1);
                    _mm256_storeu_ps(lanes[2].as_mut_ptr(), a2);
                    _mm256_storeu_ps(lanes[3].as_mut_ptr(), a3);
                }
                for (j, lane) in lanes.iter().enumerate() {
                    for (k, &v) in lane.iter().enumerate() {
                        output[(o0 + k) * batch_len + b0 + j] = v;
                    }
                }
                b0 += 4;
            }
            for b in b0..batch_len {
                let mut acc = bias;
                for i in 0..inputs {
                    // SAFETY: column load bounded as above.
                    let w = unsafe { _mm256_loadu_ps(weights.as_ptr().add(i * outputs + o0)) };
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(w, _mm256_set1_ps(input[i * batch_len + b])));
                }
                let mut lane = [0.0f32; 8];
                // SAFETY: `lane` is exactly 32 bytes.
                unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), acc) };
                for (k, &v) in lane.iter().enumerate() {
                    output[(o0 + k) * batch_len + b] = v;
                }
            }
            o0 += 8;
        }
        for o in o0..outputs {
            for b in 0..batch_len {
                let mut acc = biases[o];
                for i in 0..inputs {
                    acc += weights[i * outputs + o] * input[i * batch_len + b];
                }
                output[o * batch_len + b] = acc;
            }
        }
    }
}

/// Reusable ping-pong activation buffers for allocation-free inference.
///
/// One scratch serves any network and any batch size; buffers grow to
/// the high-water mark and are reused thereafter.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    current: Vec<f32>,
    next: Vec<f32>,
}

impl MlpScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A multilayer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network from layers, validating that consecutive layers
    /// agree on their shared dimension.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::Empty`] for zero layers or
    /// [`MlpError::LayerMismatch`] for incompatible shapes.
    pub fn new(layers: Vec<Layer>) -> Result<Self, MlpError> {
        if layers.is_empty() {
            return Err(MlpError::Empty);
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].outputs != pair[1].inputs {
                return Err(MlpError::LayerMismatch {
                    layer: i + 1,
                    expected_inputs: pair[0].outputs,
                    actual_inputs: pair[1].inputs,
                });
            }
        }
        Ok(Self { layers })
    }

    /// A deterministic ReLU MLP with the given layer widths (e.g.
    /// `[512, 256, 64, 1]`), sigmoid on the output layer — the shape of a
    /// feed-ranking relevance model.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    #[must_use]
    pub fn seeded_ranker(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    Activation::Sigmoid
                } else {
                    Activation::Relu
                };
                Layer::seeded(w[0], w[1], act, seed.wrapping_add(i as u64 * 0x9E37_79B9))
            })
            .collect();
        Self { layers }
    }

    /// The expected input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.layers[0].inputs
    }

    /// The output width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty by construction").outputs
    }

    /// Number of multiply-accumulate operations per inference.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.layers.iter().map(|l| l.inputs * l.outputs).sum()
    }

    /// Converts every layer to the given weight layout. Outputs are
    /// unchanged bit for bit; only memory traversal changes.
    #[must_use]
    pub fn with_layout(self, layout: WeightLayout) -> Self {
        Self {
            layers: self
                .layers
                .into_iter()
                .map(|l| l.with_layout(layout))
                .collect(),
        }
    }

    /// Runs inference on one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] if the feature vector's length
    /// differs from [`Mlp::input_width`].
    pub fn infer(&self, features: &[f32]) -> Result<Vec<f32>, MlpError> {
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        self.infer_into(features, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Mlp::infer`] without the per-call allocations: activations live
    /// in `scratch`, the result lands in `out` (cleared first). Reusing
    /// the scratch across calls makes the hot path allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] if the feature vector's length
    /// differs from [`Mlp::input_width`].
    pub fn infer_into(
        &self,
        features: &[f32],
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), MlpError> {
        self.infer_into_with(features, scratch, out, crate::dispatch::has(crate::dispatch::AVX2))
    }

    /// [`Mlp::infer`] pinned to the scalar reference path, regardless
    /// of the dispatch mode. Bit-identical to [`Mlp::infer`] — the
    /// equivalence tests and the calibrator's paired measurements rely
    /// on both properties.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] if the feature vector's length
    /// differs from [`Mlp::input_width`].
    pub fn infer_scalar(&self, features: &[f32]) -> Result<Vec<f32>, MlpError> {
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        self.infer_into_with(features, &mut scratch, &mut out, false)?;
        Ok(out)
    }

    fn infer_into_with(
        &self,
        features: &[f32],
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
        simd: bool,
    ) -> Result<(), MlpError> {
        if features.len() != self.input_width() {
            return Err(MlpError::InputMismatch {
                expected: self.input_width(),
                actual: features.len(),
            });
        }
        scratch.current.clear();
        scratch.current.extend_from_slice(features);
        for layer in &self.layers {
            layer.forward(&scratch.current, &mut scratch.next, simd);
            std::mem::swap(&mut scratch.current, &mut scratch.next);
        }
        out.clear();
        out.extend_from_slice(&scratch.current);
        Ok(())
    }

    /// Runs a batch of B feature vectors through reusable scratch
    /// buffers, writing the flattened outputs (element `o` of batch
    /// entry `b` at `out[b * output_width + o]`) into `out` (cleared
    /// first) — the batched execution Ads1 amortizes its offload
    /// interface cost over (§4, case study 3).
    ///
    /// Weight rows are reused across the batch (each layer's matrix is
    /// streamed once per batch, not once per input), but every input's
    /// accumulation order is exactly [`Mlp::infer`]'s, so the outputs
    /// are bit-identical to B scalar calls — the batch-vs-scalar
    /// proptest pins this.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] on the first mismatched
    /// feature vector.
    pub fn forward_batch(
        &self,
        batch: &[Vec<f32>],
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), MlpError> {
        self.forward_batch_with(batch, scratch, out, crate::dispatch::has(crate::dispatch::AVX2))
    }

    /// [`Mlp::forward_batch`] pinned to the scalar reference path,
    /// regardless of the dispatch mode; bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] on the first mismatched
    /// feature vector.
    pub fn forward_batch_scalar(
        &self,
        batch: &[Vec<f32>],
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), MlpError> {
        self.forward_batch_with(batch, scratch, out, false)
    }

    fn forward_batch_with(
        &self,
        batch: &[Vec<f32>],
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
        simd: bool,
    ) -> Result<(), MlpError> {
        let width = self.input_width();
        for features in batch {
            if features.len() != width {
                return Err(MlpError::InputMismatch {
                    expected: width,
                    actual: features.len(),
                });
            }
        }
        // Activations travel feature-major (`[i * B + b]`) between
        // layers — see [`Layer::forward_batch`] — so pack the batch
        // transposed and un-transpose the final activations.
        scratch.current.clear();
        scratch.current.resize(batch.len() * width, 0.0);
        for (b, features) in batch.iter().enumerate() {
            for (i, &x) in features.iter().enumerate() {
                scratch.current[i * batch.len() + b] = x;
            }
        }
        for layer in &self.layers {
            layer.forward_batch(&scratch.current, batch.len(), &mut scratch.next, simd);
            std::mem::swap(&mut scratch.current, &mut scratch.next);
        }
        let out_width = self.output_width();
        out.clear();
        out.resize(batch.len() * out_width, 0.0);
        for o in 0..out_width {
            for b in 0..batch.len() {
                out[b * out_width + o] = scratch.current[o * batch.len() + b];
            }
        }
        Ok(())
    }

    /// Runs inference on a batch, the way Ads1 batches offloads (§4,
    /// case study 3). Implemented on [`Mlp::forward_batch`], so the
    /// per-input results are bit-identical to scalar [`Mlp::infer`].
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::InputMismatch`] on the first mismatched
    /// feature vector.
    pub fn infer_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, MlpError> {
        let mut scratch = MlpScratch::new();
        let mut flat = Vec::new();
        self.forward_batch(batch, &mut scratch, &mut flat)?;
        let width = self.output_width();
        Ok(flat.chunks_exact(width).map(<[f32]>::to_vec).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_forward_pass() {
        // One layer: 2 inputs, 2 outputs, ReLU.
        // W = [[1, 2], [-1, 1]], b = [0.5, -10].
        let layer = Layer::new(
            2,
            2,
            vec![1.0, 2.0, -1.0, 1.0],
            vec![0.5, -10.0],
            Activation::Relu,
        )
        .unwrap();
        let mlp = Mlp::new(vec![layer]).unwrap();
        let out = mlp.infer(&[3.0, 4.0]).unwrap();
        // [1*3 + 2*4 + 0.5, relu(-3 + 4 - 10)] = [11.5, 0].
        assert_eq!(out, vec![11.5, 0.0]);
    }

    #[test]
    fn sigmoid_output_is_probability() {
        let mlp = Mlp::seeded_ranker(&[32, 16, 1], 42);
        let features: Vec<f32> = (0..32).map(|i| i as f32 / 32.0).collect();
        let out = mlp.infer(&features).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn inference_is_deterministic() {
        let mlp = Mlp::seeded_ranker(&[64, 32, 8, 1], 7);
        let features = vec![0.25f32; 64];
        assert_eq!(mlp.infer(&features).unwrap(), mlp.infer(&features).unwrap());
        // Different seeds give different networks.
        let other = Mlp::seeded_ranker(&[64, 32, 8, 1], 8);
        assert_ne!(mlp.infer(&features).unwrap(), other.infer(&features).unwrap());
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Layer::new(2, 2, vec![1.0; 3], vec![0.0; 2], Activation::Linear),
            Err(MlpError::ShapeMismatch { .. })
        ));
        let a = Layer::seeded(4, 8, Activation::Relu, 1);
        let b = Layer::seeded(9, 2, Activation::Linear, 2);
        assert!(matches!(
            Mlp::new(vec![a, b]),
            Err(MlpError::LayerMismatch { layer: 1, .. })
        ));
        assert!(matches!(Mlp::new(vec![]), Err(MlpError::Empty)));
    }

    #[test]
    fn input_width_validation() {
        let mlp = Mlp::seeded_ranker(&[16, 1], 3);
        assert!(matches!(
            mlp.infer(&[0.0; 15]),
            Err(MlpError::InputMismatch {
                expected: 16,
                actual: 15
            })
        ));
    }

    #[test]
    fn macs_counts_multiplies() {
        let mlp = Mlp::seeded_ranker(&[512, 256, 64, 1], 1);
        assert_eq!(mlp.macs(), 512 * 256 + 256 * 64 + 64);
        assert_eq!(mlp.input_width(), 512);
        assert_eq!(mlp.output_width(), 1);
    }

    #[test]
    fn batch_matches_individual() {
        let mlp = Mlp::seeded_ranker(&[8, 4, 1], 11);
        let batch: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..8).map(|j| (i * 8 + j) as f32 / 40.0).collect())
            .collect();
        let outs = mlp.infer_batch(&batch).unwrap();
        for (f, o) in batch.iter().zip(&outs) {
            assert_eq!(mlp.infer(f).unwrap(), *o);
        }
    }

    #[test]
    fn forward_batch_bit_identical_to_scalar_in_both_layouts() {
        let mlp = Mlp::seeded_ranker(&[32, 16, 4], 23);
        let batch: Vec<Vec<f32>> = (0..7)
            .map(|i| (0..32).map(|j| ((i * 31 + j * 7) % 100) as f32 / 50.0 - 1.0).collect())
            .collect();
        for mlp in [mlp.clone(), mlp.with_layout(WeightLayout::Transposed)] {
            let mut scratch = MlpScratch::new();
            let mut flat = Vec::new();
            mlp.forward_batch(&batch, &mut scratch, &mut flat).unwrap();
            assert_eq!(flat.len(), batch.len() * mlp.output_width());
            for (b, features) in batch.iter().enumerate() {
                let scalar = mlp.infer(features).unwrap();
                let from_batch = &flat[b * 4..(b + 1) * 4];
                // Bitwise, not approximate.
                assert_eq!(
                    scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    from_batch.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn dispatched_inference_bit_identical_to_scalar() {
        // Odd widths force the SIMD remainder paths; both layouts, both
        // single and batched entry points. Bitwise equality, not
        // approximate — the full sweep lives in simd_equivalence.
        let mlp = Mlp::seeded_ranker(&[19, 13, 5], 77);
        let batch: Vec<Vec<f32>> = (0..7)
            .map(|i| (0..19).map(|j| ((i * 17 + j * 5) % 64) as f32 / 16.0 - 2.0).collect())
            .collect();
        for mlp in [mlp.clone(), mlp.with_layout(WeightLayout::Transposed)] {
            for features in &batch {
                let auto = mlp.infer(features).unwrap();
                let scalar = mlp.infer_scalar(features).unwrap();
                assert_eq!(
                    auto.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                );
            }
            let mut scratch = MlpScratch::new();
            let (mut a, mut s) = (Vec::new(), Vec::new());
            mlp.forward_batch(&batch, &mut scratch, &mut a).unwrap();
            mlp.forward_batch_scalar(&batch, &mut scratch, &mut s).unwrap();
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn layout_conversion_round_trips_and_preserves_outputs() {
        let mlp = Mlp::seeded_ranker(&[16, 8, 2], 5);
        let features: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 4.0).collect();
        let expected = mlp.infer(&features).unwrap();
        let transposed = mlp.clone().with_layout(WeightLayout::Transposed);
        assert_eq!(transposed.layers[0].layout(), WeightLayout::Transposed);
        let got = transposed.infer(&features).unwrap();
        assert_eq!(
            expected.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        let back = transposed.with_layout(WeightLayout::RowMajor);
        assert_eq!(back, mlp);
    }

    #[test]
    fn infer_into_reuses_scratch() {
        let mlp = Mlp::seeded_ranker(&[8, 4, 1], 9);
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        for i in 0..3 {
            let features: Vec<f32> = (0..8).map(|j| (i * 8 + j) as f32 / 24.0).collect();
            mlp.infer_into(&features, &mut scratch, &mut out).unwrap();
            assert_eq!(out, mlp.infer(&features).unwrap());
        }
    }

    #[test]
    fn forward_batch_rejects_ragged_input() {
        let mlp = Mlp::seeded_ranker(&[8, 1], 2);
        let batch = vec![vec![0.0f32; 8], vec![0.0f32; 7]];
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        assert!(matches!(
            mlp.forward_batch(&batch, &mut scratch, &mut out),
            Err(MlpError::InputMismatch {
                expected: 8,
                actual: 7
            })
        ));
        // Empty batch is fine and produces no outputs.
        mlp.forward_batch(&[], &mut scratch, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(5.0), 5.0);
        assert_eq!(Activation::Linear.apply(-5.0), -5.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn error_display() {
        let e = MlpError::InputMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(MlpError::Empty.to_string().contains("no layers"));
    }
}
