//! A sharded, TTL-aware key-value store: the Cache services' *core
//! application logic* (Table 3: "core business logic (e.g., Cache's
//! key-value serving)").
//!
//! Together with the [`crate::pipeline`] this completes a runnable
//! Cache1-like microservice: frames come in, the orchestration pipeline
//! unwraps them, this store serves them, and the pipeline wraps the
//! response — letting the examples measure a living version of the
//! paper's "application logic vs orchestration" split.
//!
//! The design mirrors a memcached-style store at small scale: FNV-sharded
//! buckets, logical-clock TTLs, and LRU-free lazy expiry with stats for
//! hit/miss/expired accounting. Each shard is a flat tag-probed table —
//! one tag byte per entry (the top byte of the key's FNV-1a hash, so
//! the hash is computed once and reused for shard choice and tag)
//! scanned ahead of the full key comparison, the open-addressing idiom
//! of swisstable-style maps. The tag scan runs sixteen-wide on SSE2
//! via [`crate::dispatch`]; candidate positions are visited in the same
//! ascending order as the scalar scan, so lookups behave identically on
//! both tiers.

use crate::codec::KvMessage;
use crate::hash::fnv1a_64;

/// Hit/miss/expiry counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// Gets that found a live value.
    pub hits: u64,
    /// Gets that found nothing.
    pub misses: u64,
    /// Gets that found an expired value (counted as misses too).
    pub expired: u64,
    /// Sets (inserts or overwrites).
    pub sets: u64,
}

impl KvStats {
    /// Hit rate over all gets (0 when no gets have happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            0.0
        } else {
            self.hits as f64 / gets as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: Vec<u8>,
    value: Vec<u8>,
    expires_at: u64,
}

/// One flat tag-probed bucket: `tags[i]` is the hash tag of
/// `entries[i]`, kept in a separate dense array so a lookup scans 16
/// tag bytes per SSE2 step (or byte-at-a-time on the scalar tier) and
/// only touches an entry — a pointer-chasing key comparison — on a tag
/// hit. Keys are unique, so at most one tag candidate survives the
/// comparison.
#[derive(Debug, Default)]
struct Shard {
    tags: Vec<u8>,
    entries: Vec<Entry>,
}

impl Shard {
    /// Index of `key`'s entry, probing tags in ascending order — the
    /// dispatched probe visits candidates in exactly this order, so
    /// both tiers return identical indices.
    fn find(&self, key: &[u8], tag: u8, simd: bool) -> Option<usize> {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` is only set after runtime SSE2 detection.
            #[allow(unsafe_code)]
            return unsafe { simd::find(&self.tags, &self.entries, key, tag) };
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = simd;
        self.find_scalar(key, tag)
    }

    fn find_scalar(&self, key: &[u8], tag: u8) -> Option<usize> {
        for (i, (&t, entry)) in self.tags.iter().zip(&self.entries).enumerate() {
            if t == tag && entry.key == key {
                return Some(i);
            }
        }
        None
    }

    /// Removes entry `i` in O(1); order is not preserved, which lookups
    /// never observe (keys are unique).
    fn remove(&mut self, i: usize) {
        self.tags.swap_remove(i);
        self.entries.swap_remove(i);
    }
}

/// The 16-wide tag probe. SSE2 is unconditionally present on x86_64;
/// it still routes through [`crate::dispatch`] so the forced-scalar
/// tier exercises the scalar scan.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8};

    use super::Entry;

    /// Scans 16 tag bytes per step; `cmpeq`+`movemask` yields a
    /// candidate bitmap whose set bits are visited in ascending order
    /// (clearing the lowest each time), so the first key match found is
    /// the same index the scalar scan returns.
    ///
    /// # Safety
    /// Caller must have verified SSE2 at runtime (always true on
    /// x86_64) and `tags.len() == entries.len()`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn find(tags: &[u8], entries: &[Entry], key: &[u8], tag: u8) -> Option<usize> {
        let needle = _mm_set1_epi8(tag as i8);
        let mut i = 0;
        while i + 16 <= tags.len() {
            // SAFETY: `i + 16 <= tags.len()` bounds the load.
            let v = unsafe { _mm_loadu_si128(tags.as_ptr().add(i).cast()) };
            let mut mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle)) as u32;
            while mask != 0 {
                let j = i + mask.trailing_zeros() as usize;
                if entries[j].key == key {
                    return Some(j);
                }
                mask &= mask - 1;
            }
            i += 16;
        }
        for (j, entry) in entries.iter().enumerate().skip(i) {
            if tags[j] == tag && entry.key == key {
                return Some(j);
            }
        }
        None
    }
}

/// The sharded store. Time is a logical clock advanced by the caller
/// (`now` parameters), keeping the store deterministic for tests and
/// simulations.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<Shard>,
    stats: KvStats,
}

impl KvStore {
    /// Creates a store with `shards` buckets (rounded up to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            stats: KvStats::default(),
        }
    }

    /// One hash, used twice: shard index from the low bits (mod), probe
    /// tag from the top byte — independent bit ranges, so tags spread
    /// within a shard.
    fn locate(&self, key: &[u8]) -> (usize, u8) {
        let h = fnv1a_64(key);
        ((h % self.shards.len() as u64) as usize, (h >> 56) as u8)
    }

    /// Stores `value` under `key`, expiring `ttl_seconds` after `now`.
    /// A zero TTL stores an immediately-expired tombstone.
    pub fn set(&mut self, key: &[u8], value: Vec<u8>, ttl_seconds: u64, now: u64) {
        let simd = crate::dispatch::has(crate::dispatch::SSE2);
        let expires_at = now.saturating_add(ttl_seconds);
        let (idx, tag) = self.locate(key);
        let shard = &mut self.shards[idx];
        match shard.find(key, tag, simd) {
            Some(i) => {
                shard.entries[i].value = value;
                shard.entries[i].expires_at = expires_at;
            }
            None => {
                shard.tags.push(tag);
                shard.entries.push(Entry {
                    key: key.to_vec(),
                    value,
                    expires_at,
                });
            }
        }
        self.stats.sets += 1;
    }

    /// Fetches a live value, lazily evicting expired entries.
    pub fn get(&mut self, key: &[u8], now: u64) -> Option<Vec<u8>> {
        self.get_with(key, now, crate::dispatch::has(crate::dispatch::SSE2))
    }

    /// [`KvStore::get`] pinned to the scalar probe, regardless of the
    /// dispatch mode — the reference tier the equivalence tests compare
    /// against. Results and stats transitions are identical.
    pub fn get_scalar(&mut self, key: &[u8], now: u64) -> Option<Vec<u8>> {
        self.get_with(key, now, false)
    }

    fn get_with(&mut self, key: &[u8], now: u64, simd: bool) -> Option<Vec<u8>> {
        let (idx, tag) = self.locate(key);
        let shard = &mut self.shards[idx];
        match shard.find(key, tag, simd) {
            Some(i) if shard.entries[i].expires_at > now => {
                let value = shard.entries[i].value.clone();
                self.stats.hits += 1;
                Some(value)
            }
            Some(i) => {
                shard.remove(i);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Serves one decoded RPC message, producing the response message —
    /// the whole of Cache's application logic.
    pub fn serve(&mut self, request: &KvMessage, now: u64) -> KvMessage {
        match request {
            KvMessage::Get { key } => match self.get(key, now) {
                Some(value) => KvMessage::Hit { value },
                None => KvMessage::Miss,
            },
            KvMessage::Set {
                key,
                value,
                ttl_seconds,
            } => {
                self.set(key, value.clone(), *ttl_seconds, now);
                KvMessage::Miss // acknowledgement carries no payload
            }
            // Responses arriving as requests are protocol errors; answer
            // with a miss rather than crashing the service.
            KvMessage::Hit { .. } | KvMessage::Miss => KvMessage::Miss,
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Live (possibly expired-but-unswept) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sweeps every shard, dropping entries expired at `now`; returns the
    /// number evicted (the "removing pages faulted in" cost §2.3.1
    /// attributes to frees happens here in a real cache).
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let mut evicted = 0;
        for shard in &mut self.shards {
            let before = shard.entries.len();
            // In-place compaction keeping both arrays in lockstep.
            let mut kept = 0;
            for i in 0..before {
                if shard.entries[i].expires_at > now {
                    shard.entries.swap(kept, i);
                    shard.tags.swap(kept, i);
                    kept += 1;
                }
            }
            shard.entries.truncate(kept);
            shard.tags.truncate(kept);
            evicted += before - kept;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut store = KvStore::new(8);
        store.set(b"user:1", b"alice".to_vec(), 60, 0);
        assert_eq!(store.get(b"user:1", 30), Some(b"alice".to_vec()));
        assert_eq!(store.get(b"user:2", 30), None);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().sets, 1);
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entries_expire_lazily() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"v".to_vec(), 10, 100);
        assert_eq!(store.get(b"k", 109), Some(b"v".to_vec()));
        // At exactly expires_at the entry is dead.
        assert_eq!(store.get(b"k", 110), None);
        assert_eq!(store.stats().expired, 1);
        // The expired entry was evicted on access.
        assert!(store.is_empty());
    }

    #[test]
    fn overwrite_replaces_value_and_ttl() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"old".to_vec(), 5, 0);
        store.set(b"k", b"new".to_vec(), 100, 0);
        assert_eq!(store.get(b"k", 50), Some(b"new".to_vec()));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn zero_ttl_is_a_tombstone() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"v".to_vec(), 0, 77);
        assert_eq!(store.get(b"k", 77), None);
    }

    #[test]
    fn sweep_evicts_in_bulk() {
        let mut store = KvStore::new(4);
        for i in 0..100u32 {
            let ttl = if i % 2 == 0 { 10 } else { 1_000 };
            store.set(&i.to_le_bytes(), vec![0u8; 16], ttl, 0);
        }
        assert_eq!(store.len(), 100);
        let evicted = store.sweep_expired(500);
        assert_eq!(evicted, 50);
        assert_eq!(store.len(), 50);
        // Sweeping again is a no-op.
        assert_eq!(store.sweep_expired(500), 0);
    }

    #[test]
    fn serve_implements_the_rpc_protocol() {
        let mut store = KvStore::new(4);
        let ack = store.serve(
            &KvMessage::Set {
                key: b"feed:1".to_vec(),
                value: b"stories".to_vec(),
                ttl_seconds: 60,
            },
            0,
        );
        assert_eq!(ack, KvMessage::Miss);
        let hit = store.serve(&KvMessage::Get { key: b"feed:1".to_vec() }, 10);
        assert_eq!(hit, KvMessage::Hit { value: b"stories".to_vec() });
        let miss = store.serve(&KvMessage::Get { key: b"nope".to_vec() }, 10);
        assert_eq!(miss, KvMessage::Miss);
        // Protocol errors answer safely.
        assert_eq!(store.serve(&KvMessage::Miss, 10), KvMessage::Miss);
    }

    #[test]
    fn sharding_distributes_keys() {
        let mut store = KvStore::new(16);
        for i in 0..1_000u32 {
            store.set(format!("key:{i}").as_bytes(), vec![1], 100, 0);
        }
        // Every shard got something (FNV spreads these keys).
        assert!(store.shards.iter().all(|s| !s.entries.is_empty()));
        assert_eq!(store.len(), 1_000);
    }

    #[test]
    fn dispatched_probe_matches_scalar_probe() {
        // One shard forces every key into the same tag array, deep
        // enough (200 entries) that the 16-wide probe loop and its tail
        // both run; get vs get_scalar must agree on hits, misses,
        // expiry evictions, and stats at every step.
        let mut a = KvStore::new(1);
        let mut b = KvStore::new(1);
        for i in 0..200u32 {
            let key = format!("key:{i}");
            let ttl = u64::from(10 + i % 20);
            a.set(key.as_bytes(), key.as_bytes().to_vec(), ttl, 0);
            b.set(key.as_bytes(), key.as_bytes().to_vec(), ttl, 0);
        }
        for now in [5u64, 15, 25, 40] {
            for i in 0..220u32 {
                let key = format!("key:{i}");
                assert_eq!(
                    a.get(key.as_bytes(), now),
                    b.get_scalar(key.as_bytes(), now),
                    "probe divergence at key {i} now {now}"
                );
            }
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn ttl_saturates_instead_of_overflowing() {
        let mut store = KvStore::new(1);
        store.set(b"k", b"v".to_vec(), u64::MAX, u64::MAX - 1);
        assert_eq!(store.get(b"k", u64::MAX - 1), Some(b"v".to_vec()));
    }

    #[test]
    fn zero_shard_request_rounds_up() {
        let store = KvStore::new(0);
        assert_eq!(store.shards.len(), 1);
    }
}
