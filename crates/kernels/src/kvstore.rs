//! A sharded, TTL-aware key-value store: the Cache services' *core
//! application logic* (Table 3: "core business logic (e.g., Cache's
//! key-value serving)").
//!
//! Together with the [`crate::pipeline`] this completes a runnable
//! Cache1-like microservice: frames come in, the orchestration pipeline
//! unwraps them, this store serves them, and the pipeline wraps the
//! response — letting the examples measure a living version of the
//! paper's "application logic vs orchestration" split.
//!
//! The design mirrors a memcached-style store at small scale: FNV-sharded
//! buckets, per-shard maps, logical-clock TTLs, and LRU-free lazy
//! expiry with stats for hit/miss/expired accounting.

use std::collections::HashMap;

use crate::codec::KvMessage;
use crate::hash::fnv1a_64;

/// Hit/miss/expiry counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// Gets that found a live value.
    pub hits: u64,
    /// Gets that found nothing.
    pub misses: u64,
    /// Gets that found an expired value (counted as misses too).
    pub expired: u64,
    /// Sets (inserts or overwrites).
    pub sets: u64,
}

impl KvStats {
    /// Hit rate over all gets (0 when no gets have happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            0.0
        } else {
            self.hits as f64 / gets as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Vec<u8>,
    expires_at: u64,
}

/// The sharded store. Time is a logical clock advanced by the caller
/// (`now` parameters), keeping the store deterministic for tests and
/// simulations.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<HashMap<Vec<u8>, Entry>>,
    stats: KvStats,
}

impl KvStore {
    /// Creates a store with `shards` buckets (rounded up to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| HashMap::new()).collect(),
            stats: KvStats::default(),
        }
    }

    fn shard_mut(&mut self, key: &[u8]) -> &mut HashMap<Vec<u8>, Entry> {
        let idx = (fnv1a_64(key) % self.shards.len() as u64) as usize;
        &mut self.shards[idx]
    }

    /// Stores `value` under `key`, expiring `ttl_seconds` after `now`.
    /// A zero TTL stores an immediately-expired tombstone.
    pub fn set(&mut self, key: &[u8], value: Vec<u8>, ttl_seconds: u64, now: u64) {
        let expires_at = now.saturating_add(ttl_seconds);
        self.shard_mut(key).insert(
            key.to_vec(),
            Entry { value, expires_at },
        );
        self.stats.sets += 1;
    }

    /// Fetches a live value, lazily evicting expired entries.
    pub fn get(&mut self, key: &[u8], now: u64) -> Option<Vec<u8>> {
        let shard = self.shard_mut(key);
        match shard.get(key) {
            Some(entry) if entry.expires_at > now => {
                let value = entry.value.clone();
                self.stats.hits += 1;
                Some(value)
            }
            Some(_) => {
                shard.remove(key);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Serves one decoded RPC message, producing the response message —
    /// the whole of Cache's application logic.
    pub fn serve(&mut self, request: &KvMessage, now: u64) -> KvMessage {
        match request {
            KvMessage::Get { key } => match self.get(key, now) {
                Some(value) => KvMessage::Hit { value },
                None => KvMessage::Miss,
            },
            KvMessage::Set {
                key,
                value,
                ttl_seconds,
            } => {
                self.set(key, value.clone(), *ttl_seconds, now);
                KvMessage::Miss // acknowledgement carries no payload
            }
            // Responses arriving as requests are protocol errors; answer
            // with a miss rather than crashing the service.
            KvMessage::Hit { .. } | KvMessage::Miss => KvMessage::Miss,
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Live (possibly expired-but-unswept) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sweeps every shard, dropping entries expired at `now`; returns the
    /// number evicted (the "removing pages faulted in" cost §2.3.1
    /// attributes to frees happens here in a real cache).
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let mut evicted = 0;
        for shard in &mut self.shards {
            let before = shard.len();
            shard.retain(|_, entry| entry.expires_at > now);
            evicted += before - shard.len();
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut store = KvStore::new(8);
        store.set(b"user:1", b"alice".to_vec(), 60, 0);
        assert_eq!(store.get(b"user:1", 30), Some(b"alice".to_vec()));
        assert_eq!(store.get(b"user:2", 30), None);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().sets, 1);
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entries_expire_lazily() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"v".to_vec(), 10, 100);
        assert_eq!(store.get(b"k", 109), Some(b"v".to_vec()));
        // At exactly expires_at the entry is dead.
        assert_eq!(store.get(b"k", 110), None);
        assert_eq!(store.stats().expired, 1);
        // The expired entry was evicted on access.
        assert!(store.is_empty());
    }

    #[test]
    fn overwrite_replaces_value_and_ttl() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"old".to_vec(), 5, 0);
        store.set(b"k", b"new".to_vec(), 100, 0);
        assert_eq!(store.get(b"k", 50), Some(b"new".to_vec()));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn zero_ttl_is_a_tombstone() {
        let mut store = KvStore::new(4);
        store.set(b"k", b"v".to_vec(), 0, 77);
        assert_eq!(store.get(b"k", 77), None);
    }

    #[test]
    fn sweep_evicts_in_bulk() {
        let mut store = KvStore::new(4);
        for i in 0..100u32 {
            let ttl = if i % 2 == 0 { 10 } else { 1_000 };
            store.set(&i.to_le_bytes(), vec![0u8; 16], ttl, 0);
        }
        assert_eq!(store.len(), 100);
        let evicted = store.sweep_expired(500);
        assert_eq!(evicted, 50);
        assert_eq!(store.len(), 50);
        // Sweeping again is a no-op.
        assert_eq!(store.sweep_expired(500), 0);
    }

    #[test]
    fn serve_implements_the_rpc_protocol() {
        let mut store = KvStore::new(4);
        let ack = store.serve(
            &KvMessage::Set {
                key: b"feed:1".to_vec(),
                value: b"stories".to_vec(),
                ttl_seconds: 60,
            },
            0,
        );
        assert_eq!(ack, KvMessage::Miss);
        let hit = store.serve(&KvMessage::Get { key: b"feed:1".to_vec() }, 10);
        assert_eq!(hit, KvMessage::Hit { value: b"stories".to_vec() });
        let miss = store.serve(&KvMessage::Get { key: b"nope".to_vec() }, 10);
        assert_eq!(miss, KvMessage::Miss);
        // Protocol errors answer safely.
        assert_eq!(store.serve(&KvMessage::Miss, 10), KvMessage::Miss);
    }

    #[test]
    fn sharding_distributes_keys() {
        let mut store = KvStore::new(16);
        for i in 0..1_000u32 {
            store.set(format!("key:{i}").as_bytes(), vec![1], 100, 0);
        }
        // Every shard got something (FNV spreads these keys).
        assert!(store.shards.iter().all(|s| !s.is_empty()));
        assert_eq!(store.len(), 1_000);
    }

    #[test]
    fn ttl_saturates_instead_of_overflowing() {
        let mut store = KvStore::new(1);
        store.set(b"k", b"v".to_vec(), u64::MAX, u64::MAX - 1);
        assert_eq!(store.get(b"k", u64::MAX - 1), Some(b"v".to_vec()));
    }

    #[test]
    fn zero_shard_request_rounds_up() {
        let store = KvStore::new(0);
        assert_eq!(store.shards.len(), 1);
    }
}
