//! Runtime ISA dispatch for the kernel crate's SIMD paths.
//!
//! The paper's on-chip case study (AES-NI) is an ISA extension: the
//! *measured host baseline* should use the hardware the host actually
//! exposes, and the scalar implementations become the explicit
//! unaccelerated reference the model's `A` factor is measured against.
//! This module centralizes that decision:
//!
//! * Hardware capability is detected **once** per process
//!   (`is_x86_feature_detected!`) and cached in an atomic, so per-call
//!   dispatch is one relaxed load and a branch.
//! * `KERNELS_FORCE_SCALAR=1` in the environment forces every kernel
//!   onto its scalar path for the life of the process — this is how
//!   `scripts/tier1.sh` runs the whole kernel test suite on both tiers.
//! * [`set_isa_mode`] is the programmatic override behind the
//!   `accelctl --isa scalar|auto` flag (and the calibrator's paired
//!   scalar-vs-dispatched measurements).
//! * On non-x86_64 targets nothing is detected and every kernel runs
//!   its scalar path; the dispatch layer compiles to "always scalar".
//!
//! Every SIMD path in this crate is bit-identical to its scalar
//! reference — same ciphertext, digests, token streams, orderings and
//! f32 bit patterns — so the mode is unobservable in outputs and only
//! changes wall-clock. The `simd_equivalence` integration tests and the
//! forced-scalar tier-1 run hold that line.

use std::sync::atomic::{AtomicU8, Ordering};

/// Feature bit: AES-NI (`aesenc`/`aesenclast`).
pub const AES: u8 = 1 << 0;
/// Feature bit: SHA extensions (`sha256rnds2`/`sha256msg1`/`sha256msg2`).
pub const SHA: u8 = 1 << 1;
/// Feature bit: AVX2 (32-byte integer/float vectors).
pub const AVX2: u8 = 1 << 2;
/// Feature bit: SSE4.1 (`pblendw` et al.; implied baseline for SHA-NI).
pub const SSE41: u8 = 1 << 3;
/// Feature bit: SSSE3 (`pshufb`/`palignr`; byte shuffles for SHA-NI).
pub const SSSE3: u8 = 1 << 4;
/// Feature bit: SSE2 (x86_64 baseline; 16-byte tag probes in kvstore).
pub const SSE2: u8 = 1 << 5;

/// Marker bit recording that the cached word has been initialized
/// (distinguishes "no features" from "not yet detected").
const INIT: u8 = 1 << 7;

/// Cached *active* feature set: hardware detection masked by the
/// current mode. Recomputed on [`set_isa_mode`]; `0` means "not yet
/// computed" (a computed-empty set still carries [`INIT`]).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Mode override: 0 = unset (env decides), 1 = auto, 2 = scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

/// How kernels choose between scalar and hardware paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaMode {
    /// Use whatever the CPU exposes (the default).
    Auto,
    /// Force every kernel onto its scalar reference path.
    Scalar,
}

/// Raw hardware detection, independent of any override.
fn detect() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        let mut bits = SSE2; // x86_64 baseline, always present.
        if std::arch::is_x86_feature_detected!("aes") {
            bits |= AES;
        }
        if std::arch::is_x86_feature_detected!("sha") {
            bits |= SHA;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            bits |= AVX2;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            bits |= SSE41;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            bits |= SSSE3;
        }
        bits
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

fn env_forces_scalar() -> bool {
    std::env::var_os("KERNELS_FORCE_SCALAR").is_some_and(|v| v == *"1")
}

/// The mode currently in force: a [`set_isa_mode`] override wins,
/// otherwise `KERNELS_FORCE_SCALAR=1` in the environment, otherwise
/// [`IsaMode::Auto`].
#[must_use]
pub fn isa_mode() -> IsaMode {
    match MODE.load(Ordering::Relaxed) {
        1 => IsaMode::Auto,
        2 => IsaMode::Scalar,
        _ => {
            if env_forces_scalar() {
                IsaMode::Scalar
            } else {
                IsaMode::Auto
            }
        }
    }
}

/// Overrides the dispatch mode process-wide (the `--isa scalar|auto`
/// flag and the calibrator's paired measurements). Takes effect for all
/// subsequent kernel calls; outputs are bit-identical either way, so
/// flipping mid-run changes only wall-clock.
pub fn set_isa_mode(mode: IsaMode) {
    MODE.store(
        match mode {
            IsaMode::Auto => 1,
            IsaMode::Scalar => 2,
        },
        Ordering::Relaxed,
    );
    // Invalidate the cache; the next `active()` recomputes under the
    // new mode.
    ACTIVE.store(0, Ordering::Relaxed);
}

#[cold]
fn init_active() -> u8 {
    let bits = match isa_mode() {
        IsaMode::Auto => detect(),
        IsaMode::Scalar => 0,
    } | INIT;
    ACTIVE.store(bits, Ordering::Relaxed);
    bits
}

/// The active feature bits (hardware detection masked by the mode).
#[inline]
#[must_use]
pub fn active() -> u8 {
    let bits = ACTIVE.load(Ordering::Relaxed);
    if bits & INIT != 0 {
        bits
    } else {
        init_active()
    }
}

/// Whether a feature (one of the bit constants above) is active.
#[inline]
#[must_use]
pub fn has(feature: u8) -> bool {
    active() & feature == feature
}

/// The canonical summary string for a feature word: feature names in a
/// fixed order joined by `+`, or `"scalar"` when nothing is active.
/// `BENCH_*.json` records and `bench_regress.sh` compare these strings,
/// so the format is part of the bench-record contract (the vendored
/// criterion stub renders the same format independently).
#[must_use]
pub fn summary_of(bits: u8) -> String {
    let mut names = Vec::new();
    for (bit, name) in [
        (AES, "aes"),
        (AVX2, "avx2"),
        (SHA, "sha"),
        (SSE2, "sse2"),
        (SSE41, "sse4.1"),
        (SSSE3, "ssse3"),
    ] {
        if bits & bit != 0 {
            names.push(name);
        }
    }
    if names.is_empty() {
        "scalar".to_owned()
    } else {
        names.join("+")
    }
}

/// Summary of the *active* feature set (mode applied) — what the
/// kernels will actually use right now.
#[must_use]
pub fn active_summary() -> String {
    summary_of(active() & !INIT)
}

/// Summary of the raw hardware detection, ignoring any override.
#[must_use]
pub fn detected_summary() -> String {
    summary_of(detect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_formats_are_stable() {
        assert_eq!(summary_of(0), "scalar");
        assert_eq!(summary_of(AES | SHA | AVX2), "aes+avx2+sha");
        assert_eq!(
            summary_of(AES | SHA | AVX2 | SSE2 | SSE41 | SSSE3),
            "aes+avx2+sha+sse2+sse4.1+ssse3"
        );
    }

    #[test]
    fn active_is_detection_under_auto_and_empty_under_scalar() {
        // Note: mode is process-global; this test restores Auto so other
        // tests in this binary observe the default.
        set_isa_mode(IsaMode::Scalar);
        assert_eq!(active() & !INIT, 0);
        assert_eq!(active_summary(), "scalar");
        set_isa_mode(IsaMode::Auto);
        assert_eq!(active() & !INIT, detect());
        #[cfg(target_arch = "x86_64")]
        assert!(has(SSE2), "SSE2 is the x86_64 baseline");
    }

    #[test]
    fn has_requires_all_requested_bits() {
        set_isa_mode(IsaMode::Auto);
        if has(SHA) {
            // SHA-NI machines always carry its SSSE3/SSE4.1 prerequisites.
            assert!(has(SHA | SSSE3 | SSE41));
        }
        assert!(!has(0b0100_0000), "unassigned bit can never be active");
    }
}
