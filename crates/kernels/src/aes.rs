//! AES-128 block cipher and CTR-mode stream encryption (FIPS-197).
//!
//! This is the software baseline for the paper's first case study: the
//! AES-NI instruction accelerates exactly this computation (§4, case
//! study 1, using AES from OpenSSL to build micro-benchmarks). The
//! scalar implementation is a straightforward, table-free FIPS-197
//! rendering — byte-oriented S-box, shift-rows, mix-columns — so its
//! per-byte cost is representative of unaccelerated encryption.
//!
//! When the host exposes AES-NI (and [`crate::dispatch`] has not been
//! forced scalar), [`Aes128::encrypt_block`] and [`Aes128::ctr_apply`]
//! run `aesenc`/`aesenclast` instead — the *same* cipher evaluated by
//! the ISA extension the paper's case study 1 measures, so ciphertext
//! is byte-identical and the scalar/AES-NI cost gap is an honestly
//! measured on-chip acceleration factor, not a modeled one. The scalar
//! tier stays reachable as [`Aes128::ctr_apply_scalar`] /
//! [`Aes128::encrypt_block_scalar`] so the harness can measure both
//! sides in one session.

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// AES-128 key length in bytes.
pub const KEY_SIZE: usize = 16;

const ROUNDS: usize = 10;

/// The AES S-box (FIPS-197 Fig. 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// `xtime`: multiplication by x (i.e. {02}) in GF(2^8).
fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// An expanded AES-128 key schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; BLOCK_SIZE]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands a 128-bit key into the 11 round keys (FIPS-197 §5.2).
    #[must_use]
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..w.len() {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[usize::from(*byte)];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; BLOCK_SIZE]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    /// Encrypts one 16-byte block in place, on AES-NI when the host has
    /// it ([`crate::dispatch`]), else on the scalar FIPS-197 rendering.
    /// Both produce identical ciphertext — AES is deterministic and the
    /// ISA evaluates the same cipher.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        #[cfg(target_arch = "x86_64")]
        if crate::dispatch::has(crate::dispatch::AES) {
            // SAFETY: AES-NI presence was checked at runtime just above.
            #[allow(unsafe_code)]
            unsafe {
                simd::encrypt_block(&self.round_keys, block);
            }
            return;
        }
        self.encrypt_block_scalar(block);
    }

    /// The scalar FIPS-197 reference for [`Aes128::encrypt_block`],
    /// always available: the unaccelerated-host tier the model measures
    /// `A` against, and the oracle the equivalence tests compare the
    /// AES-NI path to.
    pub fn encrypt_block_scalar(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Encrypts (or decrypts — CTR is symmetric) `data` in place using
    /// CTR mode with the given 16-byte initial counter block.
    ///
    /// Returns the number of AES block operations performed, which is
    /// the quantity a micro-benchmark divides into elapsed cycles to get
    /// the per-block cost.
    ///
    /// Dispatches to an AES-NI path that keeps eight keystream blocks in
    /// flight (the `aesenc` latency is several cycles but the unit is
    /// pipelined, so independent blocks fill the bubble); ciphertext is
    /// byte-identical to [`Aes128::ctr_apply_scalar`].
    pub fn ctr_apply(&self, counter: &[u8; BLOCK_SIZE], data: &mut [u8]) -> usize {
        #[cfg(target_arch = "x86_64")]
        if crate::dispatch::has(crate::dispatch::AES) {
            // SAFETY: AES-NI presence was checked at runtime just above.
            #[allow(unsafe_code)]
            return unsafe { simd::ctr_apply(&self.round_keys, counter, data) };
        }
        self.ctr_apply_scalar(counter, data)
    }

    /// The scalar tier of [`Aes128::ctr_apply`], always available (see
    /// [`Aes128::encrypt_block_scalar`] for why it stays public).
    pub fn ctr_apply_scalar(&self, counter: &[u8; BLOCK_SIZE], data: &mut [u8]) -> usize {
        let mut blocks = 0;
        let mut ctr = *counter;
        // One keystream block reused across chunks: refilled in place
        // from the counter rather than materialised anew per block.
        let mut keystream = [0u8; BLOCK_SIZE];
        for chunk in data.chunks_mut(BLOCK_SIZE) {
            keystream.copy_from_slice(&ctr);
            self.encrypt_block_scalar(&mut keystream);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
            increment_counter(&mut ctr);
            blocks += 1;
        }
        blocks
    }
}

/// AES-NI paths. `aesenc` performs exactly one FIPS-197 round
/// (ShiftRows → SubBytes → MixColumns → AddRoundKey) and `aesenclast`
/// the final round without MixColumns, over the same column-major state
/// bytes [`Aes128`] stores its round keys in — so the hardware path is
/// the same function, not an approximation, and ciphertext is
/// byte-identical by construction (the FIPS/SP 800-38A known-answer
/// tests run on whichever tier dispatch selects).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    use super::{increment_counter, BLOCK_SIZE, ROUNDS};

    /// Keystream blocks kept in flight per CTR step: enough independent
    /// `aesenc` chains to hide the instruction's latency.
    const LANES: usize = 8;

    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn load_round_keys(rk: &[[u8; BLOCK_SIZE]; ROUNDS + 1]) -> [__m128i; ROUNDS + 1] {
        let mut keys = [unsafe { _mm_loadu_si128(rk[0].as_ptr().cast()) }; ROUNDS + 1];
        for (key, bytes) in keys.iter_mut().zip(rk.iter()).skip(1) {
            *key = unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) };
        }
        keys
    }

    /// One block through the full ten-round AES-128 data path.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_loaded(keys: &[__m128i; ROUNDS + 1], block: __m128i) -> __m128i {
        let mut state = _mm_xor_si128(block, keys[0]);
        for key in &keys[1..ROUNDS] {
            state = _mm_aesenc_si128(state, *key);
        }
        _mm_aesenclast_si128(state, keys[ROUNDS])
    }

    /// # Safety
    /// Caller must have verified AES-NI support at runtime.
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_block(
        rk: &[[u8; BLOCK_SIZE]; ROUNDS + 1],
        block: &mut [u8; BLOCK_SIZE],
    ) {
        unsafe {
            let keys = load_round_keys(rk);
            let state = encrypt_loaded(&keys, _mm_loadu_si128(block.as_ptr().cast()));
            _mm_storeu_si128(block.as_mut_ptr().cast(), state);
        }
    }

    /// # Safety
    /// Caller must have verified AES-NI support at runtime.
    #[target_feature(enable = "aes")]
    pub unsafe fn ctr_apply(
        rk: &[[u8; BLOCK_SIZE]; ROUNDS + 1],
        counter: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) -> usize {
        let keys = unsafe { load_round_keys(rk) };
        let blocks = data.len().div_ceil(BLOCK_SIZE);
        let mut ctr = *counter;
        // Counter blocks are materialised scalar-side (the big-endian
        // increment is a handful of byte ops against 10 AES rounds) and
        // encrypted LANES at a time with independent chains.
        let mut ctr_buf = [0u8; LANES * BLOCK_SIZE];
        let mut wide = data.chunks_exact_mut(LANES * BLOCK_SIZE);
        for group in &mut wide {
            for lane in ctr_buf.chunks_exact_mut(BLOCK_SIZE) {
                lane.copy_from_slice(&ctr);
                increment_counter(&mut ctr);
            }
            unsafe {
                let mut ks = [_mm_loadu_si128(ctr_buf.as_ptr().cast()); LANES];
                for (lane, chunk) in ks.iter_mut().zip(ctr_buf.chunks_exact(BLOCK_SIZE)) {
                    *lane = _mm_xor_si128(_mm_loadu_si128(chunk.as_ptr().cast()), keys[0]);
                }
                for key in &keys[1..ROUNDS] {
                    for lane in &mut ks {
                        *lane = _mm_aesenc_si128(*lane, *key);
                    }
                }
                for (lane, chunk) in ks.iter_mut().zip(group.chunks_exact_mut(BLOCK_SIZE)) {
                    let stream = _mm_aesenclast_si128(*lane, keys[ROUNDS]);
                    let text = _mm_loadu_si128(chunk.as_ptr().cast());
                    _mm_storeu_si128(chunk.as_mut_ptr().cast(), _mm_xor_si128(text, stream));
                }
            }
        }
        let tail = wide.into_remainder();
        let mut full = tail.chunks_exact_mut(BLOCK_SIZE);
        for chunk in &mut full {
            unsafe {
                let stream = encrypt_loaded(&keys, _mm_loadu_si128(ctr.as_ptr().cast()));
                let text = _mm_loadu_si128(chunk.as_ptr().cast());
                _mm_storeu_si128(chunk.as_mut_ptr().cast(), _mm_xor_si128(text, stream));
            }
            increment_counter(&mut ctr);
        }
        let partial = full.into_remainder();
        if !partial.is_empty() {
            let mut keystream = ctr;
            unsafe { encrypt_block(rk, &mut keystream) };
            for (byte, ks) in partial.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
        blocks
    }
}

fn add_round_key(state: &mut [u8; BLOCK_SIZE], rk: &[u8; BLOCK_SIZE]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; BLOCK_SIZE]) {
    for byte in state.iter_mut() {
        *byte = SBOX[usize::from(*byte)];
    }
}

/// State is column-major: `state[4c + r]` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; BLOCK_SIZE]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = state[4 * ((c + r) % 4) + r];
        }
        for c in 0..4 {
            state[4 * c + r] = row[c];
        }
    }
}

fn mix_columns(state: &mut [u8; BLOCK_SIZE]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let xor_all = col[0] ^ col[1] ^ col[2] ^ col[3];
        for r in 0..4 {
            state[4 * c + r] = col[r] ^ xor_all ^ xtime(col[r] ^ col[(r + 1) % 4]);
        }
    }
}

fn increment_counter(ctr: &mut [u8; BLOCK_SIZE]) {
    for byte in ctr.iter_mut().rev() {
        *byte = byte.wrapping_add(1);
        if *byte != 0 {
            break;
        }
    }
}

/// Convenience: encrypt a buffer with AES-128-CTR, returning the
/// ciphertext.
#[must_use]
pub fn encrypt_ctr(key: &[u8; KEY_SIZE], counter: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encrypt_ctr_into(key, counter, plaintext, &mut out);
    out
}

/// [`encrypt_ctr`] without the per-call allocation: writes the
/// ciphertext into `out`, reusing whatever capacity it already holds.
/// `out` is cleared first, so it ends up holding exactly the
/// ciphertext. Returns the number of AES block operations performed
/// (the same count [`Aes128::ctr_apply`] reports), so batch callers can
/// still derive per-block cost.
pub fn encrypt_ctr_into(
    key: &[u8; KEY_SIZE],
    counter: &[u8; BLOCK_SIZE],
    plaintext: &[u8],
    out: &mut Vec<u8>,
) -> usize {
    let cipher = Aes128::new(key);
    out.clear();
    out.extend_from_slice(plaintext);
    cipher.ctr_apply(counter, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: the worked AES-128 example.
    #[test]
    fn fips197_appendix_b_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19,
                0x6a, 0x0b, 0x32
            ]
        );
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a
            ]
        );
    }

    /// NIST SP 800-38A F.5.1: AES-128-CTR known-answer test (first two
    /// blocks).
    #[test]
    fn sp800_38a_ctr_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let counter: [u8; 16] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let plaintext: [u8; 32] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51,
        ];
        let ciphertext = encrypt_ctr(&key, &counter, &plaintext);
        assert_eq!(
            ciphertext,
            vec![
                0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99,
                0x0d, 0xb6, 0xce, 0x98, 0x06, 0xf6, 0x6b, 0x79, 0x70, 0xfd, 0xff, 0x86, 0x17,
                0x18, 0x7b, 0xb9, 0xff, 0xfd, 0xff
            ]
        );
    }

    #[test]
    fn ctr_is_its_own_inverse() {
        let key = [7u8; 16];
        let counter = [1u8; 16];
        let plaintext: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let ciphertext = encrypt_ctr(&key, &counter, &plaintext);
        assert_ne!(ciphertext, plaintext);
        let decrypted = encrypt_ctr(&key, &counter, &ciphertext);
        assert_eq!(decrypted, plaintext);
    }

    #[test]
    fn ctr_handles_partial_final_block() {
        let key = [9u8; 16];
        let counter = [0u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 33] {
            let plaintext = vec![0xabu8; len];
            let ciphertext = encrypt_ctr(&key, &counter, &plaintext);
            assert_eq!(ciphertext.len(), len);
            assert_eq!(encrypt_ctr(&key, &counter, &ciphertext), plaintext);
        }
    }

    #[test]
    fn ctr_reports_block_count() {
        let cipher = Aes128::new(&[0u8; 16]);
        let mut data = vec![0u8; 100];
        let blocks = cipher.ctr_apply(&[0u8; 16], &mut data);
        assert_eq!(blocks, 7); // ceil(100 / 16)
        let mut empty: Vec<u8> = vec![];
        assert_eq!(cipher.ctr_apply(&[0u8; 16], &mut empty), 0);
    }

    #[test]
    fn encrypt_ctr_into_matches_and_reuses_capacity() {
        let key = [3u8; 16];
        let counter = [5u8; 16];
        let mut out = Vec::with_capacity(4_096);
        let base = out.capacity();
        for len in [0usize, 1, 16, 100, 1_000] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let blocks = encrypt_ctr_into(&key, &counter, &plaintext, &mut out);
            assert_eq!(out, encrypt_ctr(&key, &counter, &plaintext));
            assert_eq!(blocks, len.div_ceil(16));
            assert_eq!(out.capacity(), base, "buffer reallocated at len {len}");
        }
    }

    #[test]
    fn counter_increment_carries() {
        let mut ctr = [0xffu8; 16];
        increment_counter(&mut ctr);
        assert_eq!(ctr, [0u8; 16]);
        let mut ctr = [0u8; 16];
        ctr[15] = 0xff;
        increment_counter(&mut ctr);
        assert_eq!(ctr[15], 0);
        assert_eq!(ctr[14], 1);
    }

    #[test]
    fn different_keys_differ() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        Aes128::new(&[1u8; 16]).encrypt_block(&mut a);
        Aes128::new(&[2u8; 16]).encrypt_block(&mut b);
        assert_ne!(a, b);
    }
}
