//! The RPC orchestration pipeline: the end-to-end path a microservice
//! request takes before and after its application logic, composed from
//! this crate's kernels.
//!
//! §1's framing: "upon receiving an RPC, a microservice must often
//! perform operations such as I/O processing, decompression,
//! deserialization, and decryption, before it can execute its core
//! functionality." The sender runs serialize → compress → encrypt →
//! frame; the receiver inverts it. Each stage's byte volume is accounted
//! per Table 3 category, so a live run yields the per-functionality α
//! profile the Accelerometer model consumes.

use std::collections::HashMap;
use std::fmt;

use crate::aes::{Aes128, BLOCK_SIZE, KEY_SIZE};
use crate::codec::{DecodeError, KvMessage};
use crate::hash::fnv1a_64;
use crate::lz::{self, DecompressError, LzScratch};

/// Errors produced while unwrapping a received frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The frame is shorter than its header.
    ShortFrame,
    /// The integrity checksum did not match (corruption or wrong key).
    ChecksumMismatch,
    /// Decompression failed.
    Decompress(DecompressError),
    /// Deserialization failed.
    Decode(DecodeError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::ShortFrame => write!(f, "frame shorter than header"),
            PipelineError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            PipelineError::Decompress(e) => write!(f, "decompression failed: {e}"),
            PipelineError::Decode(e) => write!(f, "deserialization failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The pipeline stages, in Table 3 functionality terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// RPC (de)serialization.
    Serialization,
    /// (De)compression.
    Compression,
    /// Encryption/decryption (secure I/O).
    SecureIo,
    /// Framing, checksumming, buffer staging (I/O pre/post processing).
    IoPrePostProcessing,
}

/// Per-stage byte accounting for a pipeline instance.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StageBytes {
    bytes: HashMap<Stage, u64>,
    messages: u64,
}

impl StageBytes {
    /// Bytes processed by a stage so far.
    #[must_use]
    pub fn bytes(&self, stage: Stage) -> u64 {
        self.bytes.get(&stage).copied().unwrap_or(0)
    }

    /// Messages processed.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    fn add(&mut self, stage: Stage, bytes: usize) {
        *self.bytes.entry(stage).or_insert(0) += bytes as u64;
    }

    /// Per-stage share of total pipeline bytes — multiplied by each
    /// stage's measured `Cb`, this is the per-functionality cycle profile
    /// the model's `α` derives from.
    #[must_use]
    pub fn shares(&self) -> Vec<(Stage, f64)> {
        let total: u64 = self.bytes.values().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut shares: Vec<(Stage, f64)> = self
            .bytes
            .iter()
            .map(|(s, b)| (*s, *b as f64 / total as f64))
            .collect();
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        shares
    }
}

const MAGIC: u16 = 0xACCE;
const HEADER_LEN: usize = 2 + 8 + BLOCK_SIZE; // magic + checksum + counter

/// The sender/receiver pipeline with a shared key and per-message counter.
///
/// Holds reusable per-stage buffers and an [`LzScratch`], so a pipeline
/// processing a stream of messages runs its serialize → compress →
/// encrypt chain without per-stage allocation after warm-up — the same
/// discipline as [`crate::aes::Aes128::encrypt_ctr_into`]. The wire
/// frames are byte-identical to a buffer-per-call implementation.
#[derive(Debug)]
pub struct RpcPipeline {
    cipher: Aes128,
    next_counter: u64,
    stats: StageBytes,
    lz_scratch: LzScratch,
    /// Serialization stage output (and decompression output in `open`).
    serialized: Vec<u8>,
    /// Compression/encryption stage buffer (and decryption buffer in
    /// `open`).
    payload: Vec<u8>,
}

impl RpcPipeline {
    /// Creates a pipeline using the given AES-128 key.
    #[must_use]
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        Self {
            cipher: Aes128::new(key),
            next_counter: 0,
            stats: StageBytes::default(),
            lz_scratch: LzScratch::new(),
            serialized: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Stage accounting so far.
    #[must_use]
    pub fn stats(&self) -> &StageBytes {
        &self.stats
    }

    /// Wraps a message for the wire: serialize → compress → encrypt →
    /// frame (checksum + counter header).
    pub fn seal(&mut self, message: &KvMessage) -> Vec<u8> {
        let mut frame = Vec::new();
        self.seal_into(message, &mut frame);
        frame
    }

    /// [`RpcPipeline::seal`] writing the frame into `frame` (cleared
    /// first). Every stage runs in the pipeline's reusable buffers, so a
    /// warm pipeline seals without allocating.
    pub fn seal_into(&mut self, message: &KvMessage, frame: &mut Vec<u8>) {
        // Serialization.
        message.encode_into(&mut self.serialized);
        self.stats.add(Stage::Serialization, self.serialized.len());

        // Compression.
        lz::compress_into(&self.serialized, &mut self.lz_scratch, &mut self.payload);
        self.stats.add(Stage::Compression, self.serialized.len());

        // Secure I/O: encrypt under a fresh counter block.
        let counter_block = self.fresh_counter_block();
        self.cipher.ctr_apply(&counter_block, &mut self.payload);
        self.stats.add(Stage::SecureIo, self.payload.len());

        // I/O pre-processing: frame with magic, checksum, counter.
        let checksum = fnv1a_64(&self.payload);
        frame.clear();
        frame.reserve(HEADER_LEN + self.payload.len());
        frame.extend_from_slice(&MAGIC.to_be_bytes());
        frame.extend_from_slice(&checksum.to_be_bytes());
        frame.extend_from_slice(&counter_block);
        frame.extend_from_slice(&self.payload);
        self.stats.add(Stage::IoPrePostProcessing, frame.len());
        self.stats.messages += 1;
    }

    /// Unwraps a received frame: verify → decrypt → decompress →
    /// deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for short frames, checksum mismatches,
    /// or malformed payloads.
    pub fn open(&mut self, frame: &[u8]) -> Result<KvMessage, PipelineError> {
        // I/O post-processing: frame validation.
        if frame.len() < HEADER_LEN || frame[..2] != MAGIC.to_be_bytes() {
            return Err(PipelineError::ShortFrame);
        }
        self.stats.add(Stage::IoPrePostProcessing, frame.len());
        let checksum = u64::from_be_bytes(frame[2..10].try_into().expect("8 bytes"));
        let counter_block: [u8; BLOCK_SIZE] =
            frame[10..HEADER_LEN].try_into().expect("16 bytes");
        let payload = &frame[HEADER_LEN..];
        if fnv1a_64(payload) != checksum {
            return Err(PipelineError::ChecksumMismatch);
        }

        // Secure I/O: decrypt, reusing the compression-stage buffer.
        self.payload.clear();
        self.payload.extend_from_slice(payload);
        self.cipher.ctr_apply(&counter_block, &mut self.payload);
        self.stats.add(Stage::SecureIo, self.payload.len());

        // Decompression, into the serialization-stage buffer.
        lz::decompress_into(&self.payload, &mut self.serialized)
            .map_err(PipelineError::Decompress)?;
        self.stats.add(Stage::Compression, self.serialized.len());

        // Deserialization.
        let message = KvMessage::decode(&self.serialized).map_err(PipelineError::Decode)?;
        self.stats.add(Stage::Serialization, self.serialized.len());
        self.stats.messages += 1;
        Ok(message)
    }

    fn fresh_counter_block(&mut self) -> [u8; BLOCK_SIZE] {
        let mut block = [0u8; BLOCK_SIZE];
        block[..8].copy_from_slice(&self.next_counter.to_be_bytes());
        self.next_counter += 1;
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipelines() -> (RpcPipeline, RpcPipeline) {
        let key = [0x42u8; KEY_SIZE];
        (RpcPipeline::new(&key), RpcPipeline::new(&key))
    }

    fn sample_set() -> KvMessage {
        KvMessage::Set {
            key: b"feed:user:12345".to_vec(),
            value: b"story ".repeat(500),
            ttl_seconds: 3_600,
        }
    }

    #[test]
    fn seal_open_round_trip() {
        let (mut sender, mut receiver) = pipelines();
        for message in [
            sample_set(),
            KvMessage::Get { key: b"k".to_vec() },
            KvMessage::Hit { value: vec![9u8; 2_000] },
            KvMessage::Miss,
        ] {
            let frame = sender.seal(&message);
            let back = receiver.open(&frame).expect("round trip");
            assert_eq!(back, message);
        }
        assert_eq!(sender.stats().messages(), 4);
        assert_eq!(receiver.stats().messages(), 4);
    }

    #[test]
    fn wire_frames_are_encrypted_and_compressed() {
        let (mut sender, _) = pipelines();
        let message = sample_set();
        let serialized_len = message.encode().len();
        let frame = sender.seal(&message);
        // Compression shrinks the highly repetitive value...
        assert!(frame.len() < serialized_len / 2, "{} vs {serialized_len}", frame.len());
        // ...and the plaintext never appears on the wire.
        let needle = b"story ";
        assert!(!frame.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn counters_never_repeat_across_messages() {
        let (mut sender, mut receiver) = pipelines();
        let a = sender.seal(&KvMessage::Miss);
        let b = sender.seal(&KvMessage::Miss);
        // Same plaintext, different ciphertext (fresh counters).
        assert_ne!(a, b);
        assert_eq!(receiver.open(&a).unwrap(), KvMessage::Miss);
        assert_eq!(receiver.open(&b).unwrap(), KvMessage::Miss);
    }

    #[test]
    fn corruption_is_detected() {
        let (mut sender, mut receiver) = pipelines();
        let mut frame = sender.seal(&sample_set());
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(receiver.open(&frame), Err(PipelineError::ChecksumMismatch));
    }

    #[test]
    fn wrong_key_fails_cleanly() {
        let (mut sender, _) = pipelines();
        let mut eve = RpcPipeline::new(&[0x13u8; KEY_SIZE]);
        let frame = sender.seal(&sample_set());
        // Checksum passes (it covers ciphertext) but decryption produces
        // garbage that fails decompression or decoding — never panics.
        let result = eve.open(&frame);
        assert!(
            matches!(
                result,
                Err(PipelineError::Decompress(_) | PipelineError::Decode(_))
            ),
            "{result:?}"
        );
    }

    #[test]
    fn short_and_unmagic_frames_rejected() {
        let (_, mut receiver) = pipelines();
        assert_eq!(receiver.open(&[]), Err(PipelineError::ShortFrame));
        assert_eq!(receiver.open(&[0u8; 10]), Err(PipelineError::ShortFrame));
        let bad_magic = vec![0xFFu8; HEADER_LEN + 4];
        assert_eq!(receiver.open(&bad_magic), Err(PipelineError::ShortFrame));
    }

    #[test]
    fn stage_accounting_covers_all_four_functionalities() {
        let (mut sender, _) = pipelines();
        sender.seal(&sample_set());
        let stats = sender.stats();
        for stage in [
            Stage::Serialization,
            Stage::Compression,
            Stage::SecureIo,
            Stage::IoPrePostProcessing,
        ] {
            assert!(stats.bytes(stage) > 0, "{stage:?} unaccounted");
        }
        let shares = stats.shares();
        assert_eq!(shares.len(), 4);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_no_shares() {
        let (sender, _) = pipelines();
        assert!(sender.stats().shares().is_empty());
        assert_eq!(sender.stats().bytes(Stage::SecureIo), 0);
    }

    #[test]
    fn error_display() {
        assert!(PipelineError::ShortFrame.to_string().contains("frame"));
        assert!(PipelineError::ChecksumMismatch.to_string().contains("checksum"));
    }

    #[test]
    fn seal_into_frames_match_seal_byte_for_byte() {
        // Two pipelines with the same key step their counters together,
        // so the buffer-reusing path must emit identical frames.
        let (mut a, mut b) = pipelines();
        let mut frame = Vec::new();
        let messages = [
            sample_set(),
            KvMessage::Get { key: b"k".to_vec() },
            KvMessage::Miss,
            sample_set(),
        ];
        for message in &messages {
            a.seal_into(message, &mut frame);
            assert_eq!(frame, b.seal(message));
        }
        assert_eq!(a.stats(), b.stats());
        // And a warm receiver opens them all.
        let key = [0x42u8; KEY_SIZE];
        let mut receiver = RpcPipeline::new(&key);
        let mut sender = RpcPipeline::new(&key);
        for message in &messages {
            sender.seal_into(message, &mut frame);
            assert_eq!(&receiver.open(&frame).expect("round trip"), message);
        }
    }
}
