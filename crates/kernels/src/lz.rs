//! An LZ77-style compressor/decompressor: the software baseline for the
//! paper's compression kernel (ZSTD leaves; §5's Feed1/Cache1
//! compression study).
//!
//! The format is deliberately simple — greedy hash-chain matching over a
//! 64 KiB window, with a byte-oriented token stream — because the model
//! only needs a *representative* per-byte cost and an exactly-invertible
//! round trip, not a competitive ratio.
//!
//! Token stream format:
//! * `0x00 len  <len raw bytes>` — a literal run, `1 ≤ len ≤ 255`;
//! * `0x01 len  d_hi d_lo` — a match of `len` (4–255) bytes at distance
//!   `d` (1–65535) behind the current position.

use std::fmt;

/// Errors produced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompressError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A token had an invalid tag byte.
    BadTag(u8),
    /// A match referred back past the start of the output.
    BadDistance {
        /// The (invalid) back-reference distance.
        distance: usize,
        /// Bytes produced so far.
        produced: usize,
    },
    /// A zero-length literal or match.
    EmptyToken,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream is truncated"),
            DecompressError::BadTag(t) => write!(f, "invalid token tag {t:#04x}"),
            DecompressError::BadDistance { distance, produced } => {
                write!(f, "match distance {distance} exceeds produced bytes {produced}")
            }
            DecompressError::EmptyToken => write!(f, "zero-length token"),
        }
    }
}

impl std::error::Error for DecompressError {}

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_LITERAL_RUN: usize = 255;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8]) -> usize {
    // A single 4-byte slice keeps this one bounds check and one 32-bit
    // load; indexing the four bytes separately leaves a check per byte,
    // which blocks load merging in the match-skip insertion loop.
    let v = u32::from_le_bytes(data[..4].try_into().expect("4-byte slice"));
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `input[candidate..]` and
/// `input[pos..]`, capped at `max_len`.
///
/// When `avx2` is set (the caller hoists the [`crate::dispatch`] check
/// out of the hot loop), extension runs 32 bytes per step on the AVX2
/// path; either way the result is the longest common prefix, capped —
/// exactly what the byte-at-a-time loop computes — so the emitted token
/// stream is byte-identical; the `lz_golden` fixture test pins that.
///
/// Caller guarantees `candidate < pos` and `pos + max_len <=
/// input.len()`, so every wide load below stays in bounds.
#[inline]
fn match_length(input: &[u8], candidate: usize, pos: usize, max_len: usize, avx2: bool) -> usize {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only set after runtime AVX2 detection, and
        // the caller's bounds contract covers every 32-byte load.
        #[allow(unsafe_code)]
        return unsafe { simd::match_length(input, candidate, pos, max_len) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = avx2;
    match_length_from(input, candidate, pos, max_len, 0)
}

/// Scalar match extension from an already-matched prefix of `start`
/// bytes: eight bytes per step by comparing `u64` words; on the first
/// differing word, the trailing zeros of the XOR locate the exact first
/// differing byte (little-endian loads put the lowest-addressed byte in
/// the least significant position). Also the tail the AVX2 path falls
/// into once fewer than 32 bytes remain.
#[inline]
fn match_length_from(input: &[u8], candidate: usize, pos: usize, max_len: usize, start: usize) -> usize {
    let mut len = start;
    while len + 8 <= max_len {
        let a = u64::from_le_bytes(
            input[candidate + len..candidate + len + 8]
                .try_into()
                .expect("8-byte slice"),
        );
        let b = u64::from_le_bytes(input[pos + len..pos + len + 8].try_into().expect("8-byte slice"));
        let diff = a ^ b;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && input[candidate + len] == input[pos + len] {
        len += 1;
    }
    len
}

/// AVX2 helpers for the matcher. Both are *strategy-preserving*: they
/// compute exactly the values the scalar code computes (same match
/// lengths, same hash values, same table-insertion order), so every
/// token stream stays byte-identical across ISA tiers.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_mullo_epi32,
        _mm256_set1_epi32, _mm256_set_m128i, _mm256_srli_epi32, _mm256_storeu_si256,
        _mm_loadu_si128,
    };

    use super::HASH_BITS;

    /// 32-bytes-per-step match extension. `cmpeq`+`movemask` yields an
    /// equality bitmap per 32-byte window; the first zero bit (trailing
    /// zeros of the complement) is the exact first differing byte, so
    /// the result equals the scalar longest-common-prefix byte for byte.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and guarantee
    /// `candidate < pos` and `pos + max_len <= input.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_length(input: &[u8], candidate: usize, pos: usize, max_len: usize) -> usize {
        let base = input.as_ptr();
        let mut len = 0;
        while len + 32 <= max_len {
            let diff = unsafe {
                let a = _mm256_loadu_si256(base.add(candidate + len).cast());
                let b = _mm256_loadu_si256(base.add(pos + len).cast());
                !(_mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)) as u32)
            };
            if diff != 0 {
                return len + diff.trailing_zeros() as usize;
            }
            len += 32;
        }
        super::match_length_from(input, candidate, pos, max_len, len)
    }

    /// [`super::hash4`] of the eight stride-2 positions `p, p+2, ...,
    /// p+14` in one shot: two overlapping 16-byte loads provide the
    /// eight little-endian `u32`s, and `mullo`/`srli` reproduce the
    /// scalar `wrapping_mul` / shift exactly. `out[0..4]` holds the
    /// hashes of `p, p+4, p+8, p+12` and `out[4..8]` those of `p+2,
    /// p+6, p+10, p+14` (the low/high loads in lane order).
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and guarantee
    /// `p + 18 <= input.len()` (the upper load reads `p+2..p+18`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash8_stride2(input: &[u8], p: usize, out: &mut [u32; 8]) {
        let h = unsafe {
            let lo = _mm_loadu_si128(input.as_ptr().add(p).cast());
            let hi = _mm_loadu_si128(input.as_ptr().add(p + 2).cast());
            let v = _mm256_set_m128i(hi, lo);
            _mm256_srli_epi32(
                _mm256_mullo_epi32(v, _mm256_set1_epi32(0x9E37_79B1u32 as i32)),
                32 - HASH_BITS as i32,
            )
        };
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), h) };
    }
}

/// Reusable compressor state: the hash-chain head table, stamped with a
/// generation counter so reuse needs no 256 KiB table refill.
///
/// A slot is live only if its stamp matches the current generation, so
/// bumping the generation in [`compress_into`] invalidates the whole
/// table in O(1) — each call sees exactly the fresh-table semantics of
/// the allocating [`compress`], and the emitted token stream is
/// byte-identical (the `lz_golden` fixture pins it).
#[derive(Debug, Clone)]
pub struct LzScratch {
    /// Packed slots: generation stamp in the high 32 bits, position in
    /// the low 32. One cache line per probe — splitting the stamp into
    /// a side table would double the random-access traffic. Positions
    /// past 4 GiB wrap, which only costs missed matches: every candidate
    /// is byte-verified and window-checked before a token is emitted.
    head: Vec<u64>,
    generation: u32,
}

impl Default for LzScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl LzScratch {
    /// Creates an empty scratch. The table is lazily zero-paged; no
    /// eager 256 KiB fill.
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: vec![0; 1 << HASH_BITS],
            generation: 0,
        }
    }

    /// Starts a new compression: invalidates every slot in O(1) and
    /// returns the generation tag for the new call (the stamp,
    /// pre-shifted into the high 32 bits).
    ///
    /// Generation 0 is never active (the first `begin` yields 1), so
    /// the zero-initialized table starts fully invalid.
    fn begin(&mut self) -> u64 {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Stamp wrap: stale stamps could collide, so refill once
                // every 2^32 calls.
                self.head.fill(0);
                1
            }
        };
        u64::from(self.generation) << 32
    }
}

const SLOT_TAG_MASK: u64 = 0xffff_ffff_0000_0000;

/// Head-table strategy for [`compress_core`]. The one-shot path uses a
/// plain position table (`usize::MAX` = empty slot); the reusable
/// scratch path a generation-tagged table. Generic rather than unified
/// so each monomorphization keeps its probe at one load and its insert
/// at one store — the tag check is not free, and the one-shot bench
/// must not pay for the scratch path's O(1) reset.
trait HeadTable {
    /// Returns the previous position recorded for hash `h`
    /// (`usize::MAX` if none) and records `pos` as the new head.
    fn swap(&mut self, h: usize, pos: usize) -> usize;
    /// Records `pos` as the head for hash `h`.
    fn insert(&mut self, h: usize, pos: usize);
}

/// Fresh per-call table: the position itself, `usize::MAX` when empty.
/// The fixed-size array reference keeps every `HASH_BITS`-bit index
/// provably in bounds.
struct FreshHead<'a>(&'a mut [usize; 1 << HASH_BITS]);

impl HeadTable for FreshHead<'_> {
    #[inline]
    fn swap(&mut self, h: usize, pos: usize) -> usize {
        let candidate = self.0[h];
        self.0[h] = pos;
        candidate
    }

    #[inline]
    fn insert(&mut self, h: usize, pos: usize) {
        self.0[h] = pos;
    }
}

/// Generation-tagged view over an [`LzScratch`] table (tag pre-shifted
/// into the high 32 bits; see [`LzScratch`]).
struct TaggedHead<'a> {
    head: &'a mut [u64; 1 << HASH_BITS],
    tag: u64,
}

impl HeadTable for TaggedHead<'_> {
    #[inline]
    fn swap(&mut self, h: usize, pos: usize) -> usize {
        let slot = self.head[h];
        self.head[h] = self.tag | pos as u64;
        if slot & SLOT_TAG_MASK == self.tag {
            slot as u32 as usize
        } else {
            usize::MAX
        }
    }

    #[inline]
    fn insert(&mut self, h: usize, pos: usize) {
        self.head[h] = self.tag | pos as u64;
    }
}

/// Compresses `input`, returning the token stream. Uses the AVX2
/// matcher when [`crate::dispatch`] reports it; the stream is
/// byte-identical either way.
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with(input, crate::dispatch::has(crate::dispatch::AVX2))
}

/// Compresses `input` on the scalar reference path, regardless of the
/// dispatch mode — the explicit "unaccelerated host" baseline the
/// equivalence tests and the calibrator's paired measurements use.
#[must_use]
pub fn compress_scalar(input: &[u8]) -> Vec<u8> {
    compress_with(input, false)
}

fn compress_with(input: &[u8], avx2: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let head: &mut [usize; 1 << HASH_BITS] = (&mut head[..])
        .try_into()
        .expect("table has 1 << HASH_BITS slots");
    compress_core(input, &mut FreshHead(head), &mut out, avx2);
    out
}

/// Compresses `input` into `out` (cleared first) using a reusable
/// [`LzScratch`] — the allocation-free path for a request loop that
/// compresses many payloads. The token stream is byte-identical to
/// [`compress`]'s: both run [`compress_core`] over an initially-empty
/// head table.
pub fn compress_into(input: &[u8], scratch: &mut LzScratch, out: &mut Vec<u8>) {
    compress_into_with(input, scratch, out, crate::dispatch::has(crate::dispatch::AVX2));
}

/// [`compress_into`] pinned to the scalar matcher regardless of the
/// dispatch mode — the same driver, so the calibrator's paired
/// scalar-vs-dispatched measurements differ only in the match kernel.
/// The stream stays byte-identical to every other entry point's.
pub fn compress_into_scalar(input: &[u8], scratch: &mut LzScratch, out: &mut Vec<u8>) {
    compress_into_with(input, scratch, out, false);
}

fn compress_into_with(input: &[u8], scratch: &mut LzScratch, out: &mut Vec<u8>, avx2: bool) {
    out.clear();
    let tag = scratch.begin();
    // Fixed-size view: `hash4` yields `HASH_BITS`-bit indices, so with
    // the length in the type every table access is provably in bounds.
    let head: &mut [u64; 1 << HASH_BITS] = (&mut scratch.head[..])
        .try_into()
        .expect("table has 1 << HASH_BITS slots");
    compress_core(input, &mut TaggedHead { head, tag }, out, avx2);
}

/// The greedy matcher shared by [`compress`] and [`compress_into`]:
/// everything except the head-table representation, so the two public
/// entry points cannot drift apart.
fn compress_core<T: HeadTable>(input: &[u8], head: &mut T, out: &mut Vec<u8>, avx2: bool) {
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(MAX_LITERAL_RUN);
            out.extend_from_slice(&[0x00, run as u8]);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while pos < input.len() {
        let remaining = input.len() - pos;
        let mut matched = None;
        if remaining >= MIN_MATCH {
            let h = hash4(&input[pos..]);
            let candidate = head.swap(h, pos);
            if candidate != usize::MAX && pos - candidate < WINDOW {
                let max_len = remaining.min(MAX_MATCH);
                let len = match_length(input, candidate, pos, max_len, avx2);
                if len >= MIN_MATCH {
                    matched = Some((pos - candidate, len));
                }
            }
        }
        if let Some((distance, len)) = matched {
            flush_literals(out, literal_start, pos);
            // One extend = one capacity check for the whole token.
            out.extend_from_slice(&[0x01, len as u8, (distance >> 8) as u8, (distance & 0xff) as u8]);
            // Index the skipped positions so later matches can refer to
            // them (cheap partial insertion: every other position).
            let end = pos + len;
            let mut p = pos + 1;
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // Eight stride-2 hashes per step; inserted in ascending
                // position order (interleaving the low/high load lanes)
                // so slot overwrites match the scalar loop exactly.
                while p + 14 < end && p + 18 <= input.len() {
                    let mut hashes = [0u32; 8];
                    // SAFETY: AVX2 verified by dispatch; the loop bound
                    // keeps the `p+2..p+18` load in range.
                    #[allow(unsafe_code)]
                    unsafe {
                        simd::hash8_stride2(input, p, &mut hashes);
                    }
                    for k in 0..8 {
                        head.insert(hashes[(k % 2) * 4 + k / 2] as usize, p + 2 * k);
                    }
                    p += 16;
                }
            }
            while p + MIN_MATCH <= input.len() && p < end {
                head.insert(hash4(&input[p..]), p);
                p += 2;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(out, literal_start, input.len());
}

/// Decompresses a token stream produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the stream is truncated or contains
/// invalid tokens; a valid stream from [`compress`] always round-trips.
pub fn decompress(compressed: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(compressed.len() * 2);
    decompress_into(compressed, &mut out)?;
    Ok(out)
}

/// Decompresses a token stream into `out` (cleared first), reusing the
/// buffer's capacity — the allocation-free counterpart of
/// [`decompress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the stream is truncated or contains
/// invalid tokens. `out` holds the bytes decoded before the error.
pub fn decompress_into(compressed: &[u8], out: &mut Vec<u8>) -> Result<(), DecompressError> {
    out.clear();
    let mut pos = 0usize;
    while pos < compressed.len() {
        let tag = compressed[pos];
        match tag {
            0x00 => {
                let len = usize::from(*compressed.get(pos + 1).ok_or(DecompressError::Truncated)?);
                if len == 0 {
                    return Err(DecompressError::EmptyToken);
                }
                let start = pos + 2;
                let end = start + len;
                if end > compressed.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&compressed[start..end]);
                pos = end;
            }
            0x01 => {
                if pos + 4 > compressed.len() {
                    return Err(DecompressError::Truncated);
                }
                let len = usize::from(compressed[pos + 1]);
                let distance = usize::from(compressed[pos + 2]) << 8 | usize::from(compressed[pos + 3]);
                if len == 0 {
                    return Err(DecompressError::EmptyToken);
                }
                if distance == 0 || distance > out.len() {
                    return Err(DecompressError::BadDistance {
                        distance,
                        produced: out.len(),
                    });
                }
                // Byte-by-byte so overlapping matches replicate correctly.
                let start = out.len() - distance;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
                pos += 4;
            }
            other => return Err(DecompressError::BadTag(other)),
        }
    }
    Ok(())
}

/// Compression ratio achieved on an input (compressed/original; lower is
/// better). Returns 1.0 for empty input.
#[must_use]
pub fn compression_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed).expect("round trip must decode");
        assert_eq!(back, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn round_trips_basic_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"hello world");
        round_trip(&[0u8; 10_000]);
        round_trip("the quick brown fox jumps over the lazy dog ".repeat(100).as_bytes());
    }

    #[test]
    fn round_trips_incompressible_data() {
        // A pseudo-random byte stream with no 4-byte repeats to speak of.
        let data: Vec<u8> = (0u32..8192)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        round_trip(&data);
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let data = b"abcdefgh".repeat(500);
        let ratio = compression_ratio(&data);
        assert!(ratio < 0.2, "ratio {ratio}");
    }

    #[test]
    fn expands_random_data_only_slightly() {
        let data: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        let ratio = compression_ratio(&data);
        assert!(ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn overlapping_matches_replicate() {
        // "aaaaa..." forces distance-1 matches that overlap themselves.
        let data = vec![b'a'; 1000];
        round_trip(&data);
        let compressed = compress(&data);
        assert!(compressed.len() < 50);
    }

    #[test]
    fn long_literal_runs_split_at_255() {
        let data: Vec<u8> = (0u32..1000)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        round_trip(&data);
    }

    #[test]
    fn rejects_truncated_streams() {
        let compressed = compress(b"hello hello hello hello hello");
        for cut in 1..compressed.len() {
            // Every strict prefix must either fail or decode to a prefix;
            // it must never panic.
            let _ = decompress(&compressed[..cut]);
        }
        assert_eq!(decompress(&[0x00]), Err(DecompressError::Truncated));
        assert_eq!(decompress(&[0x01, 5, 0]), Err(DecompressError::Truncated));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert_eq!(decompress(&[0x42]), Err(DecompressError::BadTag(0x42)));
        assert_eq!(decompress(&[0x00, 0]), Err(DecompressError::EmptyToken));
        // Match before any output exists.
        assert!(matches!(
            decompress(&[0x01, 4, 0, 1]),
            Err(DecompressError::BadDistance { .. })
        ));
        // Zero distance.
        assert!(matches!(
            decompress(&[0x00, 1, b'x', 0x01, 4, 0, 0]),
            Err(DecompressError::BadDistance { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecompressError::Truncated.to_string().contains("truncated"));
        assert!(DecompressError::BadTag(7).to_string().contains("0x07"));
        assert!(DecompressError::BadDistance {
            distance: 9,
            produced: 3
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn empty_input_ratio_is_one() {
        assert_eq!(compression_ratio(b""), 1.0);
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh() {
        // Interleave dissimilar inputs through one scratch: stale table
        // entries from earlier calls must never leak into a later stream.
        let inputs: Vec<Vec<u8>> = vec![
            b"abcdefgh".repeat(200),
            (0u32..4096).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect(),
            vec![b'a'; 1000],
            b"the quick brown fox ".repeat(64),
            Vec::new(),
            b"abcdefgh".repeat(200),
        ];
        let mut scratch = LzScratch::new();
        let mut out = Vec::new();
        let mut back = Vec::new();
        for input in &inputs {
            compress_into(input, &mut scratch, &mut out);
            assert_eq!(out, compress(input), "scratch stream diverged");
            decompress_into(&out, &mut back).expect("round trip");
            assert_eq!(&back, input);
        }
    }

    #[test]
    fn dispatched_stream_matches_scalar_stream() {
        // The full adversarial-size sweep lives in the simd_equivalence
        // integration tests; this pins the basics in-crate.
        for data in [
            b"abcdefgh".repeat(500),
            b"the quick brown fox jumps over the lazy dog ".repeat(100),
            vec![b'a'; 1000],
            (0u32..8192).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect(),
        ] {
            assert_eq!(compress(&data), compress_scalar(&data));
        }
    }

    #[test]
    fn scratch_survives_stamp_wrap() {
        let mut scratch = LzScratch::new();
        scratch.generation = u32::MAX;
        let data = b"wrap wrap wrap wrap wrap wrap".repeat(8);
        let mut out = Vec::new();
        compress_into(&data, &mut scratch, &mut out);
        assert_eq!(scratch.generation, 1);
        assert_eq!(out, compress(&data));
        // And the next call still matches.
        compress_into(&data, &mut scratch, &mut out);
        assert_eq!(out, compress(&data));
    }
}
