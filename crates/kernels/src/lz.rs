//! An LZ77-style compressor/decompressor: the software baseline for the
//! paper's compression kernel (ZSTD leaves; §5's Feed1/Cache1
//! compression study).
//!
//! The format is deliberately simple — greedy hash-chain matching over a
//! 64 KiB window, with a byte-oriented token stream — because the model
//! only needs a *representative* per-byte cost and an exactly-invertible
//! round trip, not a competitive ratio.
//!
//! Token stream format:
//! * `0x00 len  <len raw bytes>` — a literal run, `1 ≤ len ≤ 255`;
//! * `0x01 len  d_hi d_lo` — a match of `len` (4–255) bytes at distance
//!   `d` (1–65535) behind the current position.

use std::fmt;

/// Errors produced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompressError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A token had an invalid tag byte.
    BadTag(u8),
    /// A match referred back past the start of the output.
    BadDistance {
        /// The (invalid) back-reference distance.
        distance: usize,
        /// Bytes produced so far.
        produced: usize,
    },
    /// A zero-length literal or match.
    EmptyToken,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream is truncated"),
            DecompressError::BadTag(t) => write!(f, "invalid token tag {t:#04x}"),
            DecompressError::BadDistance { distance, produced } => {
                write!(f, "match distance {distance} exceeds produced bytes {produced}")
            }
            DecompressError::EmptyToken => write!(f, "zero-length token"),
        }
    }
}

impl std::error::Error for DecompressError {}

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_LITERAL_RUN: usize = 255;
const HASH_BITS: u32 = 15;

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `input[candidate..]` and
/// `input[pos..]`, capped at `max_len`.
///
/// Extends eight bytes per step by comparing `u64` words; on the first
/// differing word, the trailing zeros of the XOR locate the exact first
/// differing byte (little-endian loads put the lowest-addressed byte in
/// the least significant position). The result — the longest common
/// prefix, capped — is exactly what the old byte-at-a-time loop
/// computed, so the emitted token stream is byte-identical; the
/// `lz_golden` fixture test pins that.
///
/// Caller guarantees `candidate < pos` and `pos + max_len <=
/// input.len()`, so every 8-byte load below stays in bounds.
#[inline]
fn match_length(input: &[u8], candidate: usize, pos: usize, max_len: usize) -> usize {
    let mut len = 0;
    while len + 8 <= max_len {
        let a = u64::from_le_bytes(
            input[candidate + len..candidate + len + 8]
                .try_into()
                .expect("8-byte slice"),
        );
        let b = u64::from_le_bytes(input[pos + len..pos + len + 8].try_into().expect("8-byte slice"));
        let diff = a ^ b;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && input[candidate + len] == input[pos + len] {
        len += 1;
    }
    len
}

/// Compresses `input`, returning the token stream.
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Head of the hash chain: most recent position with this 4-byte hash.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(MAX_LITERAL_RUN);
            out.push(0x00);
            out.push(run as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while pos < input.len() {
        let remaining = input.len() - pos;
        let mut matched = None;
        if remaining >= MIN_MATCH {
            let h = hash4(&input[pos..]);
            let candidate = head[h];
            head[h] = pos;
            if candidate != usize::MAX && pos - candidate < WINDOW {
                let max_len = remaining.min(MAX_MATCH);
                let len = match_length(input, candidate, pos, max_len);
                if len >= MIN_MATCH {
                    matched = Some((pos - candidate, len));
                }
            }
        }
        if let Some((distance, len)) = matched {
            flush_literals(&mut out, literal_start, pos);
            out.push(0x01);
            out.push(len as u8);
            out.push((distance >> 8) as u8);
            out.push((distance & 0xff) as u8);
            // Index the skipped positions so later matches can refer to
            // them (cheap partial insertion: every other position).
            let end = pos + len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < end {
                head[hash4(&input[p..])] = p;
                p += 2;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompresses a token stream produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the stream is truncated or contains
/// invalid tokens; a valid stream from [`compress`] always round-trips.
pub fn decompress(compressed: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(compressed.len() * 2);
    let mut pos = 0usize;
    while pos < compressed.len() {
        let tag = compressed[pos];
        match tag {
            0x00 => {
                let len = usize::from(*compressed.get(pos + 1).ok_or(DecompressError::Truncated)?);
                if len == 0 {
                    return Err(DecompressError::EmptyToken);
                }
                let start = pos + 2;
                let end = start + len;
                if end > compressed.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&compressed[start..end]);
                pos = end;
            }
            0x01 => {
                if pos + 4 > compressed.len() {
                    return Err(DecompressError::Truncated);
                }
                let len = usize::from(compressed[pos + 1]);
                let distance = usize::from(compressed[pos + 2]) << 8 | usize::from(compressed[pos + 3]);
                if len == 0 {
                    return Err(DecompressError::EmptyToken);
                }
                if distance == 0 || distance > out.len() {
                    return Err(DecompressError::BadDistance {
                        distance,
                        produced: out.len(),
                    });
                }
                // Byte-by-byte so overlapping matches replicate correctly.
                let start = out.len() - distance;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
                pos += 4;
            }
            other => return Err(DecompressError::BadTag(other)),
        }
    }
    Ok(out)
}

/// Compression ratio achieved on an input (compressed/original; lower is
/// better). Returns 1.0 for empty input.
#[must_use]
pub fn compression_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed).expect("round trip must decode");
        assert_eq!(back, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn round_trips_basic_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"hello world");
        round_trip(&[0u8; 10_000]);
        round_trip("the quick brown fox jumps over the lazy dog ".repeat(100).as_bytes());
    }

    #[test]
    fn round_trips_incompressible_data() {
        // A pseudo-random byte stream with no 4-byte repeats to speak of.
        let data: Vec<u8> = (0u32..8192)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        round_trip(&data);
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let data = b"abcdefgh".repeat(500);
        let ratio = compression_ratio(&data);
        assert!(ratio < 0.2, "ratio {ratio}");
    }

    #[test]
    fn expands_random_data_only_slightly() {
        let data: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        let ratio = compression_ratio(&data);
        assert!(ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn overlapping_matches_replicate() {
        // "aaaaa..." forces distance-1 matches that overlap themselves.
        let data = vec![b'a'; 1000];
        round_trip(&data);
        let compressed = compress(&data);
        assert!(compressed.len() < 50);
    }

    #[test]
    fn long_literal_runs_split_at_255() {
        let data: Vec<u8> = (0u32..1000)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        round_trip(&data);
    }

    #[test]
    fn rejects_truncated_streams() {
        let compressed = compress(b"hello hello hello hello hello");
        for cut in 1..compressed.len() {
            // Every strict prefix must either fail or decode to a prefix;
            // it must never panic.
            let _ = decompress(&compressed[..cut]);
        }
        assert_eq!(decompress(&[0x00]), Err(DecompressError::Truncated));
        assert_eq!(decompress(&[0x01, 5, 0]), Err(DecompressError::Truncated));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert_eq!(decompress(&[0x42]), Err(DecompressError::BadTag(0x42)));
        assert_eq!(decompress(&[0x00, 0]), Err(DecompressError::EmptyToken));
        // Match before any output exists.
        assert!(matches!(
            decompress(&[0x01, 4, 0, 1]),
            Err(DecompressError::BadDistance { .. })
        ));
        // Zero distance.
        assert!(matches!(
            decompress(&[0x00, 1, b'x', 0x01, 4, 0, 0]),
            Err(DecompressError::BadDistance { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecompressError::Truncated.to_string().contains("truncated"));
        assert!(DecompressError::BadTag(7).to_string().contains("0x07"));
        assert!(DecompressError::BadDistance {
            distance: 9,
            produced: 3
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn empty_input_ratio_is_one() {
        assert_eq!(compression_ratio(b""), 1.0);
    }
}
