//! Hashing kernels: SHA-256 (FIPS 180-4) and FNV-1a.
//!
//! The "Hashing" leaf category of Table 2 covers "SHA & other hash
//! algorithms"; SHA-256 is the cryptographic representative (and the
//! paper's SSL category leans on the same family via TLS), while FNV-1a
//! stands in for the cheap hash-table hashes of §2.3.4.
//!
//! On hosts with the SHA extensions ([`crate::dispatch`]), the block
//! compression runs on `sha256rnds2`/`sha256msg1`/`sha256msg2` — the
//! same FIPS 180-4 function evaluated in hardware, so digests are
//! byte-identical to the scalar rendering (which stays reachable as
//! [`sha256_scalar`], the unaccelerated tier the model's `A` factor is
//! measured against). FNV-1a is a strictly serial byte recurrence
//! (each step's multiply depends on the previous) and has no profitable
//! SIMD formulation that preserves the exact hash — it stays scalar by
//! design.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// One round of the compression function. The caller rotates the
/// working-variable names instead of shuffling their values, so eight
/// invocations cover a full a→h rotation with zero register moves.
macro_rules! round {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $wk:expr) => {
        let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
        // ch(e,f,g) = (e & f) ^ (!e & g), rewritten to drop the NOT.
        let ch = $g ^ ($e & ($f ^ $g));
        // Balanced add tree: h + wk has no dependency on this round's
        // working variables, so it issues while s1/ch are still in
        // flight — one cycle off the serial e-chain versus the naive
        // left-to-right chain. Wrapping u32 addition is associative, so
        // the value is unchanged.
        let temp1 = ($h.wrapping_add($wk)).wrapping_add(s1.wrapping_add(ch));
        let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
        // maj(a,b,c) = (a & b) ^ (a & c) ^ (b & c), one AND instead of
        // three: any bit where a and b agree wins, else c decides.
        let maj = $c ^ (($a ^ $c) & ($b ^ $c));
        $d = $d.wrapping_add(temp1);
        $h = temp1.wrapping_add(s0.wrapping_add(maj));
    };
}

/// A round at index `$t ≥ 16` that also advances the 16-word rolling
/// message schedule. The schedule recurrence has no dependency on the
/// working variables, so its σ₀/σ₁ arithmetic fills the issue slots the
/// serial a–h chain leaves idle — the structure fast assembly
/// implementations use, expressed in safe Rust.
macro_rules! round_sched {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $t:expr) => {
        let w15 = $w[($t + 1) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let w2 = $w[($t + 14) & 15];
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        let w = $w[$t & 15]
            .wrapping_add(s0)
            .wrapping_add($w[($t + 9) & 15])
            .wrapping_add(s1);
        $w[$t & 15] = w;
        round!($a, $b, $c, $d, $e, $f, $g, $h, w.wrapping_add(K[$t]));
    };
}

/// As [`round_sched!`], but without storing the schedule word back —
/// for rounds 62–63, where nothing reads it again (word `t` is next
/// read at round `t + 2`).
macro_rules! round_sched_last {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $t:expr) => {
        let w15 = $w[($t + 1) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let w2 = $w[($t + 14) & 15];
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        let w = $w[$t & 15]
            .wrapping_add(s0)
            .wrapping_add($w[($t + 9) & 15])
            .wrapping_add(s1);
        round!($a, $b, $c, $d, $e, $f, $g, $h, w.wrapping_add(K[$t]));
    };
}

/// Eight name-rotated rounds starting at `$t` (a multiple of 8), either
/// plain (`$kind = first16`, schedule words come straight from the
/// block) or schedule-advancing (`$kind = sched`).
macro_rules! rounds8 {
    (first16, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $t:expr) => {
        round!($a, $b, $c, $d, $e, $f, $g, $h, $w[$t].wrapping_add(K[$t]));
        round!($h, $a, $b, $c, $d, $e, $f, $g, $w[$t + 1].wrapping_add(K[$t + 1]));
        round!($g, $h, $a, $b, $c, $d, $e, $f, $w[$t + 2].wrapping_add(K[$t + 2]));
        round!($f, $g, $h, $a, $b, $c, $d, $e, $w[$t + 3].wrapping_add(K[$t + 3]));
        round!($e, $f, $g, $h, $a, $b, $c, $d, $w[$t + 4].wrapping_add(K[$t + 4]));
        round!($d, $e, $f, $g, $h, $a, $b, $c, $w[$t + 5].wrapping_add(K[$t + 5]));
        round!($c, $d, $e, $f, $g, $h, $a, $b, $w[$t + 6].wrapping_add(K[$t + 6]));
        round!($b, $c, $d, $e, $f, $g, $h, $a, $w[$t + 7].wrapping_add(K[$t + 7]));
    };
    (sched, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $t:expr) => {
        round_sched!($a, $b, $c, $d, $e, $f, $g, $h, $w, $t);
        round_sched!($h, $a, $b, $c, $d, $e, $f, $g, $w, $t + 1);
        round_sched!($g, $h, $a, $b, $c, $d, $e, $f, $w, $t + 2);
        round_sched!($f, $g, $h, $a, $b, $c, $d, $e, $w, $t + 3);
        round_sched!($e, $f, $g, $h, $a, $b, $c, $d, $w, $t + 4);
        round_sched!($d, $e, $f, $g, $h, $a, $b, $c, $w, $t + 5);
        round_sched!($c, $d, $e, $f, $g, $h, $a, $b, $w, $t + 6);
        round_sched!($b, $c, $d, $e, $f, $g, $h, $a, $w, $t + 7);
    };
    (sched_last, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $t:expr) => {
        round_sched!($a, $b, $c, $d, $e, $f, $g, $h, $w, $t);
        round_sched!($h, $a, $b, $c, $d, $e, $f, $g, $w, $t + 1);
        round_sched!($g, $h, $a, $b, $c, $d, $e, $f, $w, $t + 2);
        round_sched!($f, $g, $h, $a, $b, $c, $d, $e, $w, $t + 3);
        round_sched!($e, $f, $g, $h, $a, $b, $c, $d, $w, $t + 4);
        round_sched!($d, $e, $f, $g, $h, $a, $b, $c, $w, $t + 5);
        round_sched_last!($c, $d, $e, $f, $g, $h, $a, $b, $w, $t + 6);
        round_sched_last!($b, $c, $d, $e, $f, $g, $h, $a, $w, $t + 7);
    };
}

/// Compresses one 64-byte block into the state, dispatching to the
/// SHA-NI data path when the host exposes it (identical output — the
/// ISA evaluates the same FIPS 180-4 function).
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::has(crate::dispatch::SHA | crate::dispatch::SSSE3 | crate::dispatch::SSE41)
    {
        // SAFETY: SHA-NI + SSSE3 + SSE4.1 presence was checked above.
        #[allow(unsafe_code)]
        unsafe {
            simd::compress_block(state, block);
        }
        return;
    }
    compress_block_scalar(state, block);
}

/// Compresses one 64-byte block into the state (FIPS 180-4 §6.2.2) —
/// the scalar tier.
///
/// Fully unrolled, with a 16-word rolling schedule computed inline with
/// the rounds instead of a separate 64-entry array pass.
fn compress_block_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (wi, word) in w.iter_mut().zip(block.chunks_exact(4)) {
        *wi = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    rounds8!(first16, a, b, c, d, e, f, g, h, w, 0);
    rounds8!(first16, a, b, c, d, e, f, g, h, w, 8);
    rounds8!(sched, a, b, c, d, e, f, g, h, w, 16);
    rounds8!(sched, a, b, c, d, e, f, g, h, w, 24);
    rounds8!(sched, a, b, c, d, e, f, g, h, w, 32);
    rounds8!(sched, a, b, c, d, e, f, g, h, w, 40);
    rounds8!(sched, a, b, c, d, e, f, g, h, w, 48);
    rounds8!(sched_last, a, b, c, d, e, f, g, h, w, 56);
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// A streaming SHA-256 hasher: feed bytes with [`Sha256::update`],
/// close with [`Sha256::finalize`].
///
/// Holds only the 8-word chaining state, a 64-byte block buffer, and a
/// length counter — no allocation, no copy of the message. Full blocks
/// in `update` are compressed straight from the caller's slice; only a
/// trailing partial block is buffered. The one-shot [`sha256`] is a
/// thin wrapper, so both paths produce identical digests by
/// construction (and the streaming-vs-one-shot proptest pins it).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; 64],
    /// Bytes currently buffered in `block` (always < 64).
    buffered: usize,
    /// Total message bytes absorbed so far.
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the FIPS 180-4 initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: H0,
            block: [0u8; 64],
            buffered: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_bytes = self.total_bytes.wrapping_add(data.len() as u64);
        // Top up a partial block first.
        if self.buffered > 0 {
            let take = data.len().min(64 - self.buffered);
            self.block[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered < 64 {
                return;
            }
            let block = self.block;
            compress_block(&mut self.state, &block);
            self.buffered = 0;
        }
        // Full blocks straight from the input, no copy.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            compress_block(&mut self.state, chunk.try_into().expect("64-byte chunk"));
        }
        let tail = chunks.remainder();
        self.block[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// Pads and returns the digest, consuming the hasher.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_bytes.wrapping_mul(8);
        self.block[self.buffered] = 0x80;
        if self.buffered + 1 > 56 {
            // No room for the length: close this block, pad a second.
            self.block[self.buffered + 1..].fill(0);
            let block = self.block;
            compress_block(&mut self.state, &block);
            self.block = [0u8; 64];
        } else {
            self.block[self.buffered + 1..56].fill(0);
        }
        self.block[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        compress_block(&mut self.state, &block);

        let mut digest = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        digest
    }
}

/// Computes the SHA-256 digest of `data` in one shot (implemented on
/// the streaming [`Sha256`]; no allocation, no message copy).
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// [`sha256`] pinned to the scalar compression tier regardless of what
/// the host exposes: the unaccelerated-host reference the harness
/// measures the SHA-NI acceleration factor against, and the oracle the
/// equivalence tests compare the dispatched digest to. (The padding
/// driver here is deliberately small and is itself pinned against the
/// streaming path by those same tests.)
#[must_use]
pub fn sha256_scalar(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        compress_block_scalar(&mut state, chunk.try_into().expect("64-byte chunk"));
    }
    let rem = chunks.remainder();
    let mut block = [0u8; 64];
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    if rem.len() + 1 > 56 {
        compress_block_scalar(&mut state, &block);
        block = [0u8; 64];
    }
    block[56..].copy_from_slice(&(data.len() as u64).wrapping_mul(8).to_be_bytes());
    compress_block_scalar(&mut state, &block);
    let mut digest = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// The SHA-NI compression path: `sha256rnds2` executes two FIPS 180-4
/// rounds per invocation over an (ABEF, CDGH) register split, and
/// `sha256msg1`/`sha256msg2` advance the message schedule four words at
/// a time. This is the canonical instruction sequence for the
/// extension; it computes exactly §6.2.2, so the chaining state it
/// produces is bit-identical to [`compress_block_scalar`]'s (the NIST
/// known-answer tests and the scalar-equivalence proptests both pin
/// it).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128,
        _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
        _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };

    use super::K;

    /// Four round constants `K[t..t+4]` as one vector.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn kload(t: usize) -> __m128i {
        unsafe { _mm_loadu_si128(K.as_ptr().add(t).cast()) }
    }

    /// Four schedule-advancing rounds `t..t+4`: consume `$cur`
    /// (`w[t..t+4]`), finish `$next` (`w[t+4..t+8]`) with
    /// `alignr`+`msg2`, and start `$prev`'s successor with `msg1`.
    macro_rules! sched4 {
        ($state0:ident, $state1:ident, $cur:ident, $next:ident, $prev:ident, $t:expr) => {
            let msg = _mm_add_epi32($cur, kload($t));
            $state1 = _mm_sha256rnds2_epu32($state1, $state0, msg);
            let tmp = _mm_alignr_epi8($cur, $prev, 4);
            $next = _mm_add_epi32($next, tmp);
            $next = _mm_sha256msg2_epu32($next, $cur);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            $state0 = _mm_sha256rnds2_epu32($state0, $state1, msg);
            $prev = _mm_sha256msg1_epu32($prev, $cur);
        };
    }

    /// As [`sched4!`] for the last schedule rounds (48–59), where no
    /// further `msg1` prefetch is needed.
    macro_rules! sched4_tail {
        ($state0:ident, $state1:ident, $cur:ident, $next:ident, $prev:ident, $t:expr) => {
            let msg = _mm_add_epi32($cur, kload($t));
            $state1 = _mm_sha256rnds2_epu32($state1, $state0, msg);
            let tmp = _mm_alignr_epi8($cur, $prev, 4);
            $next = _mm_add_epi32($next, tmp);
            $next = _mm_sha256msg2_epu32($next, $cur);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            $state0 = _mm_sha256rnds2_epu32($state0, $state1, msg);
        };
    }

    /// # Safety
    /// Caller must have verified SHA + SSSE3 + SSE4.1 at runtime.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
        // Byte shuffle turning each big-endian message dword into a
        // native-order schedule word.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203u64 as i64);

        unsafe {
            // Pack [a,b,c,d],[e,f,g,h] into the (ABEF, CDGH) split the
            // rnds2 instruction works on.
            let tmp = _mm_loadu_si128(state.as_ptr().cast());
            let mut state1 = _mm_loadu_si128(state.as_ptr().add(4).cast());
            let tmp = _mm_shuffle_epi32(tmp, 0xB1);
            let mut state1v = _mm_shuffle_epi32(state1, 0x1B);
            let mut state0 = _mm_alignr_epi8(tmp, state1v, 8);
            state1 = _mm_blend_epi16(state1v, tmp, 0xF0);

            let abef_save = state0;
            let cdgh_save = state1;

            // Rounds 0–3.
            let mut m0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask);
            let msg = _mm_add_epi32(m0, kload(0));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            // Rounds 4–7.
            let mut m1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask);
            let msg = _mm_add_epi32(m1, kload(4));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            m0 = _mm_sha256msg1_epu32(m0, m1);

            // Rounds 8–11.
            let mut m2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask);
            let msg = _mm_add_epi32(m2, kload(8));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            m1 = _mm_sha256msg1_epu32(m1, m2);

            // Rounds 12–51: the steady-state schedule recurrence.
            let mut m3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask);
            sched4!(state0, state1, m3, m0, m2, 12);
            sched4!(state0, state1, m0, m1, m3, 16);
            sched4!(state0, state1, m1, m2, m0, 20);
            sched4!(state0, state1, m2, m3, m1, 24);
            sched4!(state0, state1, m3, m0, m2, 28);
            sched4!(state0, state1, m0, m1, m3, 32);
            sched4!(state0, state1, m1, m2, m0, 36);
            sched4!(state0, state1, m2, m3, m1, 40);
            sched4!(state0, state1, m3, m0, m2, 44);
            sched4!(state0, state1, m0, m1, m3, 48);

            // Rounds 52–59: schedule winds down (the `msg1` chain has
            // produced everything `w[60..64]` needs by round 51).
            sched4_tail!(state0, state1, m1, m2, m0, 52);
            sched4_tail!(state0, state1, m2, m3, m1, 56);

            // Rounds 60–63.
            let msg = _mm_add_epi32(m3, kload(60));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);

            // Unpack (ABEF, CDGH) back to [a..d], [e..h].
            let tmp = _mm_shuffle_epi32(state0, 0x1B);
            state1v = _mm_shuffle_epi32(state1, 0xB1);
            let out0 = _mm_blend_epi16(tmp, state1v, 0xF0);
            let out1 = _mm_alignr_epi8(state1v, tmp, 8);
            _mm_storeu_si128(state.as_mut_ptr().cast(), out0);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out1);
        }
    }
}

/// FNV-1a 64-bit hash: the cheap hash-table hash.
#[must_use]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST CAVP known-answer tests.
    #[test]
    fn sha256_nist_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_padding_edge_cases() {
        // Lengths around the 56-byte padding boundary.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![b'a'; len];
            let d1 = sha256(&data);
            let d2 = sha256(&data);
            assert_eq!(d1, d2);
            // A one-byte change flips the digest.
            let mut other = data.clone();
            other[len / 2] ^= 1;
            assert_ne!(sha256(&other), d1, "len {len}");
        }
    }

    #[test]
    fn sha256_million_a() {
        // NIST long-message vector: one million 'a's.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_across_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 + 3) as u8).collect();
        let expected = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), expected, "split {split}");
        }
        // Byte-at-a-time streaming.
        let mut hasher = Sha256::new();
        for byte in &data {
            hasher.update(std::slice::from_ref(byte));
        }
        assert_eq!(hasher.finalize(), expected);
    }

    #[test]
    fn fnv1a_known_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_distributes() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000u32)
            .map(|i| fnv1a_64(&i.to_le_bytes()))
            .collect();
        assert_eq!(hashes.len(), 10_000, "collisions on trivial input set");
    }
}
