//! RPC serialization: a compact binary codec for key-value requests and
//! responses.
//!
//! The "Serialization/Deserialization" functionality of Table 3 is RPC
//! argument marshalling; this module provides a representative codec —
//! varint-length-prefixed fields, no self-description — whose per-byte
//! cost the harness can measure, and whose output feeds the compression
//! and encryption stages of the [`crate::pipeline`].

use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended mid-message.
    Truncated,
    /// A varint ran past 10 bytes.
    VarintOverflow,
    /// The message tag byte was unknown.
    UnknownTag(u8),
    /// Trailing bytes followed a complete message.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message is truncated"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A key-value RPC message (the Cache service's wire traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvMessage {
    /// Fetch a key.
    Get {
        /// The key to fetch.
        key: Vec<u8>,
    },
    /// Store a value under a key with a TTL.
    Set {
        /// The key to store under.
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
        /// Time-to-live in seconds.
        ttl_seconds: u64,
    },
    /// A hit response carrying the value.
    Hit {
        /// The value bytes.
        value: Vec<u8>,
    },
    /// A miss response.
    Miss,
}

const TAG_GET: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_HIT: u8 = 3;
const TAG_MISS: u8 = 4;

fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    for shift in 0..10 {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift == 9 && byte > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecodeError> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(DecodeError::Truncated)?;
    if end > buf.len() {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf[*pos..end].to_vec();
    *pos = end;
    Ok(bytes)
}

impl KvMessage {
    /// Encodes the message to bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Encodes the message into `out` (cleared first), reusing the
    /// buffer's capacity — the allocation-free path for a request loop
    /// serializing many messages. Output bytes are identical to
    /// [`KvMessage::encode`]'s.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            KvMessage::Get { key } => {
                out.push(TAG_GET);
                put_bytes(out, key);
            }
            KvMessage::Set {
                key,
                value,
                ttl_seconds,
            } => {
                out.push(TAG_SET);
                put_bytes(out, key);
                put_bytes(out, value);
                put_varint(out, *ttl_seconds);
            }
            KvMessage::Hit { value } => {
                out.push(TAG_HIT);
                put_bytes(out, value);
            }
            KvMessage::Miss => out.push(TAG_MISS),
        }
    }

    /// Decodes a message, requiring the buffer to be exactly one message.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, varint overflow, unknown
    /// tags, or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut pos = 0usize;
        let tag = *buf.first().ok_or(DecodeError::Truncated)?;
        pos += 1;
        let message = match tag {
            TAG_GET => KvMessage::Get {
                key: get_bytes(buf, &mut pos)?,
            },
            TAG_SET => {
                let key = get_bytes(buf, &mut pos)?;
                let value = get_bytes(buf, &mut pos)?;
                let ttl_seconds = get_varint(buf, &mut pos)?;
                KvMessage::Set {
                    key,
                    value,
                    ttl_seconds,
                }
            }
            TAG_HIT => KvMessage::Hit {
                value: get_bytes(buf, &mut pos)?,
            },
            TAG_MISS => KvMessage::Miss,
            other => return Err(DecodeError::UnknownTag(other)),
        };
        if pos != buf.len() {
            return Err(DecodeError::TrailingBytes {
                remaining: buf.len() - pos,
            });
        }
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: &KvMessage) {
        let encoded = message.encode();
        let decoded = KvMessage::decode(&encoded).expect("round trip decodes");
        assert_eq!(&decoded, message);
    }

    #[test]
    fn round_trips_every_variant() {
        round_trip(&KvMessage::Get { key: b"user:42".to_vec() });
        round_trip(&KvMessage::Set {
            key: b"feed:99".to_vec(),
            value: vec![7u8; 3_000],
            ttl_seconds: 86_400,
        });
        round_trip(&KvMessage::Hit { value: vec![] });
        round_trip(&KvMessage::Miss);
        round_trip(&KvMessage::Get { key: vec![] });
    }

    #[test]
    fn varint_boundaries() {
        for ttl in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            round_trip(&KvMessage::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
                ttl_seconds: ttl,
            });
        }
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let encoded = KvMessage::Set {
            key: b"key".to_vec(),
            value: b"value".to_vec(),
            ttl_seconds: 300,
        }
        .encode();
        for cut in 0..encoded.len() {
            let err = KvMessage::decode(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_unknown_tags_and_trailing_bytes() {
        assert_eq!(KvMessage::decode(&[99]), Err(DecodeError::UnknownTag(99)));
        let mut encoded = KvMessage::Miss.encode();
        encoded.push(0);
        assert_eq!(
            KvMessage::decode(&encoded),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn rejects_varint_overflow() {
        // 11 continuation bytes.
        let mut buf = vec![TAG_GET];
        buf.extend_from_slice(&[0xffu8; 10]);
        assert_eq!(KvMessage::decode(&buf), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn encoding_is_compact() {
        let m = KvMessage::Get { key: b"k".to_vec() };
        assert_eq!(m.encode().len(), 3); // tag + len + 1 byte
        assert_eq!(KvMessage::Miss.encode().len(), 1);
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::UnknownTag(7).to_string().contains("0x07"));
        assert!(DecodeError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains('3'));
        assert!(DecodeError::VarintOverflow.to_string().contains("64"));
    }
}
