//! # accelerometer-kernels
//!
//! From-scratch software implementations of the kernels the Accelerometer
//! paper studies as acceleration targets, plus the micro-benchmark
//! harness §4 uses to derive model parameters:
//!
//! * [`aes`] — AES-128 + CTR mode (the AES-NI case study's kernel);
//! * [`lz`] — an LZ77-style compressor (the ZSTD/compression kernel);
//! * [`mlp`] — multilayer-perceptron inference (the Feed/Ads ML kernel);
//! * [`alloc`] — a TCMalloc-style size-class allocator with sized and
//!   unsized free paths (§2.3.1's allocation/free discussion);
//! * [`memops`] — byte-accounted copy/move/set/compare with per-origin
//!   attribution (Figs. 3–4);
//! * [`hash`] — SHA-256 and FNV-1a (the Hashing leaf category);
//! * [`codec`] + [`pipeline`] — an RPC wire codec and the full sender/
//!   receiver orchestration pipeline (serialize → compress → encrypt →
//!   frame) with per-stage byte accounting;
//! * [`kvstore`] — the Cache services' application logic: a sharded,
//!   TTL-aware key-value store served over the pipeline;
//! * [`harness`] — wall-time → cycles measurement to derive `Cb` and `A`;
//! * [`dispatch`] — runtime ISA dispatch: kernels use the host's
//!   AES-NI/SHA-NI/AVX2 paths when present (scalar otherwise), with
//!   `KERNELS_FORCE_SCALAR=1` / [`dispatch::set_isa_mode`] forcing the
//!   scalar reference tier. Every hardware path is bit-identical to its
//!   scalar counterpart, so the mode only changes wall-clock — the
//!   scalar tier is the paper's "unaccelerated host" baseline and the
//!   dispatched tier is what the `A` factor is measured against.
//!
//! ```
//! use accelerometer_kernels::{aes, harness::Harness};
//!
//! // Derive an encryption Cb the way §4 does with micro-benchmarks.
//! let h = Harness::new(2.0e9);
//! let cipher = aes::Aes128::new(&[0u8; 16]);
//! let mut buf = vec![0u8; 4096];
//! let m = h.measure(8, 4096, || cipher.ctr_apply(&[0u8; 16], &mut buf));
//! assert!(m.cycles_per_byte().get() > 0.0);
//! ```

#![warn(missing_docs)]
// `unsafe` is denied workspace-wide (not `forbid`, which would be
// unoverridable): the only allowed exceptions are the `simd` submodules
// below, which call `std::arch` intrinsics behind `#[target_feature]`
// functions that [`dispatch`] guards with runtime feature detection.
#![deny(unsafe_code)]

pub mod aes;
pub mod alloc;
pub mod codec;
pub mod dispatch;
pub mod harness;
pub mod hash;
pub mod kvstore;
pub mod lz;
pub mod memops;
pub mod mlp;
pub mod pipeline;

pub use alloc::{AllocStats, Allocation, SizeClassAllocator};
pub use codec::KvMessage;
pub use kvstore::{KvStats, KvStore};
pub use pipeline::{RpcPipeline, Stage};
pub use harness::{acceleration_factor, BatchedMeasurement, Harness, KernelMeasurement};
pub use hash::Sha256;
pub use lz::LzScratch;
pub use memops::{MemOp, OpCounter};
pub use mlp::{Activation, Layer, Mlp, MlpError, MlpScratch, WeightLayout};
