//! Property-based tests for the kernel implementations: the invariants
//! that must hold for arbitrary inputs, not just the known-answer
//! vectors.

use accelerometer_kernels::codec::KvMessage;
use accelerometer_kernels::mlp::{Mlp, MlpScratch, WeightLayout};
use accelerometer_kernels::pipeline::RpcPipeline;
use accelerometer_kernels::{aes, hash, lz, SizeClassAllocator};
use proptest::prelude::*;

fn kv_message_strategy() -> impl Strategy<Value = KvMessage> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..256).prop_map(|key| KvMessage::Get { key }),
        (
            prop::collection::vec(any::<u8>(), 0..128),
            prop::collection::vec(any::<u8>(), 0..2048),
            any::<u64>(),
        )
            .prop_map(|(key, value, ttl_seconds)| KvMessage::Set {
                key,
                value,
                ttl_seconds
            }),
        prop::collection::vec(any::<u8>(), 0..2048).prop_map(|value| KvMessage::Hit { value }),
        Just(KvMessage::Miss),
    ]
}

proptest! {
    /// LZ compression round-trips every byte string.
    #[test]
    fn lz_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = lz::compress(&data);
        let back = lz::decompress(&compressed).expect("compressor output decodes");
        prop_assert_eq!(back, data);
    }

    /// Highly repetitive inputs always compress below 30%.
    #[test]
    fn lz_compresses_repetition(byte in any::<u8>(), reps in 256usize..4096) {
        let data = vec![byte; reps];
        let ratio = lz::compression_ratio(&data);
        prop_assert!(ratio < 0.3, "ratio {} for {} × {:#04x}", ratio, reps, byte);
    }

    /// Decompression never panics on arbitrary (usually invalid) input.
    #[test]
    fn lz_decompress_is_total(data in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = lz::decompress(&data);
    }

    /// AES-CTR is a bijection: apply twice with the same counter to get
    /// the plaintext back, for any key/counter/message.
    #[test]
    fn aes_ctr_round_trips(
        key in prop::array::uniform16(any::<u8>()),
        counter in prop::array::uniform16(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let ciphertext = aes::encrypt_ctr(&key, &counter, &data);
        prop_assert_eq!(ciphertext.len(), data.len());
        let plaintext = aes::encrypt_ctr(&key, &counter, &ciphertext);
        prop_assert_eq!(plaintext, data);
    }

    /// Distinct counters produce distinct keystreams (no reuse).
    #[test]
    fn aes_ctr_counters_differ(
        key in prop::array::uniform16(any::<u8>()),
        mut counter in prop::array::uniform16(any::<u8>()),
    ) {
        let data = vec![0u8; 64];
        let c1 = aes::encrypt_ctr(&key, &counter, &data);
        counter[0] ^= 0x01;
        let c2 = aes::encrypt_ctr(&key, &counter, &data);
        prop_assert_ne!(c1, c2);
    }

    /// SHA-256 is deterministic and sensitive to single-bit flips.
    #[test]
    fn sha256_avalanche(
        data in prop::collection::vec(any::<u8>(), 1..512),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let d1 = hash::sha256(&data);
        prop_assert_eq!(d1, hash::sha256(&data));
        let mut flipped = data.clone();
        let idx = flip_byte.index(flipped.len());
        flipped[idx] ^= 1 << flip_bit;
        let d2 = hash::sha256(&flipped);
        prop_assert_ne!(d1, d2);
        // Avalanche: a substantial fraction of digest bits change.
        let differing: u32 = d1.iter().zip(d2.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        prop_assert!(differing >= 64, "only {} bits changed", differing);
    }

    /// The allocator conserves its live count under arbitrary
    /// alloc/free interleavings, serves every in-range request, and data
    /// written through one handle is never clobbered by another.
    #[test]
    fn allocator_interleavings(ops in prop::collection::vec((1usize..4096, any::<bool>(), any::<u8>()), 1..200)) {
        let mut alloc = SizeClassAllocator::new();
        let mut live: Vec<(accelerometer_kernels::Allocation, u8)> = Vec::new();
        for (size, do_free, fill) in ops {
            if do_free && !live.is_empty() {
                let (handle, expected) = live.swap_remove(0);
                // Verify the data survived all intervening operations.
                prop_assert!(alloc.data_mut(&handle).iter().all(|&b| b == expected));
                alloc.free(handle);
            } else {
                let handle = alloc.alloc(size).expect("in-range allocation succeeds");
                alloc.data_mut(&handle).fill(fill);
                live.push((handle, fill));
            }
            prop_assert_eq!(alloc.live_allocations(), live.len() as u64);
        }
        // Drain, verifying every payload; use the sized free path.
        for (handle, expected) in live {
            prop_assert!(alloc.data_mut(&handle).iter().all(|&b| b == expected));
            let size = handle.requested_bytes();
            alloc.free_with_size(handle, size);
        }
        prop_assert_eq!(alloc.live_allocations(), 0);
    }

    /// Size classes round every size up, never down, and stay within 2×.
    #[test]
    fn size_classes_round_up_within_2x(size in 1usize..4096) {
        let alloc = SizeClassAllocator::new();
        let class = alloc.class_for(size).expect("covered");
        prop_assert!(class >= size);
        prop_assert!(class < size * 2 + 8, "class {} too loose for {}", class, size);
    }

    /// The RPC codec round-trips every message.
    #[test]
    fn codec_round_trips(message in kv_message_strategy()) {
        let encoded = message.encode();
        let decoded = KvMessage::decode(&encoded).expect("codec output decodes");
        prop_assert_eq!(decoded, message);
    }

    /// The codec never panics on arbitrary bytes.
    #[test]
    fn codec_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = KvMessage::decode(&bytes);
    }

    /// The full RPC pipeline (serialize → compress → encrypt → frame and
    /// back) round-trips every message under every key.
    #[test]
    fn pipeline_round_trips(
        message in kv_message_strategy(),
        key in prop::array::uniform16(any::<u8>()),
    ) {
        let mut sender = RpcPipeline::new(&key);
        let mut receiver = RpcPipeline::new(&key);
        let frame = sender.seal(&message);
        let back = receiver.open(&frame).expect("pipeline round trip");
        prop_assert_eq!(back, message);
    }

    /// Opening arbitrary garbage never panics and never yields a message
    /// (the checksum gate).
    #[test]
    fn pipeline_open_is_total(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        key in prop::array::uniform16(any::<u8>()),
    ) {
        let mut receiver = RpcPipeline::new(&key);
        let result = receiver.open(&bytes);
        prop_assert!(result.is_err());
    }

    /// Streaming SHA-256 equals the one-shot digest for every message
    /// and every update split — including splits straddling the 64-byte
    /// block boundary — and so does hashing in three pieces.
    #[test]
    fn sha256_streaming_equals_one_shot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split_a in any::<prop::sample::Index>(),
        split_b in any::<prop::sample::Index>(),
    ) {
        let expected = hash::sha256(&data);
        let (mut lo, mut hi) = (split_a.index(data.len() + 1), split_b.index(data.len() + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut two = hash::Sha256::new();
        two.update(&data[..hi]);
        two.update(&data[hi..]);
        prop_assert_eq!(two.finalize(), expected);
        let mut three = hash::Sha256::new();
        three.update(&data[..lo]);
        three.update(&data[lo..hi]);
        three.update(&data[hi..]);
        prop_assert_eq!(three.finalize(), expected);
    }

    /// Batched MLP inference is bit-identical to repeated scalar
    /// inference, for any batch, under both weight layouts.
    #[test]
    fn mlp_forward_batch_equals_scalar(
        widths in prop::collection::vec(1usize..24, 2..5),
        batch_len in 0usize..20,
        seed in any::<u64>(),
        transpose in any::<bool>(),
    ) {
        let mut mlp = Mlp::seeded_ranker(&widths, seed);
        if transpose {
            mlp = mlp.with_layout(WeightLayout::Transposed);
        }
        let input_width = mlp.input_width();
        let batch: Vec<Vec<f32>> = (0..batch_len)
            .map(|b| {
                (0..input_width)
                    .map(|i| ((b * 31 + i * 7 + seed as usize) % 113) as f32 / 56.5 - 1.0)
                    .collect()
            })
            .collect();
        let mut scratch = MlpScratch::new();
        let mut flat = Vec::new();
        mlp.forward_batch(&batch, &mut scratch, &mut flat).expect("widths match");
        let out_width = mlp.output_width();
        prop_assert_eq!(flat.len(), batch_len * out_width);
        for (b, features) in batch.iter().enumerate() {
            let scalar = mlp.infer(features).expect("widths match");
            let bits_scalar: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
            let bits_batch: Vec<u32> = flat[b * out_width..(b + 1) * out_width]
                .iter()
                .map(|x| x.to_bits())
                .collect();
            prop_assert_eq!(&bits_scalar, &bits_batch, "batch element {} diverged", b);
        }
    }

    /// `compress_into` with a reused scratch emits the same byte stream
    /// as the fresh-table `compress`, across arbitrary input sequences.
    #[test]
    fn lz_scratch_reuse_equals_fresh(
        inputs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2048), 1..6),
    ) {
        let mut scratch = lz::LzScratch::new();
        let mut out = Vec::new();
        for input in &inputs {
            lz::compress_into(input, &mut scratch, &mut out);
            prop_assert_eq!(&out, &lz::compress(input));
            let mut back = Vec::new();
            lz::decompress_into(&out, &mut back).expect("round trip");
            prop_assert_eq!(&back, input);
        }
    }

    /// A warm pipeline's `seal_into` emits frames byte-identical to the
    /// allocating `seal`, for any message sequence.
    #[test]
    fn pipeline_seal_into_equals_seal(
        messages in prop::collection::vec(kv_message_strategy(), 1..5),
        key in prop::array::uniform16(any::<u8>()),
    ) {
        let mut warm = RpcPipeline::new(&key);
        let mut fresh = RpcPipeline::new(&key);
        let mut frame = Vec::new();
        for message in &messages {
            warm.seal_into(message, &mut frame);
            prop_assert_eq!(&frame, &fresh.seal(message));
        }
    }
}
