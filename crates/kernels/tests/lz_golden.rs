//! Fixed-corpus golden test for the LZ compressor: the exact compressed
//! byte stream for a set of representative inputs is pinned in a
//! checked-in fixture. The word-wise match-extension fast path (and any
//! future matcher change) must keep the output byte-identical — the
//! compressor's stream format is a stability contract the simulator's
//! calibrated `Cb` numbers and the decompressor both rely on.
//!
//! Regenerate after an *intentional* format change with
//! `GOLDEN_BLESS=1 cargo test -p accelerometer-kernels --test lz_golden`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use accelerometer_kernels::lz;

fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    let text = "the quick brown fox jumps over the lazy dog ".repeat(30);
    let runs = vec![b'a'; 1_000];
    // Pseudo-random bytes: essentially incompressible, exercises the
    // literal-run path and near-miss match candidates.
    let noise: Vec<u8> = (0u32..4_096)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    // Long self-similar binary data with period > 8: match extension
    // crosses many 8-byte word boundaries and ends mid-word.
    let period13: Vec<u8> = (0..6_000).map(|i| (i % 13) as u8).collect();
    // Alternating compressible/incompressible stretches, with lengths
    // chosen so matches end at every offset mod 8.
    let mut mixed = Vec::new();
    for i in 0..40u32 {
        mixed.extend_from_slice(&b"abcdefgh".repeat(3 + (i as usize % 5)));
        mixed.extend((0..(7 + i * 11) % 23).map(|j| (j * 17 + i) as u8));
    }
    vec![
        ("text", text.into_bytes()),
        ("runs", runs),
        ("noise", noise),
        ("period13", period13),
        ("mixed", mixed),
    ]
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").expect("hex write");
    }
    s
}

#[test]
fn compressed_bytes_are_pinned() {
    let mut actual = String::new();
    for (name, input) in corpora() {
        let compressed = lz::compress(&input);
        // Every pinned stream must also round-trip.
        assert_eq!(
            lz::decompress(&compressed).expect("fixture corpus decodes"),
            input,
            "round trip failed for corpus {name}"
        );
        writeln!(
            actual,
            "{name} in={} out={} {}",
            input.len(),
            compressed.len(),
            hex(&compressed)
        )
        .expect("fixture line");
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lz_golden.txt");
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        fs::write(&path, &actual).expect("write fixture");
        return;
    }
    let expected = fs::read_to_string(&path)
        .expect("missing fixture tests/fixtures/lz_golden.txt; run with GOLDEN_BLESS=1");
    assert_eq!(
        expected, actual,
        "compressed byte stream drifted; the matcher must stay byte-identical"
    );
}
