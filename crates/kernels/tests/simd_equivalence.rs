//! Scalar/SIMD equivalence at adversarial sizes and alignments.
//!
//! Every dispatched kernel must be *bit-identical* to its scalar
//! reference — same ciphertext, digests, token streams, orderings and
//! f32 bit patterns — because the ISA tier is supposed to change only
//! wall-clock, never outputs (no golden fixture may move when dispatch
//! lands). These tests compare each kernel's default (dispatched)
//! entry point against its public `*_scalar` sibling, so they prove the
//! property on whatever the host dispatches to; `scripts/tier1.sh`
//! additionally runs the whole suite under `KERNELS_FORCE_SCALAR=1`,
//! where both sides take the scalar path and the comparison is a
//! tautology by construction.
//!
//! Sizes straddle every vector width in play (16-byte AES blocks,
//! 32-byte AVX2 lanes, 64-byte SHA blocks) plus off-by-one on each
//! side, and inputs are re-checked at unaligned offsets 1..4 — `loadu`
//! paths must not care, and the offset also shifts all kernel-internal
//! phase (e.g. where LZ matches fall relative to vector boundaries).

use accelerometer_kernels::{aes, hash, kvstore::KvStore, lz, memops, mlp};

/// The adversarial byte sizes from the issue spec.
const SIZES: &[usize] = &[0, 1, 15, 16, 17, 63, 64, 65, 4095, 4097];

/// Unaligned start offsets applied to a shared backing buffer.
const OFFSETS: &[usize] = &[0, 1, 2, 3];

/// Deterministic xorshift bytes, compressible enough that LZ finds
/// matches (every third byte cycles in a short period).
fn test_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|i| {
            if i % 3 == 0 {
                (i / 3 % 11) as u8
            } else {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            }
        })
        .collect()
}

#[test]
fn aes_ctr_matches_scalar_at_adversarial_sizes() {
    let cipher = aes::Aes128::new(b"equivalence-key!");
    let counter = *b"ctr-equivalence!";
    for &size in SIZES {
        for &off in OFFSETS {
            let backing = test_bytes(size + off, 0xA5A5);
            let mut dispatched = backing[off..].to_vec();
            let mut scalar = dispatched.clone();
            let blocks_d = cipher.ctr_apply(&counter, &mut dispatched);
            let blocks_s = cipher.ctr_apply_scalar(&counter, &mut scalar);
            assert_eq!(blocks_d, blocks_s, "block count at size {size} offset {off}");
            assert_eq!(dispatched, scalar, "ciphertext at size {size} offset {off}");
            // CTR is an involution: applying again restores plaintext.
            cipher.ctr_apply(&counter, &mut dispatched);
            assert_eq!(dispatched, &backing[off..], "round trip at size {size}");
        }
    }
}

#[test]
fn aes_single_block_matches_scalar() {
    let cipher = aes::Aes128::new(&[0x5A; 16]);
    for i in 0..=255u8 {
        let mut a = [i; 16];
        let mut b = [i; 16];
        cipher.encrypt_block(&mut a);
        cipher.encrypt_block_scalar(&mut b);
        assert_eq!(a, b);
    }
}

#[test]
fn sha256_matches_scalar_at_adversarial_sizes() {
    for &size in SIZES {
        for &off in OFFSETS {
            let backing = test_bytes(size + off, 0x5145);
            let data = &backing[off..];
            assert_eq!(
                hash::sha256(data),
                hash::sha256_scalar(data),
                "digest at size {size} offset {off}"
            );
        }
    }
}

#[test]
fn sha256_streaming_matches_scalar_across_split_points() {
    // The streaming hasher dispatches per compressed block; splitting
    // the input at awkward points exercises partial-block buffering
    // around the SIMD path.
    let data = test_bytes(4097, 0xD1CE);
    let whole = hash::sha256_scalar(&data);
    for split in [0usize, 1, 15, 63, 64, 65, 1000, 4096] {
        let mut hasher = hash::Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        assert_eq!(hasher.finalize(), whole, "split at {split}");
    }
}

#[test]
fn lz_streams_match_scalar_at_adversarial_sizes() {
    for &size in SIZES {
        for &off in OFFSETS {
            let backing = test_bytes(size + off, 0x1234);
            let data = &backing[off..];
            let dispatched = lz::compress(data);
            let scalar = lz::compress_scalar(data);
            assert_eq!(dispatched, scalar, "token stream at size {size} offset {off}");
            assert_eq!(
                lz::decompress(&dispatched).expect("round trip"),
                data,
                "round trip at size {size} offset {off}"
            );
        }
    }
}

#[test]
fn lz_streams_match_scalar_on_long_matches() {
    // Long runs drive the 32-byte match extension and the batched
    // stride-2 hash insertion; mixed periods vary match lengths across
    // the 32/64-byte boundaries.
    for period in [1usize, 7, 16, 31, 32, 33, 255] {
        let data: Vec<u8> = (0..8192).map(|i| (i % period.max(1)) as u8).collect();
        assert_eq!(
            lz::compress(&data),
            lz::compress_scalar(&data),
            "token stream at period {period}"
        );
    }
}

#[test]
fn memops_match_scalar_at_adversarial_sizes() {
    let mut counter = memops::OpCounter::new();
    for &size in SIZES {
        for &off in OFFSETS {
            let backing = test_bytes(size + off, 0xBEEF);
            let a = &backing[off..];
            let mut dst_d = vec![0u8; a.len()];
            let mut dst_s = vec![0u8; a.len()];
            memops::copy(&mut counter, "equiv", &mut dst_d, a);
            memops::copy_scalar(&mut counter, "equiv", &mut dst_s, a);
            assert_eq!(dst_d, dst_s, "copy at size {size} offset {off}");

            // Equal, differ-at-first, differ-at-last, prefix-of.
            let mut b = a.to_vec();
            let mut cases = vec![b.clone()];
            if !b.is_empty() {
                b[0] ^= 1;
                cases.push(b.clone());
                b[0] ^= 1;
                *b.last_mut().expect("non-empty") ^= 0x80;
                cases.push(b.clone());
            }
            for case in &cases {
                assert_eq!(
                    memops::compare(&mut counter, "equiv", a, case),
                    memops::compare_scalar(&mut counter, "equiv", a, case),
                    "compare at size {size} offset {off}"
                );
            }
            assert_eq!(
                memops::compare(&mut counter, "equiv", a, &a[..size / 2]),
                memops::compare_scalar(&mut counter, "equiv", a, &a[..size / 2]),
                "prefix compare at size {size} offset {off}"
            );
        }
    }
}

#[test]
fn mlp_bit_identical_at_spec_batch_widths() {
    // Batch widths from the issue spec: 1 and 3 never reach the 8-wide
    // row path, 8 is exactly one vector, 17 leaves a 1-wide tail; layer
    // widths are odd so the across-output kernels also run remainders.
    for &batch_len in &[1usize, 3, 8, 17] {
        let base = mlp::Mlp::seeded_ranker(&[37, 19, 3], 0xACC0 + batch_len as u64);
        let batch: Vec<Vec<f32>> = (0..batch_len)
            .map(|b| {
                (0..37)
                    .map(|j| ((b * 37 + j * 13) % 97) as f32 / 24.0 - 2.0)
                    .collect()
            })
            .collect();
        for net in [base.clone(), base.with_layout(mlp::WeightLayout::Transposed)] {
            let mut scratch = mlp::MlpScratch::new();
            let (mut dispatched, mut scalar) = (Vec::new(), Vec::new());
            net.forward_batch(&batch, &mut scratch, &mut dispatched)
                .expect("batch");
            net.forward_batch_scalar(&batch, &mut scratch, &mut scalar)
                .expect("batch scalar");
            assert_eq!(
                dispatched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "batch outputs at width {batch_len}"
            );
            for features in &batch {
                let d = net.infer(features).expect("infer");
                let s = net.infer_scalar(features).expect("infer scalar");
                assert_eq!(
                    d.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "single-input outputs at width {batch_len}"
                );
            }
        }
    }
}

#[test]
fn kvstore_probe_matches_scalar_under_churn() {
    // Mirrored stores, one probed via the dispatched path and one via
    // the scalar path, through sets, hits, misses, expiries, and a
    // sweep; 4 shards over 500 keys keeps tag arrays long enough for
    // the 16-wide probe loop plus its tail.
    let mut dispatched = KvStore::new(4);
    let mut scalar = KvStore::new(4);
    for i in 0..500u32 {
        let key = format!("equiv:{i}");
        let value = test_bytes((i % 64) as usize, u64::from(i));
        let ttl = u64::from(5 + i % 40);
        dispatched.set(key.as_bytes(), value.clone(), ttl, 0);
        scalar.set(key.as_bytes(), value, ttl, 0);
    }
    for now in [1u64, 10, 20, 44, 45] {
        for i in 0..550u32 {
            let key = format!("equiv:{i}");
            assert_eq!(
                dispatched.get(key.as_bytes(), now),
                scalar.get_scalar(key.as_bytes(), now),
                "lookup divergence at key {i} now {now}"
            );
        }
        assert_eq!(dispatched.stats(), scalar.stats());
        assert_eq!(dispatched.len(), scalar.len());
    }
    assert_eq!(dispatched.sweep_expired(30), scalar.sweep_expired(30));
    assert_eq!(dispatched.len(), scalar.len());
}
