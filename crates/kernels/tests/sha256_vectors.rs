//! SHA-256 known-answer tests from FIPS 180-4 / NIST CAVP, exercised
//! through both the one-shot [`sha256`] and the streaming [`Sha256`]
//! hasher.
//!
//! The boundary lengths target the padding logic: 55 bytes is the
//! longest message whose padding fits one block, 56 forces the length
//! into a second block, 64 is an exact block, and 119/120 repeat the
//! same boundary one block later.

use accelerometer_kernels::hash::{sha256, Sha256};

fn hex(digest: &[u8; 32]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Checks a vector through every path: one-shot, single-update
/// streaming, byte-at-a-time streaming, and a mid-message split.
fn check(message: &[u8], expected_hex: &str) {
    assert_eq!(hex(&sha256(message)), expected_hex, "one-shot");

    let mut hasher = Sha256::new();
    hasher.update(message);
    assert_eq!(hex(&hasher.finalize()), expected_hex, "single update");

    let mut hasher = Sha256::new();
    for byte in message {
        hasher.update(std::slice::from_ref(byte));
    }
    assert_eq!(hex(&hasher.finalize()), expected_hex, "byte at a time");

    let mid = message.len() / 2;
    let mut hasher = Sha256::new();
    hasher.update(&message[..mid]);
    hasher.update(&message[mid..]);
    assert_eq!(hex(&hasher.finalize()), expected_hex, "split at {mid}");
}

#[test]
fn empty_message() {
    check(
        b"",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    );
}

#[test]
fn abc() {
    check(
        b"abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    );
}

#[test]
fn two_block_message() {
    // FIPS 180-4's 448-bit test message; spans two compression blocks
    // once padded.
    check(
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    );
}

#[test]
fn padding_boundary_lengths() {
    // 55: padding (0x80 + length) fits the first block exactly.
    // 56: the 0x80 fits but the length spills into a second block.
    // 64: an exact block; padding is an entire extra block.
    // 119/120: the same two boundaries, one block later.
    for (len, expected) in [
        (
            55usize,
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
        ),
        (
            56,
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
        ),
        (
            64,
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
        ),
        (
            119,
            "31eba51c313a5c08226adf18d4a359cfdfd8d2e816b13f4af952f7ea6584dcfb",
        ),
        (
            120,
            "2f3d335432c70b580af0e8e1b3674a7c020d683aa5f73aaaedfdc55af904c21c",
        ),
    ] {
        check(&vec![b'a'; len], expected);
    }
}

#[test]
fn million_a_streamed_in_odd_chunks() {
    // NIST's long-message vector, fed in a chunk size (97) coprime to
    // the 64-byte block so every buffered-tail path is exercised.
    let data = vec![b'a'; 1_000_000];
    let mut hasher = Sha256::new();
    for chunk in data.chunks(97) {
        hasher.update(chunk);
    }
    assert_eq!(
        hex(&hasher.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}
