//! Report differencing: the before/after comparison behind Figs. 16–18.
//!
//! §4 presents each case study as a pair of functionality breakdowns —
//! the unaccelerated and accelerated instances — and reads off which
//! categories shrank. This module compares two [`ProfileReport`]s the
//! same way, with the categories ranked by shift.

use std::fmt::Write as _;

use accelerometer_fleet::FunctionalityCategory;

use crate::analyze::ProfileReport;

/// One category's before/after comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffRow {
    /// The functionality category.
    pub category: FunctionalityCategory,
    /// Percent of cycles before.
    pub before_percent: f64,
    /// Percent of cycles after.
    pub after_percent: f64,
}

impl DiffRow {
    /// Percentage-point shift (positive = grew).
    #[must_use]
    pub fn delta_points(&self) -> f64 {
        self.after_percent - self.before_percent
    }

    /// Relative change of the category's share (−1 = vanished).
    #[must_use]
    pub fn relative_change(&self) -> f64 {
        if self.before_percent <= 0.0 {
            if self.after_percent > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.after_percent / self.before_percent - 1.0
        }
    }
}

/// The comparison of two functionality reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    rows: Vec<DiffRow>,
}

impl ReportDiff {
    /// All rows, sorted by absolute shift (largest first).
    #[must_use]
    pub fn rows(&self) -> &[DiffRow] {
        &self.rows
    }

    /// The category that shrank the most (what the acceleration freed).
    #[must_use]
    pub fn biggest_reduction(&self) -> Option<DiffRow> {
        self.rows
            .iter()
            .copied()
            .filter(|r| r.delta_points() < 0.0)
            .min_by(|a, b| a.delta_points().partial_cmp(&b.delta_points()).expect("finite"))
    }

    /// The category that grew the most (where the freed share went).
    #[must_use]
    pub fn biggest_growth(&self) -> Option<DiffRow> {
        self.rows
            .iter()
            .copied()
            .filter(|r| r.delta_points() > 0.0)
            .max_by(|a, b| a.delta_points().partial_cmp(&b.delta_points()).expect("finite"))
    }

    /// Renders the diff as a Fig. 16-style text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("functionality          before   after   delta\n");
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<28} {:>5.1}%  {:>5.1}%  {:+5.1}pp",
                row.category.to_string(),
                row.before_percent,
                row.after_percent,
                row.delta_points()
            );
        }
        out
    }
}

/// Compares the functionality breakdowns of two reports.
#[must_use]
pub fn diff(before: &ProfileReport, after: &ProfileReport) -> ReportDiff {
    let mut rows: Vec<DiffRow> = FunctionalityCategory::ALL
        .iter()
        .filter_map(|&category| {
            let b = before.functionality.percent(category);
            let a = after.functionality.percent(category);
            (b > 0.0 || a > 0.0).then_some(DiffRow {
                category,
                before_percent: b,
                after_percent: a,
            })
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta_points()
            .abs()
            .partial_cmp(&x.delta_points().abs())
            .expect("finite percentages")
    });
    ReportDiff { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::registry::FunctionRegistry;
    use crate::trace::CallTrace;

    fn report(io: f64, app: f64, logging: f64) -> ProfileReport {
        let registry = FunctionRegistry::with_defaults();
        let traces = vec![
            CallTrace::new(vec!["svc::io::send".into(), "memcpy".into()], io, io),
            CallTrace::new(vec!["svc::app::serve".into(), "std::sort".into()], app, app),
            CallTrace::new(vec!["svc::log::write".into(), "memcpy".into()], logging, logging),
        ];
        analyze(&traces, &registry)
    }

    #[test]
    fn diff_identifies_shrink_and_growth() {
        // Before: IO 50 / app 30 / logging 20. After accelerating IO:
        // IO 20 / app 55 / logging 25.
        let before = report(50.0, 30.0, 20.0);
        let after = report(20.0, 55.0, 25.0);
        let d = diff(&before, &after);
        let reduction = d.biggest_reduction().unwrap();
        assert_eq!(reduction.category, FunctionalityCategory::SecureInsecureIo);
        assert!((reduction.delta_points() + 30.0).abs() < 1e-9);
        assert!((reduction.relative_change() + 0.6).abs() < 1e-9);
        let growth = d.biggest_growth().unwrap();
        assert_eq!(growth.category, FunctionalityCategory::ApplicationLogic);
        // Rows sorted by absolute shift.
        assert_eq!(d.rows()[0].category, FunctionalityCategory::SecureInsecureIo);
    }

    #[test]
    fn identical_reports_diff_to_zero() {
        let a = report(40.0, 40.0, 20.0);
        let d = diff(&a, &a.clone());
        assert!(d.biggest_reduction().is_none());
        assert!(d.biggest_growth().is_none());
        assert!(d.rows().iter().all(|r| r.delta_points().abs() < 1e-12));
    }

    #[test]
    fn vanished_category_has_minus_one_relative_change() {
        let before = report(50.0, 30.0, 20.0);
        // After: logging gone entirely.
        let registry = FunctionRegistry::with_defaults();
        let after = analyze(
            &[
                CallTrace::new(vec!["svc::io::send".into(), "memcpy".into()], 60.0, 60.0),
                CallTrace::new(vec!["svc::app::serve".into(), "std::sort".into()], 40.0, 40.0),
            ],
            &registry,
        );
        let d = diff(&before, &after);
        let logging = d
            .rows()
            .iter()
            .find(|r| r.category == FunctionalityCategory::Logging)
            .unwrap();
        assert_eq!(logging.after_percent, 0.0);
        assert!((logging.relative_change() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_tabular() {
        let d = diff(&report(50.0, 30.0, 20.0), &report(20.0, 55.0, 25.0));
        let text = d.render();
        assert!(text.contains("before"));
        assert!(text.contains("pp"));
        assert!(text.lines().count() >= 4);
    }
}
