//! The function registry: the tagging rules behind the paper's
//! "internal tool that tags each leaf function's category" (§2.2).
//!
//! Leaf functions are recognized by symbol name (e.g. `memcpy` →
//! Memory); call-trace roots carry functionality markers (e.g. a frame
//! under `svc::io::` buckets the trace into Secure+Insecure I/O). The
//! default registry covers representative symbols for every Table 2 and
//! Table 3 category.

use std::collections::HashMap;

use accelerometer_fleet::{FunctionalityCategory, LeafCategory, MemoryOp};

/// Maps symbol names to leaf categories and trace-root prefixes to
/// functionality categories.
#[derive(Debug, Clone)]
pub struct FunctionRegistry {
    leaves: HashMap<&'static str, LeafCategory>,
    functionality_prefixes: Vec<(&'static str, FunctionalityCategory)>,
}

impl FunctionRegistry {
    /// Builds the default registry with representative symbols for every
    /// category.
    #[must_use]
    pub fn with_defaults() -> Self {
        let mut leaves = HashMap::new();
        let mut add = |cat: LeafCategory, names: &[&'static str]| {
            for &n in names {
                leaves.insert(n, cat);
            }
        };
        add(
            LeafCategory::Memory,
            &["memcpy", "memmove", "memset", "memcmp", "malloc", "free", "operator new", "operator delete"],
        );
        add(
            LeafCategory::Kernel,
            &["__schedule", "tcp_sendmsg", "tcp_recvmsg", "epoll_wait", "handle_irq", "futex_wait", "page_fault", "copy_user_generic"],
        );
        add(LeafCategory::Hashing, &["sha256_block", "fnv1a", "crc32", "murmur_hash"]);
        add(
            LeafCategory::Synchronization,
            &["std::atomic::load", "pthread_mutex_lock", "compare_exchange", "spin_lock"],
        );
        add(
            LeafCategory::Zstd,
            &["ZSTD_compressBlock", "ZSTD_decompressBlock", "lz77_match", "huff_decode"],
        );
        add(LeafCategory::Math, &["mkl_sgemm", "avx_dot_product", "vexp", "cblas_sgemv"]);
        add(
            LeafCategory::Ssl,
            &["aes_encrypt_block", "EVP_EncryptUpdate", "tls_record_seal", "rsa_sign"],
        );
        add(
            LeafCategory::CLibraries,
            &["std::sort", "std::string::append", "std::unordered_map::find", "std::vector::push_back", "strcmp", "std::map::lower_bound"],
        );
        add(LeafCategory::Miscellaneous, &["unknown_leaf", "jit_stub"]);

        let functionality_prefixes = vec![
            ("svc::io::", FunctionalityCategory::SecureInsecureIo),
            ("svc::io_prep::", FunctionalityCategory::IoPrePostProcessing),
            ("svc::compress::", FunctionalityCategory::Compression),
            ("svc::serde::", FunctionalityCategory::Serialization),
            ("svc::features::", FunctionalityCategory::FeatureExtraction),
            ("svc::predict::", FunctionalityCategory::PredictionRanking),
            ("svc::app::", FunctionalityCategory::ApplicationLogic),
            ("svc::log::", FunctionalityCategory::Logging),
            ("svc::threads::", FunctionalityCategory::ThreadPoolManagement),
            ("svc::misc::", FunctionalityCategory::Miscellaneous),
        ];
        Self {
            leaves,
            functionality_prefixes,
        }
    }

    /// Tags a leaf symbol; unknown symbols fall into Miscellaneous, the
    /// way an "other assorted function types" bucket absorbs the tail.
    #[must_use]
    pub fn tag_leaf(&self, symbol: &str) -> LeafCategory {
        self.leaves
            .get(symbol)
            .copied()
            .unwrap_or(LeafCategory::Miscellaneous)
    }

    /// Buckets a call-trace root frame into a functionality category.
    /// Frames without a recognized marker fall into Miscellaneous.
    #[must_use]
    pub fn bucket_root(&self, root_frame: &str) -> FunctionalityCategory {
        self.functionality_prefixes
            .iter()
            .find(|(prefix, _)| root_frame.starts_with(prefix))
            .map_or(FunctionalityCategory::Miscellaneous, |(_, cat)| *cat)
    }

    /// Representative leaf symbols for a category (used by the trace
    /// generator).
    #[must_use]
    pub fn leaf_symbols(&self, category: LeafCategory) -> Vec<&'static str> {
        let mut symbols: Vec<&'static str> = self
            .leaves
            .iter()
            .filter(|(_, c)| **c == category)
            .map(|(s, _)| *s)
            .collect();
        symbols.sort_unstable();
        symbols
    }

    /// Classifies a memory-leaf symbol into its Fig. 3 operation, or
    /// `None` for non-memory symbols.
    #[must_use]
    pub fn tag_memory_op(&self, symbol: &str) -> Option<MemoryOp> {
        match symbol {
            "memcpy" => Some(MemoryOp::Copy),
            "memmove" => Some(MemoryOp::Move),
            "memset" => Some(MemoryOp::Set),
            "memcmp" => Some(MemoryOp::Compare),
            "malloc" | "operator new" => Some(MemoryOp::Allocation),
            "free" | "operator delete" => Some(MemoryOp::Free),
            _ => None,
        }
    }

    /// Representative symbols for a memory operation (used by the trace
    /// generator to honor a service's Fig. 3 mix).
    #[must_use]
    pub fn memory_symbols(&self, op: MemoryOp) -> Vec<&'static str> {
        let mut symbols: Vec<&'static str> = self
            .leaves
            .keys()
            .copied()
            .filter(|s| self.tag_memory_op(s) == Some(op))
            .collect();
        symbols.sort_unstable();
        symbols
    }

    /// The root-frame marker prefix for a functionality category.
    #[must_use]
    pub fn root_prefix(&self, category: FunctionalityCategory) -> &'static str {
        self.functionality_prefixes
            .iter()
            .find(|(_, c)| *c == category)
            .map(|(p, _)| *p)
            .expect("every functionality category has a prefix")
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_known_leaves() {
        let r = FunctionRegistry::with_defaults();
        assert_eq!(r.tag_leaf("memcpy"), LeafCategory::Memory);
        assert_eq!(r.tag_leaf("__schedule"), LeafCategory::Kernel);
        assert_eq!(r.tag_leaf("aes_encrypt_block"), LeafCategory::Ssl);
        assert_eq!(r.tag_leaf("ZSTD_compressBlock"), LeafCategory::Zstd);
        assert_eq!(r.tag_leaf("std::sort"), LeafCategory::CLibraries);
        assert_eq!(r.tag_leaf("mkl_sgemm"), LeafCategory::Math);
        assert_eq!(r.tag_leaf("spin_lock"), LeafCategory::Synchronization);
        assert_eq!(r.tag_leaf("sha256_block"), LeafCategory::Hashing);
    }

    #[test]
    fn unknown_leaves_fall_to_miscellaneous() {
        let r = FunctionRegistry::with_defaults();
        assert_eq!(r.tag_leaf("totally_unknown_fn"), LeafCategory::Miscellaneous);
        assert_eq!(r.tag_leaf(""), LeafCategory::Miscellaneous);
    }

    #[test]
    fn buckets_roots_by_prefix() {
        let r = FunctionRegistry::with_defaults();
        assert_eq!(
            r.bucket_root("svc::io::secure_send"),
            FunctionalityCategory::SecureInsecureIo
        );
        assert_eq!(
            r.bucket_root("svc::predict::rank_stories"),
            FunctionalityCategory::PredictionRanking
        );
        assert_eq!(
            r.bucket_root("main"),
            FunctionalityCategory::Miscellaneous
        );
    }

    #[test]
    fn every_leaf_category_has_symbols() {
        let r = FunctionRegistry::with_defaults();
        for &cat in LeafCategory::ALL {
            assert!(
                !r.leaf_symbols(cat).is_empty(),
                "no symbols for {cat:?}"
            );
        }
    }

    #[test]
    fn every_functionality_has_a_prefix() {
        let r = FunctionRegistry::with_defaults();
        for &cat in FunctionalityCategory::ALL {
            let prefix = r.root_prefix(cat);
            assert_eq!(r.bucket_root(&format!("{prefix}anything")), cat);
        }
    }

    #[test]
    fn memory_ops_are_tagged() {
        let r = FunctionRegistry::with_defaults();
        assert_eq!(r.tag_memory_op("memcpy"), Some(MemoryOp::Copy));
        assert_eq!(r.tag_memory_op("free"), Some(MemoryOp::Free));
        assert_eq!(r.tag_memory_op("operator new"), Some(MemoryOp::Allocation));
        assert_eq!(r.tag_memory_op("std::sort"), None);
        // Every memory op has at least one symbol, and each symbol also
        // tags as a Memory leaf.
        for &op in MemoryOp::ALL {
            let symbols = r.memory_symbols(op);
            assert!(!symbols.is_empty(), "{op:?}");
            for symbol in symbols {
                assert_eq!(r.tag_leaf(symbol), LeafCategory::Memory, "{symbol}");
            }
        }
    }

    #[test]
    fn leaf_symbols_round_trip_through_tagging() {
        let r = FunctionRegistry::with_defaults();
        for &cat in LeafCategory::ALL {
            for symbol in r.leaf_symbols(cat) {
                assert_eq!(r.tag_leaf(symbol), cat, "{symbol}");
            }
        }
    }
}
