//! Synthetic trace generation: stands in for sampling a production
//! microservice under live traffic.
//!
//! Each generated sample picks a functionality (Fig. 9 marginal) and a
//! leaf category (Fig. 2 marginal) from the service's profile, draws an
//! exponential cycle weight, and derives instructions from the per-leaf
//! IPC model — so the aggregation pipeline downstream must reconstruct
//! the profile's marginals and IPCs as the sample count grows.

use accelerometer_fleet::{
    CpuGeneration, FunctionalityCategory, LeafCategory, MemoryOp, ServiceId, ServiceProfile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::registry::FunctionRegistry;
use crate::trace::CallTrace;

/// Default per-leaf-category IPC used for services whose IPC the paper
/// does not report (Fig. 8 covers only Cache1). Values mirror the
/// paper's qualitative claims: kernel lowest, C libraries highest, all
/// below half the 4.0 peak.
#[must_use]
pub fn default_leaf_ipc(category: LeafCategory) -> f64 {
    match category {
        LeafCategory::Memory => 0.9,
        LeafCategory::Kernel => 0.4,
        LeafCategory::Hashing => 1.3,
        LeafCategory::Synchronization => 0.6,
        LeafCategory::Zstd => 1.3,
        LeafCategory::Math => 1.8,
        LeafCategory::Ssl => 1.2,
        LeafCategory::CLibraries => 1.6,
        LeafCategory::Miscellaneous => 1.0,
    }
}

/// IPC for a service's leaf category on a CPU generation: the service's
/// registry spec where it carries data (built-in Fig. 8 covers only
/// Cache1), everything else the default table.
#[must_use]
pub fn leaf_ipc(service: ServiceId, category: LeafCategory, generation: CpuGeneration) -> f64 {
    if let Some(scaling) = accelerometer_fleet::registry::leaf_ipc_scaling(service, category) {
        return scaling.for_generation(generation);
    }
    default_leaf_ipc(category)
}

/// The synthetic sampler.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: ServiceProfile,
    registry: FunctionRegistry,
    generation: CpuGeneration,
    mean_cycles: f64,
    rng: StdRng,
}

impl TraceGenerator {
    /// Creates a deterministic generator for a service on GenC hardware.
    #[must_use]
    pub fn new(profile: ServiceProfile, seed: u64) -> Self {
        Self {
            profile,
            registry: FunctionRegistry::with_defaults(),
            generation: CpuGeneration::GenC,
            mean_cycles: 1_000.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the CPU generation (for the IPC-scaling studies).
    #[must_use]
    pub fn on_generation(mut self, generation: CpuGeneration) -> Self {
        self.generation = generation;
        self
    }

    /// The registry the generator names functions from.
    #[must_use]
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    fn pick_weighted<C: Copy>(rng: &mut StdRng, entries: &[(C, f64)]) -> C {
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        let mut point = rng.gen_range(0.0..total);
        for (cat, w) in entries {
            if point < *w {
                return *cat;
            }
            point -= w;
        }
        entries.last().expect("non-empty breakdown").0
    }

    /// Generates one sampled call trace.
    pub fn sample(&mut self) -> CallTrace {
        let functionality: FunctionalityCategory = {
            let entries: Vec<(FunctionalityCategory, f64)> =
                self.profile.functionality.iter().collect();
            Self::pick_weighted(&mut self.rng, &entries)
        };
        let leaf_category: LeafCategory = {
            let entries: Vec<(LeafCategory, f64)> = self.profile.leaves.iter().collect();
            Self::pick_weighted(&mut self.rng, &entries)
        };

        let root = format!(
            "{}handle_request",
            self.registry.root_prefix(functionality)
        );
        // Memory leaves honor the service's Fig. 3 operation mix so the
        // analyzer can reconstruct the memory-op sub-breakdown; other
        // categories pick a representative symbol uniformly.
        let leaf = if leaf_category == LeafCategory::Memory {
            let entries: Vec<(MemoryOp, f64)> = self.profile.memory_ops.iter().collect();
            let op = Self::pick_weighted(&mut self.rng, &entries);
            let symbols = self.registry.memory_symbols(op);
            symbols[self.rng.gen_range(0..symbols.len())].to_owned()
        } else {
            let symbols = self.registry.leaf_symbols(leaf_category);
            symbols[self.rng.gen_range(0..symbols.len())].to_owned()
        };

        // A few plausible intermediate frames.
        let depth = self.rng.gen_range(1..=3);
        let mut frames = Vec::with_capacity(depth + 2);
        frames.push(root);
        for d in 0..depth {
            frames.push(format!("rpc::layer_{d}::dispatch"));
        }
        frames.push(leaf);

        // Exponential cycle weight; IPC model supplies instructions.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let cycles = -((1.0 - u).ln()) * self.mean_cycles;
        let ipc = leaf_ipc(self.profile.id, leaf_category, self.generation);
        CallTrace::new(frames, cycles, cycles * ipc)
    }

    /// Generates a batch of samples.
    pub fn generate(&mut self, samples: usize) -> Vec<CallTrace> {
        (0..samples).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer_fleet::profile;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TraceGenerator::new(profile(ServiceId::Web), 42);
        let mut b = TraceGenerator::new(profile(ServiceId::Web), 42);
        assert_eq!(a.generate(50), b.generate(50));
        let mut c = TraceGenerator::new(profile(ServiceId::Web), 43);
        assert_ne!(a.generate(50), c.generate(50));
    }

    #[test]
    fn traces_are_well_formed() {
        let mut generator = TraceGenerator::new(profile(ServiceId::Cache1), 7);
        for t in generator.generate(200) {
            assert!(t.depth() >= 3, "root + intermediate + leaf");
            assert!(t.root().starts_with("svc::"));
            assert!(t.cycles > 0.0);
            assert!(t.instructions > 0.0);
            assert!(t.ipc() < 4.0, "IPC above theoretical peak");
        }
    }

    #[test]
    fn cache1_uses_fig8_ipc() {
        assert_eq!(
            leaf_ipc(ServiceId::Cache1, LeafCategory::Kernel, CpuGeneration::GenC),
            0.38
        );
        assert_eq!(
            leaf_ipc(ServiceId::Cache1, LeafCategory::Kernel, CpuGeneration::GenA),
            0.35
        );
        // Categories Fig. 8 doesn't cover use the default table.
        assert_eq!(
            leaf_ipc(ServiceId::Cache1, LeafCategory::Math, CpuGeneration::GenC),
            default_leaf_ipc(LeafCategory::Math)
        );
        // Other services always use the default table.
        assert_eq!(
            leaf_ipc(ServiceId::Web, LeafCategory::Kernel, CpuGeneration::GenC),
            0.4
        );
    }

    #[test]
    fn default_ipc_respects_paper_ordering() {
        // Kernel is the lowest; C libraries among the highest; all below
        // half the 4.0 peak.
        for &cat in LeafCategory::ALL {
            let ipc = default_leaf_ipc(cat);
            assert!(ipc >= default_leaf_ipc(LeafCategory::Kernel));
            assert!(ipc < 2.0);
        }
    }

    #[test]
    fn generation_override() {
        let mut generator =
            TraceGenerator::new(profile(ServiceId::Cache1), 3).on_generation(CpuGeneration::GenA);
        let traces = generator.generate(100);
        assert_eq!(traces.len(), 100);
    }
}
