//! Aggregation: the downstream half of the §2.2 pipeline.
//!
//! Tags each trace's leaf, buckets each trace's root into a
//! functionality, sums cycles per category, and computes per-category
//! IPC as the ratio of aggregated instructions to aggregated cycles —
//! exactly the paper's described method ("to determine a category's IPC,
//! we determine the ratio of aggregated instruction and cycle counts for
//! functions in that category").

use std::collections::HashMap;
use std::fmt::Write as _;

use accelerometer_fleet::{Breakdown, FunctionalityCategory, LeafCategory, MemoryOp};

use crate::registry::FunctionRegistry;
use crate::trace::CallTrace;

/// The aggregated characterization of a trace sample: the profiler's
/// reconstruction of Figs. 1, 2, and 9 for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Reconstructed leaf-category breakdown (Fig. 2).
    pub leaf: Breakdown<LeafCategory>,
    /// Reconstructed functionality breakdown (Fig. 9).
    pub functionality: Breakdown<FunctionalityCategory>,
    /// Per-leaf-category IPC (aggregated instructions / cycles).
    pub leaf_ipc: Vec<(LeafCategory, f64)>,
    /// Per-functionality IPC.
    pub functionality_ipc: Vec<(FunctionalityCategory, f64)>,
    /// Reconstructed Fig. 3 sub-breakdown: each memory operation's share
    /// of *memory* cycles (empty when no memory leaves were sampled).
    pub memory_ops: Vec<(MemoryOp, f64)>,
    /// Total cycles across the sample.
    pub total_cycles: f64,
    /// Number of traces aggregated.
    pub samples: usize,
}

impl ProfileReport {
    /// The Fig. 1 split: percent of cycles in core application logic.
    #[must_use]
    pub fn core_percent(&self) -> f64 {
        self.functionality.percent_where(FunctionalityCategory::is_core)
    }

    /// The Fig. 1 split: percent of cycles in orchestration work.
    #[must_use]
    pub fn orchestration_percent(&self) -> f64 {
        100.0 - self.core_percent()
    }

    /// A memory operation's share of memory cycles (percent).
    #[must_use]
    pub fn memory_op_percent(&self, op: MemoryOp) -> f64 {
        self.memory_ops
            .iter()
            .find(|(o, _)| *o == op)
            .map_or(0.0, |(_, pct)| *pct)
    }

    /// IPC for one leaf category, if any cycles landed there.
    #[must_use]
    pub fn ipc_of(&self, category: LeafCategory) -> Option<f64> {
        self.leaf_ipc
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, ipc)| *ipc)
    }

    /// Renders the report as fixed-width text tables.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "samples: {}  total cycles: {:.0}", self.samples, self.total_cycles);
        let _ = writeln!(out, "-- functionality breakdown (Fig. 9) --");
        for (cat, pct) in self.functionality.iter() {
            let _ = writeln!(out, "{:<28} {:>5.1}%", cat.to_string(), pct);
        }
        let _ = writeln!(out, "-- leaf breakdown (Fig. 2) --");
        for (cat, pct) in self.leaf.iter() {
            let _ = writeln!(out, "{:<28} {:>5.1}%", cat.to_string(), pct);
        }
        let _ = writeln!(
            out,
            "core {:.1}% vs orchestration {:.1}% (Fig. 1)",
            self.core_percent(),
            self.orchestration_percent()
        );
        out
    }
}

/// Aggregates a trace sample into a [`ProfileReport`].
///
/// # Panics
///
/// Panics if `traces` is empty — there is nothing to characterize.
#[must_use]
pub fn analyze(traces: &[CallTrace], registry: &FunctionRegistry) -> ProfileReport {
    assert!(!traces.is_empty(), "cannot analyze an empty trace sample");
    let mut leaf_cycles: HashMap<LeafCategory, (f64, f64)> = HashMap::new();
    let mut func_cycles: HashMap<FunctionalityCategory, (f64, f64)> = HashMap::new();
    let mut memory_op_cycles: HashMap<MemoryOp, f64> = HashMap::new();
    let mut total_cycles = 0.0;

    for trace in traces {
        let leaf = registry.tag_leaf(trace.leaf());
        let functionality = registry.bucket_root(trace.root());
        let l = leaf_cycles.entry(leaf).or_insert((0.0, 0.0));
        l.0 += trace.cycles;
        l.1 += trace.instructions;
        let f = func_cycles.entry(functionality).or_insert((0.0, 0.0));
        f.0 += trace.cycles;
        f.1 += trace.instructions;
        if let Some(op) = registry.tag_memory_op(trace.leaf()) {
            *memory_op_cycles.entry(op).or_insert(0.0) += trace.cycles;
        }
        total_cycles += trace.cycles;
    }

    let leaf_entries: Vec<(LeafCategory, f64)> = LeafCategory::ALL
        .iter()
        .filter_map(|&c| leaf_cycles.get(&c).map(|(cy, _)| (c, 100.0 * cy / total_cycles)))
        .collect();
    let func_entries: Vec<(FunctionalityCategory, f64)> = FunctionalityCategory::ALL
        .iter()
        .filter_map(|&c| func_cycles.get(&c).map(|(cy, _)| (c, 100.0 * cy / total_cycles)))
        .collect();
    let leaf_ipc = LeafCategory::ALL
        .iter()
        .filter_map(|&c| leaf_cycles.get(&c).map(|(cy, ins)| (c, ins / cy)))
        .collect();
    let functionality_ipc = FunctionalityCategory::ALL
        .iter()
        .filter_map(|&c| func_cycles.get(&c).map(|(cy, ins)| (c, ins / cy)))
        .collect();
    let memory_total: f64 = memory_op_cycles.values().sum();
    let memory_ops = if memory_total > 0.0 {
        MemoryOp::ALL
            .iter()
            .filter_map(|&op| {
                memory_op_cycles
                    .get(&op)
                    .map(|cy| (op, 100.0 * cy / memory_total))
            })
            .collect()
    } else {
        Vec::new()
    };

    ProfileReport {
        leaf: Breakdown::complete(leaf_entries).expect("cycle shares sum to 100"),
        functionality: Breakdown::complete(func_entries).expect("cycle shares sum to 100"),
        leaf_ipc,
        functionality_ipc,
        memory_ops,
        total_cycles,
        samples: traces.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> FunctionRegistry {
        FunctionRegistry::with_defaults()
    }

    fn trace(root: &str, leaf: &str, cycles: f64, ipc: f64) -> CallTrace {
        CallTrace::new(
            vec![root.to_owned(), "mid".to_owned(), leaf.to_owned()],
            cycles,
            cycles * ipc,
        )
    }

    #[test]
    fn aggregates_cycles_by_category() {
        let traces = vec![
            trace("svc::io::send", "memcpy", 600.0, 0.9),
            trace("svc::app::serve", "std::sort", 300.0, 1.6),
            trace("svc::app::serve", "memcpy", 100.0, 0.9),
        ];
        let report = analyze(&traces, &registry());
        assert_eq!(report.samples, 3);
        assert_eq!(report.total_cycles, 1000.0);
        assert_eq!(report.leaf.percent(LeafCategory::Memory), 70.0);
        assert_eq!(report.leaf.percent(LeafCategory::CLibraries), 30.0);
        assert_eq!(
            report.functionality.percent(FunctionalityCategory::SecureInsecureIo),
            60.0
        );
        assert_eq!(
            report.functionality.percent(FunctionalityCategory::ApplicationLogic),
            40.0
        );
    }

    #[test]
    fn ipc_is_aggregate_ratio_not_mean_of_ratios() {
        // Two memory traces with different IPCs: the category IPC must be
        // Σinstr/Σcycles, weighted by cycles.
        let traces = vec![
            trace("svc::app::x", "memcpy", 900.0, 1.0),
            trace("svc::app::x", "memset", 100.0, 0.0),
        ];
        let report = analyze(&traces, &registry());
        let ipc = report.ipc_of(LeafCategory::Memory).unwrap();
        assert!((ipc - 0.9).abs() < 1e-12);
        assert!(report.ipc_of(LeafCategory::Ssl).is_none());
    }

    #[test]
    fn memory_op_sub_breakdown() {
        let traces = vec![
            trace("svc::app::x", "memcpy", 540.0, 1.0),
            trace("svc::app::x", "free", 180.0, 1.0),
            trace("svc::app::x", "malloc", 210.0, 1.0),
            trace("svc::app::x", "memset", 70.0, 1.0),
            trace("svc::io::y", "tcp_sendmsg", 1_000.0, 0.4),
        ];
        let report = analyze(&traces, &registry());
        // Shares are of *memory* cycles (1,000 total), not total cycles.
        assert!((report.memory_op_percent(MemoryOp::Copy) - 54.0).abs() < 1e-9);
        assert!((report.memory_op_percent(MemoryOp::Free) - 18.0).abs() < 1e-9);
        assert!((report.memory_op_percent(MemoryOp::Allocation) - 21.0).abs() < 1e-9);
        assert!((report.memory_op_percent(MemoryOp::Set) - 7.0).abs() < 1e-9);
        assert_eq!(report.memory_op_percent(MemoryOp::Move), 0.0);
        // No memory samples → empty sub-breakdown.
        let io_only = analyze(&[trace("svc::io::y", "tcp_sendmsg", 10.0, 0.4)], &registry());
        assert!(io_only.memory_ops.is_empty());
    }

    #[test]
    fn core_vs_orchestration_split() {
        let traces = vec![
            trace("svc::app::serve", "std::sort", 18.0, 1.0),
            trace("svc::log::update", "memcpy", 23.0, 1.0),
            trace("svc::io::send", "tcp_sendmsg", 59.0, 1.0),
        ];
        let report = analyze(&traces, &registry());
        assert!((report.core_percent() - 18.0).abs() < 1e-9);
        assert!((report.orchestration_percent() - 82.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_symbols_become_miscellaneous() {
        let traces = vec![trace("main", "mystery_fn", 100.0, 1.0)];
        let report = analyze(&traces, &registry());
        assert_eq!(report.leaf.percent(LeafCategory::Miscellaneous), 100.0);
        assert_eq!(
            report.functionality.percent(FunctionalityCategory::Miscellaneous),
            100.0
        );
    }

    #[test]
    fn render_is_human_readable() {
        let traces = vec![trace("svc::app::serve", "memcpy", 100.0, 1.0)];
        let text = analyze(&traces, &registry()).render();
        assert!(text.contains("functionality breakdown"));
        assert!(text.contains("Memory"));
        assert!(text.contains("core"));
    }

    #[test]
    #[should_panic(expected = "empty trace sample")]
    fn empty_sample_panics() {
        let _ = analyze(&[], &registry());
    }
}
