//! # accelerometer-profiler
//!
//! A synthetic reconstruction of the paper's characterization pipeline
//! (§2.2): Strobelight-style call-trace sampling, the internal tagging
//! tool that classifies leaf functions (Table 2), the bucketer that
//! pools call traces into microservice functionalities (Table 3), and
//! the aggregator that produces cycle breakdowns and per-category IPC.
//!
//! Production traffic is replaced by a [`generate::TraceGenerator`]
//! driven by the calibrated service profiles in `accelerometer-fleet`;
//! the statistical contract — tested in this crate's integration suite —
//! is that analyzing a large generated sample reconstructs the ground-
//! truth profile's marginals and IPC tables.
//!
//! ```
//! use accelerometer_fleet::{profile, ServiceId};
//! use accelerometer_profiler::{analyze, TraceGenerator};
//!
//! let mut sampler = TraceGenerator::new(profile(ServiceId::Web), 42);
//! let traces = sampler.generate(2_000);
//! let report = analyze(&traces, sampler.registry());
//! // Web's orchestration share dominates (Fig. 1).
//! assert!(report.orchestration_percent() > 60.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod diff;
pub mod fold;
pub mod generate;
pub mod registry;
pub mod trace;

pub use analyze::{analyze, ProfileReport};
pub use diff::{diff, DiffRow, ReportDiff};
pub use fold::{from_folded, to_folded};
pub use generate::{default_leaf_ipc, leaf_ipc, TraceGenerator};
pub use registry::FunctionRegistry;
pub use trace::CallTrace;
