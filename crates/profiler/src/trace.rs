//! Call traces: what Strobelight collects (§2.2 — "a function call trace
//! can be composed of a function sequence starting with cloning a thread
//! and ending with a leaf function such as memcpy()"), annotated with the
//! cycles and instructions the sampler attributed to it.

use serde::{Deserialize, Serialize};

/// A sampled call trace with its cycle and instruction attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallTrace {
    /// Stack frames from root (index 0) to leaf (last).
    pub frames: Vec<String>,
    /// Cycles attributed to this trace.
    pub cycles: f64,
    /// Instructions retired while in this trace.
    pub instructions: f64,
}

impl CallTrace {
    /// Creates a trace; `frames` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame list — a sample always has at least the
    /// leaf frame.
    #[must_use]
    pub fn new(frames: Vec<String>, cycles: f64, instructions: f64) -> Self {
        assert!(!frames.is_empty(), "a call trace needs at least one frame");
        Self {
            frames,
            cycles,
            instructions,
        }
    }

    /// The root frame (outermost caller).
    #[must_use]
    pub fn root(&self) -> &str {
        &self.frames[0]
    }

    /// The leaf frame (innermost function), the one the leaf tagger
    /// classifies.
    #[must_use]
    pub fn leaf(&self) -> &str {
        self.frames.last().expect("non-empty by construction")
    }

    /// Instructions per cycle for this trace.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions / self.cycles
        }
    }

    /// Stack depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> CallTrace {
        CallTrace::new(
            vec![
                "svc::io::secure_send".into(),
                "folly::AsyncSocket::write".into(),
                "memcpy".into(),
            ],
            1000.0,
            450.0,
        )
    }

    #[test]
    fn accessors() {
        let t = trace();
        assert_eq!(t.root(), "svc::io::secure_send");
        assert_eq!(t.leaf(), "memcpy");
        assert_eq!(t.depth(), 3);
        assert!((t.ipc() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn single_frame_trace_is_its_own_leaf() {
        let t = CallTrace::new(vec!["memcpy".into()], 10.0, 5.0);
        assert_eq!(t.root(), t.leaf());
    }

    #[test]
    fn zero_cycle_trace_has_zero_ipc() {
        let t = CallTrace::new(vec!["x".into()], 0.0, 5.0);
        assert_eq!(t.ipc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_traces_rejected() {
        let _ = CallTrace::new(vec![], 1.0, 1.0);
    }
}
