//! Collapsed-stack export: writes trace samples in the standard
//! "folded" format (`frame;frame;leaf count`) consumed by flamegraph
//! tooling — the visualization Strobelight-style profiles usually end up
//! in.

use std::collections::BTreeMap;

use crate::trace::CallTrace;

/// Collapses traces into folded-stack lines, merging identical stacks
/// and weighting each by its cycle count (rounded to whole cycles).
/// Lines are emitted in lexicographic stack order for determinism.
#[must_use]
pub fn to_folded(traces: &[CallTrace]) -> String {
    let mut stacks: BTreeMap<String, f64> = BTreeMap::new();
    for trace in traces {
        let stack = trace.frames.join(";");
        *stacks.entry(stack).or_insert(0.0) += trace.cycles;
    }
    let mut out = String::new();
    for (stack, cycles) in stacks {
        let weight = cycles.round() as u64;
        if weight > 0 {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
    }
    out
}

/// Parses folded-stack lines back into traces (cycle-weighted, with
/// instructions unknown and set to zero). Lines that do not end in a
/// positive integer weight are skipped.
#[must_use]
pub fn from_folded(folded: &str) -> Vec<CallTrace> {
    folded
        .lines()
        .filter_map(|line| {
            let (stack, weight) = line.rsplit_once(' ')?;
            let cycles: u64 = weight.parse().ok()?;
            if stack.is_empty() || cycles == 0 {
                return None;
            }
            let frames: Vec<String> = stack.split(';').map(str::to_owned).collect();
            if frames.iter().any(String::is_empty) {
                return None; // malformed stack with empty frames
            }
            Some(CallTrace::new(frames, cycles as f64, 0.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(frames: &[&str], cycles: f64) -> CallTrace {
        CallTrace::new(frames.iter().map(|f| (*f).to_owned()).collect(), cycles, 0.0)
    }

    #[test]
    fn folds_and_merges_identical_stacks() {
        let traces = vec![
            trace(&["svc::io::send", "memcpy"], 100.0),
            trace(&["svc::io::send", "memcpy"], 50.0),
            trace(&["svc::app::serve", "std::sort"], 30.0),
        ];
        let folded = to_folded(&traces);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"svc::io::send;memcpy 150"));
        assert!(lines.contains(&"svc::app::serve;std::sort 30"));
    }

    #[test]
    fn round_trips_through_parse() {
        let traces = vec![
            trace(&["a", "b", "c"], 10.0),
            trace(&["a", "d"], 5.0),
        ];
        let parsed = from_folded(&to_folded(&traces));
        assert_eq!(parsed.len(), 2);
        let total: f64 = parsed.iter().map(|t| t.cycles).sum();
        assert_eq!(total, 15.0);
        assert!(parsed.iter().any(|t| t.leaf() == "c" && t.depth() == 3));
    }

    #[test]
    fn parser_skips_malformed_lines() {
        let parsed = from_folded("a;b ten\nvalid;stack 5\n\nnope\n;empty 3\nzero;w 0\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].frames, vec!["valid", "stack"]);
    }

    #[test]
    fn zero_weight_stacks_are_elided() {
        let folded = to_folded(&[trace(&["a"], 0.2)]);
        assert!(folded.is_empty());
    }

    #[test]
    fn generated_traces_export_cleanly() {
        use accelerometer_fleet::{profile, ServiceId};
        let mut generator = crate::TraceGenerator::new(profile(ServiceId::Cache1), 5);
        let traces = generator.generate(500);
        let folded = to_folded(&traces);
        assert!(folded.lines().count() > 50);
        // Every line is "stack weight".
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("separator");
            assert!(stack.contains(';'));
            assert!(weight.parse::<u64>().is_ok(), "{line}");
        }
        // And the export parses back to the same total cycles (rounded).
        let parsed = from_folded(&folded);
        let exported: f64 = parsed.iter().map(|t| t.cycles).sum();
        let original: f64 = traces.iter().map(|t| t.cycles).sum();
        assert!((exported - original).abs() < traces.len() as f64);
    }
}
