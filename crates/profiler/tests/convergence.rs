//! Statistical convergence tests: analyzing a large generated sample must
//! reconstruct the ground-truth service profile — the end-to-end contract
//! of the synthetic characterization pipeline.

use accelerometer_fleet::ipc::cache1_leaf_ipc;
use accelerometer_fleet::{profile, FunctionalityCategory, LeafCategory, ServiceId};
use accelerometer_profiler::{analyze, TraceGenerator};

const SAMPLES: usize = 120_000;
const TOLERANCE_POINTS: f64 = 1.0;

fn reconstruct(service: ServiceId, seed: u64) -> accelerometer_profiler::ProfileReport {
    let mut generator = TraceGenerator::new(profile(service), seed);
    let traces = generator.generate(SAMPLES);
    analyze(&traces, generator.registry())
}

#[test]
fn web_breakdowns_converge_to_ground_truth() {
    let truth = profile(ServiceId::Web);
    let report = reconstruct(ServiceId::Web, 1);
    for &cat in FunctionalityCategory::ALL {
        let got = report.functionality.percent(cat);
        let want = truth.functionality.percent(cat);
        assert!(
            (got - want).abs() < TOLERANCE_POINTS,
            "{cat}: reconstructed {got:.2}% vs truth {want:.2}%"
        );
    }
    for &cat in LeafCategory::ALL {
        let got = report.leaf.percent(cat);
        let want = truth.leaves.percent(cat);
        assert!(
            (got - want).abs() < TOLERANCE_POINTS,
            "{cat}: reconstructed {got:.2}% vs truth {want:.2}%"
        );
    }
    // The headline Fig. 1 numbers survive the pipeline.
    assert!((report.core_percent() - 18.0).abs() < TOLERANCE_POINTS);
    assert!(
        (report.functionality.percent(FunctionalityCategory::Logging) - 23.0).abs()
            < TOLERANCE_POINTS
    );
}

#[test]
fn every_characterized_service_converges() {
    for (i, &service) in ServiceId::CHARACTERIZED.iter().enumerate() {
        let truth = profile(service);
        let report = reconstruct(service, 100 + i as u64);
        // Dominant functionality must match, and its share must agree.
        let (want_cat, want_pct) = truth.functionality.dominant().unwrap();
        let got_pct = report.functionality.percent(want_cat);
        assert!(
            (got_pct - want_pct).abs() < TOLERANCE_POINTS,
            "{service}: dominant {want_cat} reconstructed {got_pct:.2}% vs {want_pct:.2}%"
        );
        // Orchestration share agrees.
        assert!(
            (report.orchestration_percent() - truth.orchestration_percent()).abs()
                < TOLERANCE_POINTS,
            "{service} orchestration"
        );
    }
}

#[test]
fn cache1_ipc_reconstruction_matches_fig8() {
    let report = reconstruct(ServiceId::Cache1, 7);
    for cat in [
        LeafCategory::Memory,
        LeafCategory::Kernel,
        LeafCategory::Zstd,
        LeafCategory::Ssl,
        LeafCategory::CLibraries,
    ] {
        let want = cache1_leaf_ipc(cat).unwrap().gen_c;
        let got = report.ipc_of(cat).unwrap();
        assert!(
            (got - want).abs() < 0.02,
            "{cat}: reconstructed IPC {got:.3} vs Fig. 8 {want:.3}"
        );
    }
}

#[test]
fn ipc_scaling_across_generations_survives_pipeline() {
    use accelerometer_fleet::CpuGeneration;
    let mut per_gen = Vec::new();
    for generation in CpuGeneration::ALL {
        let mut generator =
            TraceGenerator::new(profile(ServiceId::Cache1), 11).on_generation(generation);
        let traces = generator.generate(SAMPLES / 2);
        let report = analyze(&traces, generator.registry());
        per_gen.push(report.ipc_of(LeafCategory::Kernel).unwrap());
    }
    // Fig. 8: kernel IPC is low and scales poorly across generations.
    assert!(per_gen[0] < 0.5);
    assert!(per_gen[2] / per_gen[0] < 1.15, "kernel IPC scaled too well");
}

#[test]
fn seeds_change_samples_but_not_statistics() {
    let a = reconstruct(ServiceId::Feed1, 1000);
    let b = reconstruct(ServiceId::Feed1, 2000);
    for &cat in FunctionalityCategory::ALL {
        assert!(
            (a.functionality.percent(cat) - b.functionality.percent(cat)).abs()
                < 2.0 * TOLERANCE_POINTS,
            "{cat} unstable across seeds"
        );
    }
}

#[test]
fn ads1_memory_op_mix_converges_to_fig3() {
    use accelerometer_fleet::MemoryOp;
    let truth = profile(ServiceId::Ads1);
    let report = reconstruct(ServiceId::Ads1, 55);
    for &op in MemoryOp::ALL {
        let got = report.memory_op_percent(op);
        let want = truth.memory_ops.percent(op);
        assert!(
            (got - want).abs() < 2.0,
            "{op}: reconstructed {got:.2}% vs Fig. 3 {want:.2}%"
        );
    }
    // The copy share that pins Table 7's α = 0.1512 survives the
    // sampling pipeline.
    assert!((report.memory_op_percent(MemoryOp::Copy) - 54.0).abs() < 2.0);
}
