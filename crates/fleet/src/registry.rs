//! Data-driven service profiles: the serde schema, the JSON loader, and
//! the process-wide active registry.
//!
//! A [`ServiceSpec`] packages everything the runners know about one
//! service — the characterization profile (breakdowns, rates, platform),
//! the Fig. 21/22 granularity CDFs, the Fig. 8/10 IPC tables, and any
//! Table 6 case studies or Fig. 20 recommendations the service anchors —
//! as pure data. The Rust constructors under `services/`, `cdf`, `ipc`,
//! and `params` are the *exporters*: [`builtin_spec`] assembles their
//! output, and the committed files under `configs/services/` are
//! generated from it (`accelctl services export`).
//!
//! [`ServiceRegistry::load_path`] parses and *re-validates* JSON specs
//! (serde derives bypass the constructors' invariants, so every
//! breakdown, CDF, IPC value, and rate is checked again on load),
//! returning a structured [`FleetError`] instead of panicking on
//! malformed data. Installing a registry via [`set_active_registry`]
//! (the CLI's `--services` flag) reroutes [`crate::services::profile`],
//! [`crate::params::all_case_studies`],
//! [`crate::params::all_recommendations`], and the granularity/IPC
//! lookups through the loaded data — byte-identically to the built-in
//! path for unmodified files, which the golden equivalence suite pins.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

use accelerometer::{GranularityCdf, ModelError};
use serde::{Deserialize, Serialize};

use crate::breakdown::Breakdown;
use crate::categories::{FunctionalityCategory, LeafCategory};
use crate::cdf;
use crate::ipc::{self, IpcScaling};
use crate::params::{self, CaseStudy, Recommendation};
use crate::services::{self, ServiceId, ServiceProfile};

/// The JSON schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// Structured errors for loading and validating service-profile data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// A file or directory could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A file was not valid JSON for the [`ServiceSpec`] schema.
    Parse {
        /// The offending path.
        path: String,
        /// The parser's error message.
        message: String,
    },
    /// The spec declares a schema version this build does not read.
    UnsupportedSchema {
        /// The version found in the file.
        found: u32,
    },
    /// A file's stem does not match the `id` of the profile it holds.
    FilenameMismatch {
        /// The offending path.
        path: String,
        /// The slug the file name must use.
        expected: String,
    },
    /// The same service was loaded twice.
    DuplicateService {
        /// The service loaded more than once.
        service: ServiceId,
    },
    /// A directory passed to the loader holds no `.json` files.
    EmptyDir {
        /// The offending path.
        path: String,
    },
    /// A breakdown does not sum to ~100% (or claims an incomplete sum).
    BreakdownTotal {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which breakdown field failed.
        field: &'static str,
        /// The sum that was found.
        total: f64,
    },
    /// A breakdown entry is invalid (non-finite/non-positive percent or
    /// a duplicated category).
    BreakdownEntry {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which breakdown field failed.
        field: &'static str,
        /// The constructor's rejection reason.
        reason: String,
    },
    /// A granularity CDF has no points.
    EmptyCdf {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which CDF field failed.
        field: &'static str,
    },
    /// A granularity CDF is non-monotone (byte bounds not strictly
    /// increasing, fractions decreasing or outside `[0, 1]`, or a final
    /// fraction that is not 1).
    NonMonotoneCdf {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which CDF field failed.
        field: &'static str,
        /// The first offending knot index.
        index: usize,
    },
    /// An IPC value is not strictly positive and finite.
    NegativeIpc {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// The category carrying the bad value.
        category: String,
        /// The value found.
        value: f64,
    },
    /// A rate is negative, non-finite, or a zero host-cycle budget.
    NegativeRate {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which rate field failed.
        field: &'static str,
        /// The value found.
        value: f64,
    },
    /// A model parameter embedded in a case study or recommendation is
    /// out of its valid range.
    InvalidModelParam {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// Which parameter failed.
        field: &'static str,
        /// The value found.
        value: f64,
    },
    /// An embedded case study or recommendation names a different
    /// service than the spec it rides in.
    ForeignEntry {
        /// The service whose spec is malformed.
        service: ServiceId,
        /// The entry kind ("case study" or "recommendation").
        field: &'static str,
        /// The service the entry claims.
        found: ServiceId,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io { path, message } => write!(f, "cannot access {path}: {message}"),
            FleetError::Parse { path, message } => {
                write!(f, "invalid service spec {path}: {message}")
            }
            FleetError::UnsupportedSchema { found } => write!(
                f,
                "unsupported service-spec schema version {found} (this build reads {SCHEMA_VERSION})"
            ),
            FleetError::FilenameMismatch { path, expected } => write!(
                f,
                "service spec {path} must be named {expected}.json to match its profile id"
            ),
            FleetError::DuplicateService { service } => {
                write!(f, "service {service} loaded more than once")
            }
            FleetError::EmptyDir { path } => {
                write!(f, "service directory {path} holds no .json files")
            }
            FleetError::BreakdownTotal { service, field, total } => write!(
                f,
                "{service}: {field} breakdown must sum to ~100%, got {total}"
            ),
            FleetError::BreakdownEntry { service, field, reason } => {
                write!(f, "{service}: {field} breakdown is invalid: {reason}")
            }
            FleetError::EmptyCdf { service, field } => {
                write!(f, "{service}: {field} granularity CDF has no points")
            }
            FleetError::NonMonotoneCdf { service, field, index } => write!(
                f,
                "{service}: {field} granularity CDF is non-monotone at knot {index}"
            ),
            FleetError::NegativeIpc { service, category, value } => write!(
                f,
                "{service}: IPC for {category} must be positive and finite, got {value}"
            ),
            FleetError::NegativeRate { service, field, value } => write!(
                f,
                "{service}: rate {field} must be non-negative and finite, got {value}"
            ),
            FleetError::InvalidModelParam { service, field, value } => write!(
                f,
                "{service}: model parameter {field} is out of range, got {value}"
            ),
            FleetError::ForeignEntry { service, field, found } => write!(
                f,
                "{service}: embedded {field} belongs to {found}, not to this spec"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Per-service IPC-scaling tables (Figs. 8 and 10 for Cache1; empty for
/// services the paper does not cover).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IpcTable {
    /// Leaf-category IPC across the three CPU generations.
    #[serde(default)]
    pub leaves: Vec<(LeafCategory, IpcScaling)>,
    /// Functionality-category IPC across the three CPU generations.
    #[serde(default)]
    pub functionality: Vec<(FunctionalityCategory, IpcScaling)>,
}

/// One Table 6 case study riding in a service spec, with its global row
/// order (Table 6 row order spans services, so the position cannot be
/// derived from the service iteration order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyEntry {
    /// Global Table 6 row index.
    pub order: u32,
    /// The case study itself.
    pub study: CaseStudy,
}

/// One Fig. 20 recommendation riding in a service spec, with its global
/// presentation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationEntry {
    /// Global Fig. 20 presentation index.
    pub order: u32,
    /// The recommendation itself.
    pub recommendation: Recommendation,
}

/// Everything the runners know about one service, as pure data: the
/// schema of one `configs/services/<slug>.json` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// The characterization profile (breakdowns, rates, platform).
    pub profile: ServiceProfile,
    /// Fig. 21: the memory-copy granularity CDF.
    pub copy_granularity: GranularityCdf,
    /// Fig. 22: the memory-allocation granularity CDF.
    pub allocation_granularity: GranularityCdf,
    /// Figs. 8/10: IPC-scaling tables, where the data exists.
    #[serde(default)]
    pub ipc: Option<IpcTable>,
    /// Table 6 case studies anchored on this service.
    #[serde(default)]
    pub case_studies: Vec<CaseStudyEntry>,
    /// Fig. 20 recommendations anchored on this service.
    #[serde(default)]
    pub recommendations: Vec<RecommendationEntry>,
}

fn check_breakdown<C: Copy + PartialEq>(
    service: ServiceId,
    field: &'static str,
    b: &Breakdown<C>,
) -> Result<(), FleetError> {
    if !b.is_complete() {
        return Err(FleetError::BreakdownTotal {
            service,
            field,
            total: b.total_percent(),
        });
    }
    // Re-run the constructor invariants the serde derive bypassed.
    Breakdown::complete(b.iter().collect()).map_err(|e| match e {
        crate::breakdown::BreakdownError::BadTotal { total } => {
            FleetError::BreakdownTotal { service, field, total }
        }
        other => FleetError::BreakdownEntry {
            service,
            field,
            reason: other.to_string(),
        },
    })?;
    Ok(())
}

fn check_cdf(
    service: ServiceId,
    field: &'static str,
    cdf: &GranularityCdf,
) -> Result<(), FleetError> {
    GranularityCdf::from_points(cdf.points().to_vec()).map_err(|e| match e {
        ModelError::EmptyDistribution => FleetError::EmptyCdf { service, field },
        ModelError::NonMonotonicCdf { index } => {
            FleetError::NonMonotoneCdf { service, field, index }
        }
        other => FleetError::Parse {
            path: format!("{service}/{field}"),
            message: other.to_string(),
        },
    })?;
    Ok(())
}

fn check_ipc_scaling(
    service: ServiceId,
    category: &dyn fmt::Display,
    scaling: IpcScaling,
) -> Result<(), FleetError> {
    for value in [scaling.gen_a, scaling.gen_b, scaling.gen_c] {
        if !(value.is_finite() && value > 0.0) {
            return Err(FleetError::NegativeIpc {
                service,
                category: category.to_string(),
                value,
            });
        }
    }
    Ok(())
}

fn check_rate(
    service: ServiceId,
    field: &'static str,
    value: f64,
) -> Result<(), FleetError> {
    if !(value.is_finite() && value >= 0.0) {
        return Err(FleetError::NegativeRate { service, field, value });
    }
    Ok(())
}

fn check_param(
    service: ServiceId,
    field: &'static str,
    value: f64,
    ok: bool,
) -> Result<(), FleetError> {
    if value.is_finite() && ok {
        Ok(())
    } else {
        Err(FleetError::InvalidModelParam { service, field, value })
    }
}

impl ServiceSpec {
    /// Re-validates everything the serde derives let through unchecked.
    ///
    /// # Errors
    ///
    /// One [`FleetError`] variant per rejection reason: breakdowns that
    /// do not sum to ~100% or carry invalid entries, empty or
    /// non-monotone granularity CDFs, non-positive IPC values, negative
    /// rates, out-of-range embedded model parameters, entries that name
    /// a different service, and unsupported schema versions.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.schema != SCHEMA_VERSION {
            return Err(FleetError::UnsupportedSchema { found: self.schema });
        }
        let id = self.profile.id;
        let p = &self.profile;
        check_breakdown(id, "functionality", &p.functionality)?;
        check_breakdown(id, "leaves", &p.leaves)?;
        check_breakdown(id, "memory_ops", &p.memory_ops)?;
        check_breakdown(id, "copy_origins", &p.copy_origins)?;
        check_breakdown(id, "kernel_ops", &p.kernel_ops)?;
        check_breakdown(id, "sync_ops", &p.sync_ops)?;
        check_breakdown(id, "clib_ops", &p.clib_ops)?;
        check_rate(id, "compressions_per_second", p.rates.compressions_per_second)?;
        check_rate(id, "copies_per_second", p.rates.copies_per_second)?;
        check_rate(id, "allocations_per_second", p.rates.allocations_per_second)?;
        check_rate(id, "encryptions_per_second", p.rates.encryptions_per_second)?;
        let cycles = p.rates.host_cycles_per_second;
        if !(cycles.is_finite() && cycles > 0.0) {
            return Err(FleetError::NegativeRate {
                service: id,
                field: "host_cycles_per_second",
                value: cycles,
            });
        }
        check_cdf(id, "copy_granularity", &self.copy_granularity)?;
        check_cdf(id, "allocation_granularity", &self.allocation_granularity)?;
        if let Some(table) = &self.ipc {
            for (category, scaling) in &table.leaves {
                check_ipc_scaling(id, category, *scaling)?;
            }
            for (category, scaling) in &table.functionality {
                check_ipc_scaling(id, category, *scaling)?;
            }
        }
        for entry in &self.case_studies {
            let study = &entry.study;
            if study.service != id {
                return Err(FleetError::ForeignEntry {
                    service: id,
                    field: "case study",
                    found: study.service,
                });
            }
            if let Some(g) = &study.granularity {
                check_cdf(id, "case_study.granularity", g)?;
            }
            let params = &study.scenario.params;
            check_param(id, "case_study.host_cycles", params.host_cycles().get(),
                params.host_cycles().get() > 0.0)?;
            let alpha = params.kernel_fraction();
            check_param(id, "case_study.kernel_fraction", alpha, alpha > 0.0 && alpha < 1.0)?;
            check_param(id, "case_study.offloads", params.offloads(), params.offloads() >= 0.0)?;
            check_param(id, "case_study.peak_speedup", params.peak_speedup(),
                params.peak_speedup() > 0.0)?;
            check_param(id, "case_study.cycles_per_byte", study.cycles_per_byte,
                study.cycles_per_byte > 0.0)?;
        }
        for entry in &self.recommendations {
            let rec = &entry.recommendation;
            if rec.service != id {
                return Err(FleetError::ForeignEntry {
                    service: id,
                    field: "recommendation",
                    found: rec.service,
                });
            }
            check_cdf(id, "recommendation.granularity", &rec.profile.granularity)?;
            let alpha = rec.profile.kernel_fraction;
            check_param(id, "recommendation.kernel_fraction", alpha, alpha > 0.0 && alpha < 1.0)?;
            check_param(id, "recommendation.total_offloads", rec.profile.total_offloads,
                rec.profile.total_offloads >= 0.0)?;
            for cfg in &rec.configs {
                check_param(id, "recommendation.peak_speedup", cfg.accelerator.peak_speedup,
                    cfg.accelerator.peak_speedup > 0.0)?;
            }
        }
        Ok(())
    }
}

fn builtin_ipc(id: ServiceId) -> Option<IpcTable> {
    if id != ServiceId::Cache1 {
        return None;
    }
    Some(IpcTable {
        leaves: LeafCategory::ALL
            .iter()
            .filter_map(|&c| ipc::cache1_leaf_ipc(c).map(|s| (c, s)))
            .collect(),
        functionality: FunctionalityCategory::ALL
            .iter()
            .filter_map(|&c| ipc::cache1_functionality_ipc(c).map(|s| (c, s)))
            .collect(),
    })
}

/// Assembles the built-in [`ServiceSpec`] for a service from the Rust
/// constructors — the exporter behind `accelctl services export` and
/// the committed `configs/services/` files.
#[must_use]
pub fn builtin_spec(id: ServiceId) -> ServiceSpec {
    ServiceSpec {
        schema: SCHEMA_VERSION,
        profile: services::profile_data(id),
        copy_granularity: cdf::memory_copy_data(id),
        allocation_granularity: cdf::memory_allocation_data(id),
        ipc: builtin_ipc(id),
        case_studies: params::builtin_case_studies()
            .into_iter()
            .enumerate()
            .filter(|(_, s)| s.service == id)
            .map(|(i, study)| CaseStudyEntry {
                order: u32::try_from(i).expect("few case studies"),
                study,
            })
            .collect(),
        recommendations: params::builtin_recommendations()
            .into_iter()
            .enumerate()
            .filter(|(_, r)| r.service == id)
            .map(|(i, recommendation)| RecommendationEntry {
                order: u32::try_from(i).expect("few recommendations"),
                recommendation,
            })
            .collect(),
    }
}

/// A full set of service specs, keyed by [`ServiceId`], loadable from
/// JSON files and installable process-wide via [`set_active_registry`].
#[derive(Debug, Clone)]
pub struct ServiceRegistry {
    /// Specs in [`ServiceId::ALL`] order.
    specs: Vec<ServiceSpec>,
    /// Services whose spec came from a loaded file (the rest fall back
    /// to the built-in constructors).
    loaded: Vec<ServiceId>,
}

fn index_of(id: ServiceId) -> usize {
    ServiceId::ALL
        .iter()
        .position(|&s| s == id)
        .expect("every ServiceId appears in ALL")
}

impl ServiceRegistry {
    /// The registry holding every built-in spec (no files loaded).
    #[must_use]
    pub fn builtin() -> Self {
        ServiceRegistry {
            specs: ServiceId::ALL.iter().map(|&id| builtin_spec(id)).collect(),
            loaded: Vec::new(),
        }
    }

    /// The spec for a service.
    #[must_use]
    pub fn spec(&self, id: ServiceId) -> &ServiceSpec {
        &self.specs[index_of(id)]
    }

    /// The characterization profile for a service.
    #[must_use]
    pub fn profile(&self, id: ServiceId) -> ServiceProfile {
        self.spec(id).profile.clone()
    }

    /// Leaf-category IPC scaling for a service, where its spec has data.
    #[must_use]
    pub fn leaf_ipc(&self, id: ServiceId, category: LeafCategory) -> Option<IpcScaling> {
        self.spec(id)
            .ipc
            .as_ref()?
            .leaves
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, s)| *s)
    }

    /// Functionality-category IPC scaling for a service, where its spec
    /// has data.
    #[must_use]
    pub fn functionality_ipc(
        &self,
        id: ServiceId,
        category: FunctionalityCategory,
    ) -> Option<IpcScaling> {
        self.spec(id)
            .ipc
            .as_ref()?
            .functionality
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, s)| *s)
    }

    /// Every case study across all specs, in global (Table 6 row) order.
    #[must_use]
    pub fn case_studies(&self) -> Vec<CaseStudy> {
        let mut entries: Vec<&CaseStudyEntry> =
            self.specs.iter().flat_map(|s| &s.case_studies).collect();
        entries.sort_by_key(|e| e.order);
        entries.into_iter().map(|e| e.study.clone()).collect()
    }

    /// Every recommendation across all specs, in global (Fig. 20) order.
    #[must_use]
    pub fn recommendations(&self) -> Vec<Recommendation> {
        let mut entries: Vec<&RecommendationEntry> =
            self.specs.iter().flat_map(|s| &s.recommendations).collect();
        entries.sort_by_key(|e| e.order);
        entries.into_iter().map(|e| e.recommendation.clone()).collect()
    }

    /// The services whose specs were loaded from files (the rest are the
    /// built-in fallback).
    #[must_use]
    pub fn loaded_services(&self) -> &[ServiceId] {
        &self.loaded
    }

    /// Validates and installs a spec, replacing that service's current
    /// one.
    ///
    /// # Errors
    ///
    /// Any [`ServiceSpec::validate`] rejection, or
    /// [`FleetError::DuplicateService`] when the service was already
    /// loaded from a file.
    pub fn install_spec(&mut self, spec: ServiceSpec) -> Result<ServiceId, FleetError> {
        spec.validate()?;
        let id = spec.profile.id;
        if self.loaded.contains(&id) {
            return Err(FleetError::DuplicateService { service: id });
        }
        self.specs[index_of(id)] = spec;
        self.loaded.push(id);
        Ok(id)
    }

    /// Loads one `<slug>.json` spec file into the registry.
    ///
    /// # Errors
    ///
    /// I/O and parse failures, a file stem that does not match the
    /// profile's id, and any [`ServiceSpec::validate`] rejection.
    pub fn load_file(&mut self, path: &Path) -> Result<ServiceId, FleetError> {
        let display = path.display().to_string();
        let text = fs::read_to_string(path).map_err(|e| FleetError::Io {
            path: display.clone(),
            message: e.to_string(),
        })?;
        let spec: ServiceSpec = serde_json::from_str(&text).map_err(|e| FleetError::Parse {
            path: display.clone(),
            message: e.to_string(),
        })?;
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            if stem != spec.profile.id.slug() {
                return Err(FleetError::FilenameMismatch {
                    path: display,
                    expected: spec.profile.id.slug().to_owned(),
                });
            }
        }
        self.install_spec(spec)
    }

    /// Builds a registry from a directory of `*.json` specs (loaded in
    /// file-name order) or from a single spec file. Services without a
    /// file keep their built-in spec.
    ///
    /// # Errors
    ///
    /// Everything [`ServiceRegistry::load_file`] rejects, plus
    /// [`FleetError::EmptyDir`] for a directory holding no `.json`
    /// files.
    pub fn load_path(path: &Path) -> Result<Self, FleetError> {
        let mut registry = Self::builtin();
        if path.is_dir() {
            let entries = fs::read_dir(path).map_err(|e| FleetError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let mut files: Vec<PathBuf> = entries
                .filter_map(std::result::Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            files.sort();
            if files.is_empty() {
                return Err(FleetError::EmptyDir {
                    path: path.display().to_string(),
                });
            }
            for file in &files {
                registry.load_file(file)?;
            }
        } else {
            registry.load_file(path)?;
        }
        Ok(registry)
    }

    /// The built-in spec for a service rendered as the canonical JSON
    /// file content (pretty-printed, no trailing newline).
    #[must_use]
    pub fn export_json(id: ServiceId) -> String {
        serde_json::to_string_pretty(&builtin_spec(id)).expect("specs serialize")
    }

    /// Writes every built-in spec to `<dir>/<slug>.json`, returning the
    /// paths written.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the directory cannot be created or a
    /// file cannot be written.
    pub fn export_dir(dir: &Path) -> Result<Vec<PathBuf>, FleetError> {
        fs::create_dir_all(dir).map_err(|e| FleetError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut written = Vec::new();
        for id in ServiceId::ALL {
            let path = dir.join(format!("{}.json", id.slug()));
            fs::write(&path, Self::export_json(id)).map_err(|e| FleetError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            written.push(path);
        }
        Ok(written)
    }
}

static ACTIVE: RwLock<Option<Arc<ServiceRegistry>>> = RwLock::new(None);

/// Installs (or, with `None`, clears) the process-wide active registry
/// that [`crate::services::profile`], [`crate::params::all_case_studies`],
/// [`crate::params::all_recommendations`], [`crate::cdf::memory_copy`],
/// [`crate::cdf::memory_allocation`], and the IPC lookups route through.
/// Returns the previously active registry so tests can restore it.
pub fn set_active_registry(
    registry: Option<Arc<ServiceRegistry>>,
) -> Option<Arc<ServiceRegistry>> {
    let mut guard = ACTIVE.write().unwrap_or_else(PoisonError::into_inner);
    std::mem::replace(&mut *guard, registry)
}

/// The process-wide active registry, if one has been installed.
#[must_use]
pub fn active_registry() -> Option<Arc<ServiceRegistry>> {
    ACTIVE.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Leaf-category IPC scaling for a service: the active registry's table
/// when one is installed, otherwise the built-in Fig. 8 data (Cache1
/// only). `None` means the caller should fall back to its default IPC.
#[must_use]
pub fn leaf_ipc_scaling(service: ServiceId, category: LeafCategory) -> Option<IpcScaling> {
    if let Some(reg) = active_registry() {
        return reg.leaf_ipc(service, category);
    }
    if service == ServiceId::Cache1 {
        return ipc::cache1_leaf_ipc(category);
    }
    None
}

/// Functionality-category IPC scaling for a service: the active
/// registry's table when one is installed, otherwise the built-in
/// Fig. 10 data (Cache1 only).
#[must_use]
pub fn functionality_ipc_scaling(
    service: ServiceId,
    category: FunctionalityCategory,
) -> Option<IpcScaling> {
    if let Some(reg) = active_registry() {
        return reg.functionality_ipc(service, category);
    }
    if service == ServiceId::Cache1 {
        return ipc::cache1_functionality_ipc(category);
    }
    None
}

/// Strips a `--services <dir|file>` flag from `args`, loading the named
/// profile data and installing it as the process-wide active registry.
/// Shared by `accelctl` and the `bench` regeneration binaries.
///
/// # Errors
///
/// Returns a message when the flag has no value or the data fails to
/// load or validate.
pub fn apply_services_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--services") else {
        return Ok(());
    };
    let value = args
        .get(i + 1)
        .ok_or_else(|| "--services requires a path (profile dir or file)".to_owned())?
        .clone();
    let registry = ServiceRegistry::load_path(Path::new(&value))
        .map_err(|e| format!("--services {value}: {e}"))?;
    args.drain(i..=i + 1);
    set_active_registry(Some(Arc::new(registry)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_matches_direct_constructors() {
        let reg = ServiceRegistry::builtin();
        for id in ServiceId::ALL {
            assert_eq!(reg.profile(id), services::profile_data(id), "{id}");
            reg.spec(id).validate().expect("builtin specs validate");
        }
        assert_eq!(reg.case_studies(), params::builtin_case_studies());
        assert_eq!(reg.recommendations(), params::builtin_recommendations());
        assert!(reg.loaded_services().is_empty());
    }

    #[test]
    fn builtin_ipc_table_mirrors_fig8_and_fig10() {
        let reg = ServiceRegistry::builtin();
        for &category in LeafCategory::ALL {
            assert_eq!(
                reg.leaf_ipc(ServiceId::Cache1, category),
                ipc::cache1_leaf_ipc(category),
                "{category}"
            );
            assert_eq!(reg.leaf_ipc(ServiceId::Web, category), None);
        }
        for &category in FunctionalityCategory::ALL {
            assert_eq!(
                reg.functionality_ipc(ServiceId::Cache1, category),
                ipc::cache1_functionality_ipc(category),
                "{category}"
            );
        }
    }

    #[test]
    fn case_study_order_is_table6_row_order() {
        let studies = ServiceRegistry::builtin().case_studies();
        let names: Vec<&str> = studies.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["aes-ni", "encryption", "inference"]);
    }
}
