//! Offload-granularity CDF datasets (Figs. 15, 19, 21, 22).
//!
//! The paper measures these with `bpftrace` on production hosts; here
//! they are reconstructed piecewise-linear CDFs. Each dataset is
//! calibrated against every quantitative statement the paper makes about
//! it — most importantly the Feed1 compression CDF, whose shape is pinned
//! by three independent lucrative-offload counts (§5): 64.2% of
//! compressions ≥ 425 B (n = 9,629 of 15,008 for off-chip Sync),
//! n = 9,769 above the Async break-even (≈409 B), and n = 3,986 above the
//! Sync-OS break-even (≈2,456 B).

use accelerometer::GranularityCdf;

use crate::services::ServiceId;

fn cdf(points: &[(f64, f64)]) -> GranularityCdf {
    GranularityCdf::from_points(points.to_vec()).expect("static CDF data is valid")
}

/// Fig. 15: CDF of bytes encrypted in Cache1. Encryption sizes start at
/// ~4 B and "<512 B are frequently encrypted" (90% here).
#[must_use]
pub fn cache1_encryption() -> GranularityCdf {
    cdf(&[
        (4.0, 0.02),
        (8.0, 0.07),
        (16.0, 0.15),
        (32.0, 0.28),
        (64.0, 0.45),
        (128.0, 0.62),
        (256.0, 0.78),
        (512.0, 0.90),
        (1_024.0, 0.95),
        (2_048.0, 0.98),
        (4_096.0, 0.99),
        (8_192.0, 1.0),
    ])
}

/// Fig. 19: CDF of bytes compressed in Feed1 — the large-granularity
/// compressor. Calibrated so the three §5 break-even points select the
/// paper's lucrative-offload counts (see module docs).
#[must_use]
pub fn feed1_compression() -> GranularityCdf {
    cdf(&[
        (1.0, 0.02),
        (64.0, 0.08),
        (128.0, 0.15),
        (256.0, 0.262),
        (512.0, 0.407),
        (1_024.0, 0.52),
        (2_048.0, 0.71),
        (4_096.0, 0.83),
        (8_192.0, 0.90),
        (16_384.0, 0.95),
        (32_768.0, 0.98),
        (65_536.0, 1.0),
    ])
}

/// Fig. 19: CDF of bytes compressed in Cache1, which compresses much
/// smaller granularities than Feed1 (hence §5 studies Feed1).
#[must_use]
pub fn cache1_compression() -> GranularityCdf {
    cdf(&[
        (1.0, 0.05),
        (64.0, 0.30),
        (128.0, 0.50),
        (256.0, 0.68),
        (512.0, 0.82),
        (1_024.0, 0.90),
        (2_048.0, 0.95),
        (4_096.0, 0.98),
        (8_192.0, 0.99),
        (16_384.0, 1.0),
    ])
}

/// Fig. 21: CDF of memory-copy sizes for one service. Most services copy
/// small granularities (< 512 B, smaller than a 4 KiB page); a few
/// percent of copies are zero-length (the `0` bucket in the figure).
///
/// Routed through the active [`crate::registry::ServiceRegistry`] when
/// one is installed (`--services`); bit-exact for unmodified data files.
#[must_use]
pub fn memory_copy(service: ServiceId) -> GranularityCdf {
    if let Some(reg) = crate::registry::active_registry() {
        return reg.spec(service).copy_granularity.clone();
    }
    memory_copy_data(service)
}

pub(crate) fn memory_copy_data(service: ServiceId) -> GranularityCdf {
    match service {
        ServiceId::Web => cdf(&[
            (0.0, 0.04),
            (64.0, 0.35),
            (128.0, 0.52),
            (256.0, 0.68),
            (512.0, 0.80),
            (1_024.0, 0.88),
            (2_048.0, 0.94),
            (4_096.0, 0.98),
            (8_192.0, 1.0),
        ]),
        ServiceId::Feed1 => cdf(&[
            (0.0, 0.02),
            (64.0, 0.25),
            (128.0, 0.40),
            (256.0, 0.55),
            (512.0, 0.70),
            (1_024.0, 0.82),
            (2_048.0, 0.92),
            (4_096.0, 0.97),
            (8_192.0, 1.0),
        ]),
        ServiceId::Feed2 => cdf(&[
            (0.0, 0.03),
            (64.0, 0.30),
            (128.0, 0.48),
            (256.0, 0.62),
            (512.0, 0.75),
            (1_024.0, 0.85),
            (2_048.0, 0.93),
            (4_096.0, 0.98),
            (8_192.0, 1.0),
        ]),
        // Ads1 has the highest copy overhead and no zero-length copies;
        // §5 offloads all of its 1,473,681 copies on-chip.
        ServiceId::Ads1 => cdf(&[
            (1.0, 0.10),
            (64.0, 0.38),
            (128.0, 0.55),
            (256.0, 0.70),
            (512.0, 0.82),
            (1_024.0, 0.90),
            (2_048.0, 0.96),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Ads2 => cdf(&[
            (0.0, 0.05),
            (64.0, 0.40),
            (128.0, 0.58),
            (256.0, 0.72),
            (512.0, 0.83),
            (1_024.0, 0.91),
            (2_048.0, 0.96),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Cache1 | ServiceId::Cache3 => cdf(&[
            (0.0, 0.06),
            (64.0, 0.45),
            (128.0, 0.62),
            (256.0, 0.76),
            (512.0, 0.86),
            (1_024.0, 0.93),
            (2_048.0, 0.97),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Cache2 => cdf(&[
            (0.0, 0.08),
            (64.0, 0.50),
            (128.0, 0.68),
            (256.0, 0.80),
            (512.0, 0.89),
            (1_024.0, 0.95),
            (2_048.0, 0.98),
            (4_096.0, 0.995),
            (8_192.0, 1.0),
        ]),
        // AI-inference pack: tensor/feature copies skew larger than the
        // paper services but stay mostly sub-page.
        ServiceId::AiInference => cdf(&[
            (0.0, 0.02),
            (64.0, 0.18),
            (128.0, 0.34),
            (256.0, 0.50),
            (512.0, 0.62),
            (1_024.0, 0.74),
            (4_096.0, 0.86),
            (16_384.0, 0.94),
            (65_536.0, 1.0),
        ]),
        // Kvstore pack: value copies; small objects dominate as in the
        // caches, with a heavier multi-KiB tail for large values.
        ServiceId::Kvstore => cdf(&[
            (16.0, 0.10),
            (64.0, 0.30),
            (128.0, 0.48),
            (256.0, 0.62),
            (512.0, 0.74),
            (2_048.0, 0.88),
            (8_192.0, 0.96),
            (32_768.0, 1.0),
        ]),
        // PQC pack: copies cluster at post-quantum artifact sizes (Kyber
        // public keys ~1184 B, ciphertexts ~1088 B, Dilithium signatures
        // ~2420 B) on top of small framing copies.
        ServiceId::Pqc => cdf(&[
            (32.0, 0.20),
            (64.0, 0.36),
            (128.0, 0.50),
            (256.0, 0.60),
            (512.0, 0.70),
            (1_184.0, 0.82),
            (2_420.0, 0.92),
            (4_864.0, 1.0),
        ]),
    }
}

/// Fig. 22: CDF of memory-allocation sizes for one service; most
/// allocations are small (typically < 512 B).
///
/// Routed through the active [`crate::registry::ServiceRegistry`] when
/// one is installed (`--services`); bit-exact for unmodified data files.
#[must_use]
pub fn memory_allocation(service: ServiceId) -> GranularityCdf {
    if let Some(reg) = crate::registry::active_registry() {
        return reg.spec(service).allocation_granularity.clone();
    }
    memory_allocation_data(service)
}

pub(crate) fn memory_allocation_data(service: ServiceId) -> GranularityCdf {
    match service {
        ServiceId::Web => cdf(&[
            (0.0, 0.01),
            (64.0, 0.40),
            (128.0, 0.60),
            (256.0, 0.75),
            (512.0, 0.86),
            (1_024.0, 0.93),
            (2_048.0, 0.97),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Feed1 => cdf(&[
            (0.0, 0.01),
            (64.0, 0.30),
            (128.0, 0.50),
            (256.0, 0.68),
            (512.0, 0.82),
            (1_024.0, 0.90),
            (2_048.0, 0.95),
            (4_096.0, 0.98),
            (8_192.0, 1.0),
        ]),
        ServiceId::Feed2 => cdf(&[
            (0.0, 0.02),
            (64.0, 0.35),
            (128.0, 0.55),
            (256.0, 0.72),
            (512.0, 0.84),
            (1_024.0, 0.92),
            (2_048.0, 0.96),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Ads1 => cdf(&[
            (0.0, 0.02),
            (64.0, 0.42),
            (128.0, 0.62),
            (256.0, 0.77),
            (512.0, 0.87),
            (1_024.0, 0.94),
            (2_048.0, 0.97),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        ServiceId::Ads2 => cdf(&[
            (0.0, 0.01),
            (64.0, 0.38),
            (128.0, 0.58),
            (256.0, 0.74),
            (512.0, 0.85),
            (1_024.0, 0.92),
            (2_048.0, 0.96),
            (4_096.0, 0.99),
            (8_192.0, 1.0),
        ]),
        // Cache1 has the highest allocation overhead (§5).
        ServiceId::Cache1 | ServiceId::Cache3 => cdf(&[
            (0.0, 0.03),
            (64.0, 0.48),
            (128.0, 0.66),
            (256.0, 0.80),
            (512.0, 0.90),
            (1_024.0, 0.95),
            (2_048.0, 0.98),
            (4_096.0, 0.995),
            (8_192.0, 1.0),
        ]),
        ServiceId::Cache2 => cdf(&[
            (0.0, 0.04),
            (64.0, 0.52),
            (128.0, 0.70),
            (256.0, 0.83),
            (512.0, 0.92),
            (1_024.0, 0.96),
            (2_048.0, 0.98),
            (4_096.0, 0.995),
            (8_192.0, 1.0),
        ]),
        // AI-inference pack: arena-style tensor buffers amortize large
        // allocations, so the malloc path sees mostly small metadata.
        ServiceId::AiInference => cdf(&[
            (16.0, 0.28),
            (64.0, 0.55),
            (128.0, 0.70),
            (256.0, 0.80),
            (512.0, 0.88),
            (4_096.0, 0.96),
            (16_384.0, 1.0),
        ]),
        // Kvstore pack: slab-class allocations, small-object dominated.
        ServiceId::Kvstore => cdf(&[
            (16.0, 0.30),
            (64.0, 0.58),
            (128.0, 0.72),
            (256.0, 0.82),
            (512.0, 0.90),
            (2_048.0, 0.96),
            (16_384.0, 1.0),
        ]),
        // PQC pack: key/ciphertext buffers plus small session state.
        ServiceId::Pqc => cdf(&[
            (32.0, 0.35),
            (64.0, 0.55),
            (128.0, 0.68),
            (256.0, 0.78),
            (512.0, 0.85),
            (1_184.0, 0.93),
            (2_420.0, 0.98),
            (4_864.0, 1.0),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer::units::bytes;

    #[test]
    fn cache1_encryption_matches_prose() {
        let c = cache1_encryption();
        // "Cache1's encryption size is ∼≥ 4 B".
        assert!(c.fraction_at_or_below(bytes(3.9)) < 0.02);
        // "<512B are frequently encrypted".
        assert!(c.fraction_at_or_below(bytes(512.0)) >= 0.85);
    }

    #[test]
    fn feed1_compression_calibration_points() {
        let c = feed1_compression();
        // 64.2% of compressions are ≥ 425 B (off-chip Sync, n = 9,629).
        assert!((c.fraction_above(bytes(425.1)) - 0.642).abs() < 0.005);
        // Async break-even ≈ 409 B → n = 9,769 of 15,008.
        assert!((c.fraction_above(bytes(409.25)) * 15_008.0 - 9_769.0).abs() < 60.0);
        // Sync-OS break-even ≈ 2,456 B → n = 3,986 of 15,008.
        assert!((c.fraction_above(bytes(2_455.5)) * 15_008.0 - 3_986.0).abs() < 60.0);
    }

    #[test]
    fn feed1_compresses_larger_than_cache1() {
        // §5: "Feed1 compresses larger granularities than Cache1".
        let feed1 = feed1_compression();
        let cache1 = cache1_compression();
        for g in [128.0, 256.0, 512.0, 1_024.0, 4_096.0] {
            assert!(
                feed1.fraction_at_or_below(bytes(g)) < cache1.fraction_at_or_below(bytes(g)),
                "at {g} B"
            );
        }
        assert!(feed1.mean_bytes() > cache1.mean_bytes());
    }

    #[test]
    fn copies_are_mostly_small() {
        // Fig. 21: "most microservices frequently copy small
        // granularities" — over half of copies are < 512 B everywhere.
        for svc in ServiceId::ALL {
            let c = memory_copy(svc);
            assert!(
                c.fraction_at_or_below(bytes(512.0)) > 0.5,
                "{svc:?} copies too large"
            );
        }
    }

    #[test]
    fn allocations_are_mostly_small() {
        for svc in ServiceId::ALL {
            let c = memory_allocation(svc);
            assert!(
                c.fraction_at_or_below(bytes(512.0)) > 0.8,
                "{svc:?} allocations too large"
            );
        }
    }

    #[test]
    fn ads1_copies_have_no_zero_bucket() {
        let c = memory_copy(ServiceId::Ads1);
        assert_eq!(c.fraction_at_or_below(bytes(0.0)), 0.0);
    }

    #[test]
    fn all_cdfs_reach_one() {
        for svc in ServiceId::ALL {
            assert_eq!(memory_copy(svc).fraction_at_or_below(bytes(1e9)), 1.0);
            assert_eq!(memory_allocation(svc).fraction_at_or_below(bytes(1e9)), 1.0);
        }
        assert_eq!(cache1_encryption().fraction_at_or_below(bytes(1e9)), 1.0);
        assert_eq!(feed1_compression().fraction_at_or_below(bytes(1e9)), 1.0);
        assert_eq!(cache1_compression().fraction_at_or_below(bytes(1e9)), 1.0);
    }
}
