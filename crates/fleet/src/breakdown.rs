//! Cycle breakdowns: the stacked-bar datatype behind Figs. 1–7 and 9.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors constructing a breakdown.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BreakdownError {
    /// A percentage was negative or non-finite.
    InvalidPercent {
        /// The offending value.
        value: f64,
    },
    /// The same category appeared twice.
    DuplicateCategory,
    /// A complete breakdown's percentages did not sum to 100 (±0.5).
    BadTotal {
        /// The actual sum.
        total: f64,
    },
}

impl fmt::Display for BreakdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakdownError::InvalidPercent { value } => {
                write!(f, "invalid percentage {value}")
            }
            BreakdownError::DuplicateCategory => write!(f, "duplicate category in breakdown"),
            BreakdownError::BadTotal { total } => {
                write!(f, "complete breakdown sums to {total}, expected 100")
            }
        }
    }
}

impl std::error::Error for BreakdownError {}

/// A percentage breakdown of CPU cycles across categories of type `C`.
///
/// `Breakdown` is the datatype behind every stacked bar in the paper:
/// a list of `(category, percent)` entries. A *complete* breakdown sums
/// to 100%; a *partial* one (e.g. Google's memory row, where only copy
/// and allocation were reported) may sum to less.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakdown<C> {
    entries: Vec<(C, f64)>,
    complete: bool,
}

impl<C: Copy + PartialEq> Breakdown<C> {
    /// Builds a complete breakdown; percentages must sum to 100 (±0.5,
    /// matching the rounding in the paper's figures).
    ///
    /// # Errors
    ///
    /// Returns a [`BreakdownError`] for negative/non-finite percentages,
    /// duplicate categories, or a total that is not ≈100.
    pub fn complete(entries: Vec<(C, f64)>) -> Result<Self, BreakdownError> {
        let b = Self::validate(entries, true)?;
        Ok(b)
    }

    /// Builds a partial breakdown (total ≤ 100).
    ///
    /// # Errors
    ///
    /// Returns a [`BreakdownError`] for invalid percentages, duplicates,
    /// or a total above 100.5.
    pub fn partial(entries: Vec<(C, f64)>) -> Result<Self, BreakdownError> {
        Self::validate(entries, false)
    }

    fn validate(entries: Vec<(C, f64)>, complete: bool) -> Result<Self, BreakdownError> {
        let mut total = 0.0;
        for (i, (cat, pct)) in entries.iter().enumerate() {
            if !pct.is_finite() || *pct < 0.0 {
                return Err(BreakdownError::InvalidPercent { value: *pct });
            }
            if entries[..i].iter().any(|(c, _)| c == cat) {
                return Err(BreakdownError::DuplicateCategory);
            }
            total += pct;
        }
        if complete && (total - 100.0).abs() > 0.5 {
            return Err(BreakdownError::BadTotal { total });
        }
        if !complete && total > 100.5 {
            return Err(BreakdownError::BadTotal { total });
        }
        Ok(Self { entries, complete })
    }

    /// The percentage for a category (0 if absent).
    #[must_use]
    pub fn percent(&self, category: C) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == category)
            .map_or(0.0, |(_, p)| *p)
    }

    /// The fraction (0–1) for a category.
    #[must_use]
    pub fn fraction(&self, category: C) -> f64 {
        self.percent(category) / 100.0
    }

    /// Sum of all entries' percentages.
    #[must_use]
    pub fn total_percent(&self) -> f64 {
        self.entries.iter().map(|(_, p)| p).sum()
    }

    /// Whether this breakdown covers all cycles (sums to 100).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Iterates `(category, percent)` entries in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (C, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The categories present, in presentation order.
    pub fn categories(&self) -> impl Iterator<Item = C> + '_ {
        self.entries.iter().map(|(c, _)| *c)
    }

    /// The entry with the largest share.
    #[must_use]
    pub fn dominant(&self) -> Option<(C, f64)> {
        self.entries
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("percentages are finite"))
    }

    /// Sums the percentages of categories matching a predicate — e.g. the
    /// Fig. 1 "core" share via `FunctionalityCategory::is_core`.
    #[must_use]
    pub fn percent_where(&self, mut pred: impl FnMut(C) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|(c, _)| pred(*c))
            .map(|(_, p)| p)
            .sum()
    }

    /// Rescales this breakdown so its entries express a share of a larger
    /// whole: e.g. memory-op shares (of memory cycles) × the memory leaf
    /// share (of total cycles) gives memory-op shares of total cycles.
    #[must_use]
    pub fn scaled_by(&self, factor: f64) -> Vec<(C, f64)> {
        self.entries.iter().map(|(c, p)| (*c, p * factor)).collect()
    }
}

impl<C: Copy + PartialEq + fmt::Display> fmt::Display for Breakdown<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (c, p)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {p:.1}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::FunctionalityCategory as F;

    fn web_like() -> Breakdown<F> {
        Breakdown::complete(vec![
            (F::SecureInsecureIo, 15.0),
            (F::IoPrePostProcessing, 10.0),
            (F::Compression, 9.0),
            (F::Serialization, 7.0),
            (F::ApplicationLogic, 18.0),
            (F::Logging, 23.0),
            (F::ThreadPoolManagement, 4.0),
            (F::Miscellaneous, 14.0),
        ])
        .unwrap()
    }

    #[test]
    fn complete_breakdown_sums_to_100() {
        let b = web_like();
        assert!((b.total_percent() - 100.0).abs() < 1e-9);
        assert!(b.is_complete());
    }

    #[test]
    fn rejects_bad_totals_and_values() {
        assert!(matches!(
            Breakdown::complete(vec![(F::Logging, 50.0)]),
            Err(BreakdownError::BadTotal { .. })
        ));
        assert!(matches!(
            Breakdown::complete(vec![(F::Logging, -1.0), (F::Compression, 101.0)]),
            Err(BreakdownError::InvalidPercent { .. })
        ));
        assert!(matches!(
            Breakdown::complete(vec![(F::Logging, 50.0), (F::Logging, 50.0)]),
            Err(BreakdownError::DuplicateCategory)
        ));
        assert!(matches!(
            Breakdown::partial(vec![(F::Logging, 150.0)]),
            Err(BreakdownError::BadTotal { .. })
        ));
    }

    #[test]
    fn partial_breakdowns_allowed_below_100() {
        let b = Breakdown::partial(vec![(F::Compression, 4.0), (F::Serialization, 5.0)]).unwrap();
        assert!(!b.is_complete());
        assert_eq!(b.total_percent(), 9.0);
    }

    #[test]
    fn percent_and_fraction_lookup() {
        let b = web_like();
        assert_eq!(b.percent(F::Logging), 23.0);
        assert_eq!(b.fraction(F::ApplicationLogic), 0.18);
        // Absent category reads as zero.
        assert_eq!(b.percent(F::PredictionRanking), 0.0);
    }

    #[test]
    fn dominant_category() {
        let (cat, pct) = web_like().dominant().unwrap();
        assert_eq!(cat, F::Logging);
        assert_eq!(pct, 23.0);
    }

    #[test]
    fn core_share_via_predicate() {
        let core = web_like().percent_where(F::is_core);
        assert_eq!(core, 18.0); // Web's core web-serving logic (§2.4).
    }

    #[test]
    fn scaling_composes_sub_breakdowns() {
        let b = web_like();
        let scaled = b.scaled_by(0.5);
        let logging = scaled.iter().find(|(c, _)| *c == F::Logging).unwrap().1;
        assert_eq!(logging, 11.5);
    }

    #[test]
    fn display_is_readable() {
        let s = web_like().to_string();
        assert!(s.contains("Logging: 23.0%"));
    }

    #[test]
    fn error_display() {
        assert!(BreakdownError::BadTotal { total: 99.0 }.to_string().contains("99"));
        assert!(BreakdownError::InvalidPercent { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(BreakdownError::DuplicateCategory.to_string().contains("duplicate"));
    }
}
