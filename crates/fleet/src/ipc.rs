//! IPC-scaling datasets (Figs. 8 and 10): Cache1's per-core IPC across
//! three CPU generations, for key leaf categories and key functionality
//! categories.
//!
//! Reconstructed to satisfy §2.3.5 and §2.4.1: every leaf category uses
//! less than half the theoretical execution bandwidth (peak IPC 4.0);
//! kernel IPC is low (<0.5) and scales poorly; C-library IPC scales well;
//! GenB→GenC gains are small except for C libraries; I/O IPC is low and
//! flat (driven by kernel IPC); key-value (application-logic) IPC barely
//! improves because it is memory-bound.

use serde::{Deserialize, Serialize};

use crate::categories::{FunctionalityCategory, LeafCategory};
use crate::platform::CpuGeneration;

/// IPC of one category across the three generations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpcScaling {
    /// IPC on GenA (Haswell).
    pub gen_a: f64,
    /// IPC on GenB (Broadwell).
    pub gen_b: f64,
    /// IPC on GenC (Skylake).
    pub gen_c: f64,
}

impl IpcScaling {
    /// IPC for a specific generation.
    #[must_use]
    pub fn for_generation(&self, generation: CpuGeneration) -> f64 {
        match generation {
            CpuGeneration::GenA => self.gen_a,
            CpuGeneration::GenB => self.gen_b,
            CpuGeneration::GenC => self.gen_c,
        }
    }

    /// Relative IPC improvement across the full GenA→GenC span.
    #[must_use]
    pub fn total_scaling(&self) -> f64 {
        self.gen_c / self.gen_a
    }

    /// Relative IPC improvement from GenB to GenC (the paper notes this
    /// step is typically small).
    #[must_use]
    pub fn genb_to_genc_scaling(&self) -> f64 {
        self.gen_c / self.gen_b
    }
}

/// Fig. 8: Cache1's per-core IPC for key leaf categories. Returns `None`
/// for leaf categories the figure does not cover.
#[must_use]
pub fn cache1_leaf_ipc(category: LeafCategory) -> Option<IpcScaling> {
    let s = |gen_a, gen_b, gen_c| Some(IpcScaling { gen_a, gen_b, gen_c });
    match category {
        LeafCategory::Memory => s(0.82, 0.95, 1.00),
        LeafCategory::Kernel => s(0.35, 0.37, 0.38),
        LeafCategory::Zstd => s(1.10, 1.30, 1.38),
        LeafCategory::Ssl => s(0.95, 1.20, 1.28),
        LeafCategory::CLibraries => s(1.05, 1.45, 1.85),
        _ => None,
    }
}

/// The leaf categories Fig. 8 covers, in presentation order.
pub const FIG8_CATEGORIES: [LeafCategory; 5] = [
    LeafCategory::Memory,
    LeafCategory::Kernel,
    LeafCategory::Zstd,
    LeafCategory::Ssl,
    LeafCategory::CLibraries,
];

/// Fig. 10: Cache1's per-core IPC for key functionality categories.
/// Returns `None` for categories the figure does not cover.
#[must_use]
pub fn cache1_functionality_ipc(category: FunctionalityCategory) -> Option<IpcScaling> {
    let s = |gen_a, gen_b, gen_c| Some(IpcScaling { gen_a, gen_b, gen_c });
    match category {
        FunctionalityCategory::SecureInsecureIo => s(0.38, 0.40, 0.41),
        FunctionalityCategory::IoPrePostProcessing => s(0.60, 0.68, 0.72),
        FunctionalityCategory::Serialization => s(0.65, 0.74, 0.79),
        FunctionalityCategory::ApplicationLogic => s(0.52, 0.56, 0.58),
        _ => None,
    }
}

/// The functionality categories Fig. 10 covers, in presentation order.
pub const FIG10_CATEGORIES: [FunctionalityCategory; 4] = [
    FunctionalityCategory::SecureInsecureIo,
    FunctionalityCategory::IoPrePostProcessing,
    FunctionalityCategory::Serialization,
    FunctionalityCategory::ApplicationLogic,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_leaf_ipc_below_half_peak() {
        // §2.3.5: "Each leaf function type uses less than half of the
        // theoretical execution bandwidth of a GenC CPU (peak 4.0)".
        for cat in FIG8_CATEGORIES {
            let ipc = cache1_leaf_ipc(cat).unwrap();
            for generation in CpuGeneration::ALL {
                assert!(
                    ipc.for_generation(generation) < 2.0,
                    "{cat:?} on {generation} exceeds half peak"
                );
            }
        }
    }

    #[test]
    fn kernel_ipc_is_low_and_scales_poorly() {
        let kernel = cache1_leaf_ipc(LeafCategory::Kernel).unwrap();
        assert!(kernel.gen_c < 0.5);
        assert!(kernel.total_scaling() < 1.15);
    }

    #[test]
    fn c_libraries_scale_well() {
        let clib = cache1_leaf_ipc(LeafCategory::CLibraries).unwrap();
        assert!(clib.total_scaling() > 1.5);
        // And they dominate every other category's scaling.
        for cat in FIG8_CATEGORIES {
            if cat != LeafCategory::CLibraries {
                assert!(cache1_leaf_ipc(cat).unwrap().total_scaling() < clib.total_scaling());
            }
        }
    }

    #[test]
    fn genb_to_genc_gain_is_small_except_clib() {
        for cat in FIG8_CATEGORIES {
            let scaling = cache1_leaf_ipc(cat).unwrap().genb_to_genc_scaling();
            if cat == LeafCategory::CLibraries {
                assert!(scaling > 1.2);
            } else {
                assert!(scaling < 1.12, "{cat:?} GenB→GenC gain too large: {scaling}");
            }
        }
    }

    #[test]
    fn io_ipc_tracks_kernel_ipc() {
        // §2.4.1: the low I/O IPC is primarily due to the low kernel IPC.
        let io = cache1_functionality_ipc(FunctionalityCategory::SecureInsecureIo).unwrap();
        let kernel = cache1_leaf_ipc(LeafCategory::Kernel).unwrap();
        for generation in CpuGeneration::ALL {
            assert!((io.for_generation(generation) - kernel.for_generation(generation)).abs() < 0.1);
        }
        assert!(io.total_scaling() < 1.1);
    }

    #[test]
    fn key_value_store_ipc_barely_improves() {
        // §2.4.1: memory-bound key-value serving sees little IPC gain.
        let app = cache1_functionality_ipc(FunctionalityCategory::ApplicationLogic).unwrap();
        assert!(app.total_scaling() < 1.15);
        let memory = cache1_leaf_ipc(LeafCategory::Memory).unwrap();
        assert!(app.gen_c < memory.gen_c);
    }

    #[test]
    fn uncovered_categories_return_none() {
        assert!(cache1_leaf_ipc(LeafCategory::Math).is_none());
        assert!(cache1_leaf_ipc(LeafCategory::Miscellaneous).is_none());
        assert!(cache1_functionality_ipc(FunctionalityCategory::Logging).is_none());
        assert!(cache1_functionality_ipc(FunctionalityCategory::Compression).is_none());
    }

    #[test]
    fn ipc_never_decreases_across_generations() {
        for cat in FIG8_CATEGORIES {
            let ipc = cache1_leaf_ipc(cat).unwrap();
            assert!(ipc.gen_b >= ipc.gen_a);
            assert!(ipc.gen_c >= ipc.gen_b);
        }
        for cat in FIG10_CATEGORIES {
            let ipc = cache1_functionality_ipc(cat).unwrap();
            assert!(ipc.gen_b >= ipc.gen_a);
            assert!(ipc.gen_c >= ipc.gen_b);
        }
    }
}
