//! # accelerometer-fleet
//!
//! The workload-characterization datasets behind the Accelerometer
//! reproduction: calibrated profiles of the seven hyperscale
//! microservices the paper studies (§2), the taxonomies of Tables 2–3,
//! the platform matrix of Table 1, the IPC-scaling series of Figs. 8/10,
//! the granularity CDFs of Figs. 15/19/21/22, the Table 4 findings, and
//! the validated parameter sets of Tables 6–7.
//!
//! The production data is proprietary, so every dataset here is a
//! reconstruction: values are pinned by the quantitative statements the
//! paper makes in prose and tables (each module documents its
//! constraints), and free values are filled in consistently. See
//! `DESIGN.md` §2 for the substitution rationale.
//!
//! ```
//! use accelerometer_fleet::{profile, ServiceId};
//! use accelerometer_fleet::categories::FunctionalityCategory;
//!
//! let web = profile(ServiceId::Web);
//! // §2.4: Web spends only 18% of cycles in core web-serving logic.
//! assert_eq!(web.core_percent(), 18.0);
//! assert_eq!(web.functionality.percent(FunctionalityCategory::Logging), 23.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod categories;
pub mod cdf;
pub mod findings;
pub mod fleetwide;
pub mod ipc;
pub mod params;
pub mod platform;
pub mod reference;
pub mod registry;
pub mod services;

pub use breakdown::{Breakdown, BreakdownError};
pub use categories::{
    CLibOp, CopyOrigin, FunctionalityCategory, KernelOp, LeafCategory, MemoryOp, SyncPrimitive,
};
pub use findings::{finding, Finding, FINDINGS};
pub use params::{
    all_case_studies, all_recommendations, CaseStudy, Recommendation, RecommendationConfig,
};
pub use platform::{CpuGeneration, CpuPlatform, ALL_PLATFORMS, GEN_A, GEN_B, GEN_C_18, GEN_C_20};
pub use registry::{
    active_registry, apply_services_flag, builtin_spec, set_active_registry, FleetError,
    ServiceRegistry, ServiceSpec, SCHEMA_VERSION,
};
pub use services::{
    characterized_profiles, profile, ServiceDomain, ServiceId, ServiceProfile, ServiceRates,
};
