//! The characterization taxonomies: leaf-function categories (Table 2),
//! microservice-functionality categories (Table 3), and the sub-category
//! taxonomies of Figs. 3–7.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! category {
    (
        $(#[$meta:meta])*
        $name:ident {
            $( $(#[$vmeta:meta])* $variant:ident => ($label:literal, $desc:literal) ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[serde(rename_all = "kebab-case")]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// All categories, in the paper's presentation order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];

            /// The display label used in the paper's figures.
            #[must_use]
            pub fn label(self) -> &'static str {
                match self {
                    $( $name::$variant => $label, )+
                }
            }

            /// Examples of operations in this category, from the paper's
            /// taxonomy tables.
            #[must_use]
            pub fn examples(self) -> &'static str {
                match self {
                    $( $name::$variant => $desc, )+
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.label())
            }
        }
    };
}

category! {
    /// Leaf-function categories (Table 2): the classification applied to
    /// the innermost function of every sampled call trace.
    LeafCategory {
        /// Memory copy, allocation, free, compare, move, set.
        Memory => ("Memory", "memory copy, allocation, free, compare"),
        /// Kernel-mode execution.
        Kernel => ("Kernel", "task scheduling, interrupt handling, network communication, memory management"),
        /// Cryptographic and non-cryptographic hash functions.
        Hashing => ("Hashing", "SHA & other hash algorithms"),
        /// User-space synchronization primitives.
        Synchronization => ("Synchronization", "user-space C++ atomics, mutex, spin locks, CAS"),
        /// Compression and decompression.
        Zstd => ("ZSTD", "compression, decompression"),
        /// Vectorized math libraries.
        Math => ("Math", "Intel's MKL, AVX"),
        /// Encryption and decryption.
        Ssl => ("SSL", "encryption, decryption"),
        /// General-purpose C/C++ library routines.
        CLibraries => ("C Libraries", "C/C++ search algorithms, array & string compute"),
        /// Everything else.
        Miscellaneous => ("Miscellaneous", "other assorted function types"),
    }
}

category! {
    /// Microservice-functionality categories (Table 3): the classification
    /// applied to whole call traces.
    FunctionalityCategory {
        /// Encrypted and plain-text I/O sends and receives.
        SecureInsecureIo => ("Secure + Insecure IO", "encrypted/plain-text I/O sends & receives"),
        /// Work before/after I/O: allocations, copies, framing.
        IoPrePostProcessing => ("IO Pre/Post Processing", "allocations, copies, etc before/after I/O"),
        /// Compression and decompression logic.
        Compression => ("Compression", "compression/decompression logic"),
        /// RPC argument (de)serialization.
        Serialization => ("Serialization/Deserialization", "RPC serialization/deserialization"),
        /// Feature-vector creation in ML services.
        FeatureExtraction => ("Feature Extraction", "feature vector creation in ML services"),
        /// ML inference.
        PredictionRanking => ("Prediction/Ranking", "ML inference algorithms"),
        /// The service's core business logic.
        ApplicationLogic => ("Application Logic", "core business logic (e.g., Cache's key-value serving)"),
        /// Creating, reading, and updating logs.
        Logging => ("Logging", "creating, reading, updating logs"),
        /// Creating, deleting, and synchronizing threads.
        ThreadPoolManagement => ("Thread Pool Management", "creating, deleting, synchronizing threads"),
        /// Everything else.
        Miscellaneous => ("Miscellaneous", "other assorted operations"),
    }
}

impl FunctionalityCategory {
    /// Whether the category is *core application logic* in the sense of
    /// Fig. 1 (versus orchestration work that merely facilitates it).
    ///
    /// Core is application logic plus ML inference: §2.4 notes that the
    /// ML services' "application logic" covers core non-ML operations
    /// such as merging results, while inference is the kernel the
    /// accelerators of §4–5 target. Feature extraction counts as
    /// orchestration — it prepares inputs for inference, and the paper's
    /// "42%–67% of cycles orchestrating inference" range only holds with
    /// it on that side of the ledger.
    #[must_use]
    pub fn is_core(self) -> bool {
        matches!(
            self,
            FunctionalityCategory::ApplicationLogic | FunctionalityCategory::PredictionRanking
        )
    }
}

category! {
    /// Memory leaf sub-categories (Fig. 3).
    MemoryOp {
        /// `memcpy()` and friends.
        Copy => ("Memory-Copy", "memcpy and related bulk copies"),
        /// `free()` / `delete` paths, size-class lookups, page removal.
        Free => ("Memory-Free", "free, size-class lookup, page removal"),
        /// `malloc()` / `new` paths.
        Allocation => ("Memory-Allocation", "malloc/new and allocator metadata"),
        /// `memmove()`.
        Move => ("Memory-Move", "memmove"),
        /// `memset()`.
        Set => ("Memory-Set", "memset and zeroing"),
        /// `memcmp()`.
        Compare => ("Memory-Compare", "memcmp"),
    }
}

category! {
    /// Microservice functionalities that originate memory copies (Fig. 4).
    CopyOrigin {
        /// Copies inside I/O send/receive paths.
        SecureInsecureIo => ("Secure + Insecure IO", "copies in network/SSL send and receive"),
        /// Copies while preparing or consuming I/O buffers.
        IoPrePostProcessing => ("IO Pre/Post Processing", "copies before/after I/O"),
        /// Copies during RPC (de)serialization.
        Serialization => ("Serialization/Deserialization", "copies in RPC marshalling"),
        /// Copies inside the core application logic.
        ApplicationLogic => ("Application Logic", "copies in business logic, e.g. key-value stores"),
    }
}

category! {
    /// Kernel leaf sub-categories (Fig. 5).
    KernelOp {
        /// Run-queue and context-switch work.
        Scheduler => ("Scheduler", "task scheduling, run-queue management"),
        /// epoll/select/interrupt delivery.
        EventHandling => ("Event Handling", "event notification, interrupt handling"),
        /// The in-kernel network stack.
        Network => ("Network", "TCP/IP stack, socket operations"),
        /// Kernel-side locking.
        Synchronization => ("Synchronization", "kernel locks and futex paths"),
        /// Page tables, page faults, reclaim.
        MemoryManagement => ("Memory Management", "paging, faults, reclaim"),
        /// Everything else.
        Miscellaneous => ("Miscellaneous", "other kernel paths"),
    }
}

category! {
    /// User-space synchronization primitives (Fig. 6).
    SyncPrimitive {
        /// C++ `std::atomic` operations.
        Atomics => ("C++ Atomics", "std::atomic loads/stores/RMWs"),
        /// Mutex acquire/release including futex waits.
        Mutex => ("Mutex", "mutex lock/unlock"),
        /// Compare-exchange loops.
        CompareExchange => ("Compare-Exchange-Swap", "CAS retry loops"),
        /// Spin locks (used by µs-scale services to avoid wakeup delays).
        SpinLock => ("Spin Lock", "busy-wait locks"),
    }
}

category! {
    /// C-library sub-categories (Fig. 7).
    CLibOp {
        /// `std::` algorithms (sort, search, …).
        StdAlgorithms => ("Std algorithms", "std:: sort/search/transform"),
        /// Object construction and destruction.
        CtorsDtors => ("Constructors/Destructors", "object construction/destruction"),
        /// String parsing and transformation.
        Strings => ("Strings", "string parsing and transformation"),
        /// Hash-table lookups and maintenance.
        HashTables => ("Hash tables", "hash-table look-ups"),
        /// Vector operations (dominant in ML feature handling).
        Vectors => ("Vectors", "vector operations on feature data"),
        /// Tree data structures.
        Trees => ("Trees", "ordered-tree operations"),
        /// Overloaded-operator dispatch.
        OperatorOverride => ("Operator override", "overloaded operator implementations"),
        /// Everything else.
        Miscellaneous => ("Miscellaneous", "other library routines"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_nine_leaf_categories() {
        assert_eq!(LeafCategory::ALL.len(), 9);
        assert_eq!(LeafCategory::Zstd.label(), "ZSTD");
        assert!(LeafCategory::Kernel.examples().contains("scheduling"));
    }

    #[test]
    fn table3_has_ten_functionality_categories() {
        assert_eq!(FunctionalityCategory::ALL.len(), 10);
        assert!(FunctionalityCategory::ApplicationLogic
            .examples()
            .contains("key-value"));
    }

    #[test]
    fn core_vs_orchestration_split() {
        use FunctionalityCategory as F;
        let core: Vec<_> = F::ALL.iter().filter(|c| c.is_core()).collect();
        assert_eq!(core.len(), 2);
        assert!(F::ApplicationLogic.is_core());
        assert!(F::PredictionRanking.is_core());
        assert!(!F::FeatureExtraction.is_core());
        assert!(!F::Compression.is_core());
        assert!(!F::Logging.is_core());
        assert!(!F::SecureInsecureIo.is_core());
    }

    #[test]
    fn sub_taxonomies_match_figure_legends() {
        assert_eq!(MemoryOp::ALL.len(), 6);
        assert_eq!(CopyOrigin::ALL.len(), 4);
        assert_eq!(KernelOp::ALL.len(), 6);
        assert_eq!(SyncPrimitive::ALL.len(), 4);
        assert_eq!(CLibOp::ALL.len(), 8);
    }

    #[test]
    fn display_uses_figure_labels() {
        assert_eq!(MemoryOp::Copy.to_string(), "Memory-Copy");
        assert_eq!(SyncPrimitive::CompareExchange.to_string(), "Compare-Exchange-Swap");
        assert_eq!(
            FunctionalityCategory::SecureInsecureIo.to_string(),
            "Secure + Insecure IO"
        );
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&LeafCategory::CLibraries).unwrap();
        assert_eq!(json, "\"c-libraries\"");
        let back: FunctionalityCategory = serde_json::from_str("\"prediction-ranking\"").unwrap();
        assert_eq!(back, FunctionalityCategory::PredictionRanking);
    }

    #[test]
    fn categories_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<_> = LeafCategory::ALL.iter().collect();
        assert_eq!(set.len(), 9);
        assert!(LeafCategory::Memory < LeafCategory::Miscellaneous);
    }
}
