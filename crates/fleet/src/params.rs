//! Validated model parameters: the Table 6 case studies and Table 7
//! acceleration recommendations, packaged as ready-to-evaluate scenarios.

use accelerometer::units::{cycles, cycles_per_byte};
use accelerometer::{
    AccelerationStrategy, AcceleratorSpec, GranularityCdf, KernelCost, KernelProfile, ModelParams,
    OffloadOverheads, OffloadPolicy, Scenario, ThreadingDesign,
};
use serde::{Deserialize, Serialize};

use crate::cdf;
use crate::services::ServiceId;

/// A §4 validation case study: model parameters plus the production
/// ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudy {
    /// Short identifier (Table 6 row name).
    pub name: String,
    /// The microservice under study.
    pub service: ServiceId,
    /// The fully-parameterized scenario (Table 6 row).
    pub scenario: Scenario,
    /// The Accelerometer-estimated speedup the paper reports (percent).
    pub paper_estimated_percent: f64,
    /// The real production speedup measured via A/B testing (percent).
    pub paper_real_percent: f64,
    /// The offload-size distribution for the kernel, where the paper
    /// reports one.
    pub granularity: Option<GranularityCdf>,
    /// Host cycles per byte for the kernel (derived from `α·C/(n·E[g])`).
    pub cycles_per_byte: f64,
}

impl CaseStudy {
    /// The paper's model-vs-production error in percentage points.
    #[must_use]
    pub fn paper_error_points(&self) -> f64 {
        (self.paper_estimated_percent - self.paper_real_percent).abs()
    }
}

#[allow(clippy::too_many_arguments)]
fn scenario(
    c: f64,
    alpha: f64,
    n: f64,
    o0: f64,
    l: f64,
    q: f64,
    o1: f64,
    a: f64,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
) -> Scenario {
    let params = ModelParams::builder()
        .host_cycles(c)
        .kernel_fraction(alpha)
        .offloads(n)
        .setup_cycles(o0)
        .interface_cycles(l)
        .queueing_cycles(q)
        .thread_switch_cycles(o1)
        .peak_speedup(a)
        .build()
        .expect("static Table 6/7 parameters are valid");
    Scenario::new(params, design, strategy)
}

/// Table 6, row 1: Intel AES-NI accelerating Cache1's encryption
/// (on-chip, Sync). Estimated 15.7%, measured 14%.
#[must_use]
pub fn aes_ni_cache1() -> CaseStudy {
    CaseStudy {
        name: "aes-ni".to_owned(),
        service: ServiceId::Cache1,
        scenario: scenario(
            2.0e9,
            0.165844,
            298_951.0,
            10.0,
            3.0,
            0.0,
            0.0,
            6.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
        ),
        paper_estimated_percent: 15.7,
        paper_real_percent: 14.0,
        granularity: Some(cdf::cache1_encryption()),
        cycles_per_byte: 3.93,
    }
}

/// Table 6, row 2: an off-chip (PCIe) encryption device for Cache3
/// (Async, no response consumed; the driver awaits the transfer).
/// Estimated 8.6%, measured 7.5%. Cache3 offloads *all* encryptions —
/// its software cannot select granularities.
#[must_use]
pub fn encryption_cache3() -> CaseStudy {
    CaseStudy {
        name: "encryption".to_owned(),
        service: ServiceId::Cache3,
        scenario: scenario(
            2.3e9,
            0.19154,
            101_863.0,
            0.0,
            2_530.0,
            0.0,
            0.0,
            27.0,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
        ),
        paper_estimated_percent: 8.6,
        paper_real_percent: 7.5,
        granularity: Some(cdf::cache1_encryption()),
        cycles_per_byte: 15.34,
    }
}

/// Table 6, row 3: Ads1's ML inference offloaded to a remote
/// general-purpose Skylake (A = 1) over the network, with a distinct
/// response thread. Estimated 72.39%, measured 68.69%. The large `o0`
/// captures the extra I/O cycles per inference batch; `L + Q = 0`
/// because the accelerator is remote.
#[must_use]
pub fn inference_ads1() -> CaseStudy {
    CaseStudy {
        name: "inference".to_owned(),
        service: ServiceId::Ads1,
        scenario: scenario(
            2.5e9,
            0.52,
            10.0,
            25_000_000.0,
            0.0,
            0.0,
            12_500.0,
            1.0,
            ThreadingDesign::AsyncDistinctThread,
            AccelerationStrategy::Remote,
        ),
        paper_estimated_percent: 72.39,
        paper_real_percent: 68.69,
        granularity: None,
        cycles_per_byte: 1.0,
    }
}

/// All Table 6 case studies in paper row order.
///
/// When a [`crate::registry::ServiceRegistry`] is installed as the
/// process-wide active registry (`--services`), the studies come from
/// its loaded service specs (sorted by their explicit `order` field);
/// otherwise from the built-in constructors. The two paths are
/// bit-exact for unmodified data files.
#[must_use]
pub fn all_case_studies() -> Vec<CaseStudy> {
    if let Some(reg) = crate::registry::active_registry() {
        return reg.case_studies();
    }
    builtin_case_studies()
}

/// The built-in Table 6 case studies, bypassing any active registry.
#[must_use]
pub fn builtin_case_studies() -> Vec<CaseStudy> {
    vec![aes_ni_cache1(), encryption_cache3(), inference_ads1()]
}

/// One evaluated configuration of a §5 acceleration recommendation
/// (a bar of Fig. 20).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationConfig {
    /// Display label ("On-chip", "Off-chip:Sync", …).
    pub label: String,
    /// The accelerator under consideration.
    pub accelerator: AcceleratorSpec,
    /// The threading design.
    pub design: ThreadingDesign,
    /// The offload policy (§5 assumes all on-chip offloads yield gains).
    pub policy: OffloadPolicy,
    /// The speedup percent the paper reports for this bar.
    pub paper_speedup_percent: f64,
    /// The latency-reduction percent, where the paper reports one.
    pub paper_latency_percent: Option<f64>,
}

/// A §5 acceleration recommendation: a kernel profile plus the candidate
/// accelerator configurations of Fig. 20.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Display name ("Feed1: Compression", …).
    pub name: String,
    /// The service whose overhead is being accelerated.
    pub service: ServiceId,
    /// The profiled kernel (Table 7 `C`, `α`, total offloads, `Cb`, CDF).
    pub profile: KernelProfile,
    /// The ideal (infinite-acceleration) speedup percent from Fig. 20.
    pub paper_ideal_percent: f64,
    /// The candidate configurations.
    pub configs: Vec<RecommendationConfig>,
}

/// §5 "Compression": Feed1's compression kernel against Chen et al.'s
/// on-chip accelerator (A = 5) and Simek et al.'s off-chip accelerator
/// (A = 27, L = 2,300 cycles) in Sync, Sync-OS (o1 = 5,750), and Async
/// threading. Ideal 17.6%.
#[must_use]
pub fn compression_feed1() -> Recommendation {
    let off_chip = |o1: f64| AcceleratorSpec {
        strategy: AccelerationStrategy::OffChip,
        peak_speedup: 27.0,
        overheads: OffloadOverheads::new(0.0, 2_300.0, 0.0, o1),
    };
    Recommendation {
        name: "Feed1: Compression".to_owned(),
        service: ServiceId::Feed1,
        profile: KernelProfile {
            total_cycles: cycles(2.3e9),
            kernel_fraction: 0.15,
            total_offloads: 15_008.0,
            cost: KernelCost::linear(cycles_per_byte(5.62)),
            granularity: cdf::feed1_compression(),
        },
        paper_ideal_percent: 17.6,
        configs: vec![
            RecommendationConfig {
                label: "On-chip".to_owned(),
                accelerator: AcceleratorSpec {
                    strategy: AccelerationStrategy::OnChip,
                    peak_speedup: 5.0,
                    overheads: OffloadOverheads::NONE,
                },
                design: ThreadingDesign::Sync,
                policy: OffloadPolicy::OffloadAll,
                paper_speedup_percent: 13.6,
                paper_latency_percent: Some(13.6),
            },
            RecommendationConfig {
                label: "Off-chip:Sync".to_owned(),
                accelerator: off_chip(0.0),
                design: ThreadingDesign::Sync,
                policy: OffloadPolicy::SelectiveLucrative,
                paper_speedup_percent: 9.0,
                paper_latency_percent: Some(9.0),
            },
            RecommendationConfig {
                label: "Off-chip:Sync-OS".to_owned(),
                accelerator: off_chip(5_750.0),
                design: ThreadingDesign::SyncOs,
                policy: OffloadPolicy::SelectiveLucrative,
                paper_speedup_percent: 1.6,
                paper_latency_percent: Some(1.4),
            },
            RecommendationConfig {
                label: "Off-chip:Async".to_owned(),
                accelerator: off_chip(0.0),
                design: ThreadingDesign::AsyncNoResponse,
                policy: OffloadPolicy::SelectiveLucrative,
                paper_speedup_percent: 9.6,
                paper_latency_percent: Some(9.2),
            },
        ],
    }
}

/// §5 "Memory Copy": Ads1's copies against an on-chip AVX-style engine
/// (A = 4). Ideal 17.8%; projected 12.7%.
#[must_use]
pub fn memory_copy_ads1() -> Recommendation {
    Recommendation {
        name: "Ads1: Memory copy".to_owned(),
        service: ServiceId::Ads1,
        profile: KernelProfile {
            total_cycles: cycles(2.3e9),
            kernel_fraction: 0.1512,
            total_offloads: 1_473_681.0,
            cost: KernelCost::linear(cycles_per_byte(0.58)),
            granularity: cdf::memory_copy_data(ServiceId::Ads1),
        },
        paper_ideal_percent: 17.8,
        configs: vec![RecommendationConfig {
            label: "On-chip".to_owned(),
            accelerator: AcceleratorSpec {
                strategy: AccelerationStrategy::OnChip,
                peak_speedup: 4.0,
                overheads: OffloadOverheads::NONE,
            },
            design: ThreadingDesign::Sync,
            policy: OffloadPolicy::OffloadAll,
            paper_speedup_percent: 12.7,
            paper_latency_percent: Some(12.7),
        }],
    }
}

/// §5 "Memory Allocation": Cache1's allocations against a Mallacc-style
/// on-chip accelerator (A = 1.5). Ideal 5.8%; projected 1.86%.
#[must_use]
pub fn memory_allocation_cache1() -> Recommendation {
    Recommendation {
        name: "Cache1: Memory allocation".to_owned(),
        service: ServiceId::Cache1,
        profile: KernelProfile {
            total_cycles: cycles(2.0e9),
            kernel_fraction: 0.055,
            total_offloads: 51_695.0,
            cost: KernelCost::linear(cycles_per_byte(8.25)),
            granularity: cdf::memory_allocation_data(ServiceId::Cache1),
        },
        paper_ideal_percent: 5.8,
        configs: vec![RecommendationConfig {
            label: "On-chip".to_owned(),
            accelerator: AcceleratorSpec {
                strategy: AccelerationStrategy::OnChip,
                peak_speedup: 1.5,
                overheads: OffloadOverheads::NONE,
            },
            design: ThreadingDesign::Sync,
            policy: OffloadPolicy::OffloadAll,
            paper_speedup_percent: 1.86,
            paper_latency_percent: Some(1.86),
        }],
    }
}

/// All §5 recommendations in Fig. 20 order.
///
/// Routed through the active [`crate::registry::ServiceRegistry`] when
/// one is installed (`--services`); bit-exact for unmodified data files.
#[must_use]
pub fn all_recommendations() -> Vec<Recommendation> {
    if let Some(reg) = crate::registry::active_registry() {
        return reg.recommendations();
    }
    builtin_recommendations()
}

/// The built-in Fig. 20 recommendations, bypassing any active registry.
#[must_use]
pub fn builtin_recommendations() -> Vec<Recommendation> {
    vec![
        compression_feed1(),
        memory_copy_ads1(),
        memory_allocation_cache1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer::project;

    #[test]
    fn table6_model_estimates_match_paper() {
        for cs in all_case_studies() {
            let est = cs.scenario.estimate();
            assert!(
                (est.throughput_gain_percent() - cs.paper_estimated_percent).abs() < 0.1,
                "{}: model {:.2}% vs paper {:.2}%",
                cs.name,
                est.throughput_gain_percent(),
                cs.paper_estimated_percent
            );
        }
    }

    #[test]
    fn table6_paper_errors_at_most_3_7_points() {
        // The paper's headline: Accelerometer estimates real speedup with
        // ≤ 3.7% error.
        for cs in all_case_studies() {
            assert!(cs.paper_error_points() <= 3.7 + 1e-9, "{}", cs.name);
        }
        assert!((inference_ads1().paper_error_points() - 3.7).abs() < 0.01);
    }

    #[test]
    fn fig20_projections_match_paper() {
        for rec in all_recommendations() {
            for cfg in &rec.configs {
                let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy).unwrap();
                let got = p.estimate.throughput_gain_percent();
                assert!(
                    (got - cfg.paper_speedup_percent).abs() < 0.35,
                    "{} {}: model {:.2}% vs paper {:.2}%",
                    rec.name,
                    cfg.label,
                    got,
                    cfg.paper_speedup_percent
                );
            }
        }
    }

    #[test]
    fn fig20_ideal_bars_match_paper() {
        for rec in all_recommendations() {
            let ideal = (1.0 / (1.0 - rec.profile.kernel_fraction) - 1.0) * 100.0;
            assert!(
                (ideal - rec.paper_ideal_percent).abs() < 0.3,
                "{}: ideal {:.2}% vs paper {:.2}%",
                rec.name,
                ideal,
                rec.paper_ideal_percent
            );
        }
    }

    #[test]
    fn fig20_async_latency_matches_paper() {
        let rec = compression_feed1();
        let cfg = rec
            .configs
            .iter()
            .find(|c| c.label == "Off-chip:Async")
            .unwrap();
        let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy).unwrap();
        assert!((p.estimate.latency_gain_percent() - 9.2).abs() < 0.3);
    }

    #[test]
    fn compression_breakeven_selects_paper_counts() {
        let rec = compression_feed1();
        let sync = &rec.configs[1];
        let p = project(&rec.profile, &sync.accelerator, sync.design, sync.policy).unwrap();
        assert!((p.breakeven.threshold().unwrap().get() - 425.0).abs() < 1.0);
        assert!((p.selection.offloads - 9_629.0).abs() < 60.0);
        let sync_os = &rec.configs[2];
        let p = project(&rec.profile, &sync_os.accelerator, sync_os.design, sync_os.policy).unwrap();
        assert!((p.selection.offloads - 3_986.0).abs() < 60.0);
        let async_cfg = &rec.configs[3];
        let p = project(&rec.profile, &async_cfg.accelerator, async_cfg.design, async_cfg.policy)
            .unwrap();
        assert!((p.selection.offloads - 9_769.0).abs() < 60.0);
    }

    #[test]
    fn kernel_cost_is_consistent_with_rates() {
        // Cb ≈ α·C/(n·E[g]) should hold within ~25% for every profiled
        // kernel (the paper derives Cb from micro-benchmarks, so exact
        // agreement with profile attribution is not expected).
        for rec in all_recommendations() {
            let p = &rec.profile;
            let implied = p.kernel_fraction * p.total_cycles.get()
                / (p.total_offloads * p.granularity.mean_bytes().get());
            let ratio = implied / p.cost.cycles_per_byte.get();
            assert!(
                (0.7..=1.4).contains(&ratio),
                "{}: implied Cb {:.2} vs stated {:.2}",
                rec.name,
                implied,
                p.cost.cycles_per_byte.get()
            );
        }
    }

    #[test]
    fn case_study_threading_covers_all_three_designs() {
        // §4: "With these studies, we validate all three microservice
        // threading scenarios."
        let designs: Vec<ThreadingDesign> =
            all_case_studies().iter().map(|c| c.scenario.design).collect();
        assert!(designs.contains(&ThreadingDesign::Sync));
        assert!(designs.contains(&ThreadingDesign::AsyncNoResponse));
        assert!(designs.contains(&ThreadingDesign::AsyncDistinctThread));
        // And all three strategies.
        let strategies: Vec<AccelerationStrategy> =
            all_case_studies().iter().map(|c| c.scenario.strategy).collect();
        assert_eq!(strategies.len(), 3);
        assert!(strategies.contains(&AccelerationStrategy::OnChip));
        assert!(strategies.contains(&AccelerationStrategy::OffChip));
        assert!(strategies.contains(&AccelerationStrategy::Remote));
    }
}
