//! Feed1 and Feed2: the News Feed microservices (§2.1).

use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::GEN_C_18;
use crate::services::{bd, ServiceId, ServiceProfile, ServiceRates};

/// Feed1 (§2.1): News Feed ranking. Constraints: 15% of cycles in
/// compression with 15,008 compressions/s (Table 7); inference-dominated
/// (58% → an infinite inference accelerator yields 2.38×, the §2.4 upper
/// bound) with the remaining 42% orchestrating it (the low end of §2.4's
/// 42%–67% range); memory leaves only 8%, three quarters of which are
/// copies so the Fig. 4 net copy share is ≈6%; high thread-pool overhead
/// (§2.4).
pub(super) fn feed1() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Feed1,
        functionality: bd(&[
            (F::SecureInsecureIo, 8.0),
            (F::IoPrePostProcessing, 3.0),
            (F::Compression, 15.0),
            (F::Serialization, 6.0),
            (F::PredictionRanking, 58.0),
            (F::ThreadPoolManagement, 5.0),
            (F::Miscellaneous, 5.0),
        ]),
        leaves: bd(&[
            (L::Memory, 8.0),
            (L::Kernel, 3.0),
            (L::Hashing, 1.0),
            (L::Synchronization, 1.0),
            (L::Zstd, 11.0),
            (L::Math, 37.0),
            (L::CLibraries, 5.0),
            (L::Miscellaneous, 34.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 73.0),
            (MemoryOp::Free, 10.0),
            (MemoryOp::Allocation, 9.0),
            (MemoryOp::Move, 3.0),
            (MemoryOp::Set, 3.0),
            (MemoryOp::Compare, 2.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 9.0),
            (CopyOrigin::IoPrePostProcessing, 25.0),
            (CopyOrigin::Serialization, 50.0),
            (CopyOrigin::ApplicationLogic, 16.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 14.0),
            (KernelOp::EventHandling, 9.0),
            (KernelOp::Network, 12.0),
            (KernelOp::Synchronization, 8.0),
            (KernelOp::MemoryManagement, 27.0),
            (KernelOp::Miscellaneous, 30.0),
        ]),
        sync_ops: bd(&[(SyncPrimitive::Mutex, 100.0)]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 3.0),
            (CLibOp::CtorsDtors, 5.0),
            (CLibOp::Strings, 5.0),
            (CLibOp::HashTables, 10.0),
            (CLibOp::Vectors, 53.0),
            (CLibOp::Trees, 6.0),
            (CLibOp::OperatorOverride, 10.0),
            (CLibOp::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.3e9,
            compressions_per_second: 15_008.0,
            copies_per_second: 420_000.0,
            allocations_per_second: 95_000.0,
            encryptions_per_second: 12_000.0,
        },
        platform: GEN_C_18,
    }
}

/// Feed2 (§2.1): News Feed aggregation. Constraints: inference at the
/// §2.4 lower bound (33% → a 1.49× ceiling, the paper's "only 49%"
/// headline), making it the service that spends 67% of cycles
/// orchestrating inference (the high end of §2.4's range); heavy feature
/// extraction; C libraries dominated by vector operations on feature
/// data (§2.3.4); high thread-pool overhead.
pub(super) fn feed2() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Feed2,
        functionality: bd(&[
            (F::SecureInsecureIo, 7.0),
            (F::IoPrePostProcessing, 3.0),
            (F::Compression, 6.0),
            (F::Serialization, 9.0),
            (F::FeatureExtraction, 28.0),
            (F::PredictionRanking, 33.0),
            (F::Logging, 2.0),
            (F::ThreadPoolManagement, 10.0),
            (F::Miscellaneous, 2.0),
        ]),
        leaves: bd(&[
            (L::Memory, 20.0),
            (L::Kernel, 1.0),
            (L::Hashing, 2.0),
            (L::Synchronization, 3.0),
            (L::Zstd, 4.0),
            (L::Math, 13.0),
            (L::CLibraries, 37.0),
            (L::Miscellaneous, 20.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 40.0),
            (MemoryOp::Free, 19.0),
            (MemoryOp::Allocation, 22.0),
            (MemoryOp::Move, 8.0),
            (MemoryOp::Set, 6.0),
            (MemoryOp::Compare, 5.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 8.0),
            (CopyOrigin::IoPrePostProcessing, 17.0),
            (CopyOrigin::Serialization, 45.0),
            (CopyOrigin::ApplicationLogic, 30.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 19.0),
            (KernelOp::EventHandling, 5.0),
            (KernelOp::Network, 16.0),
            (KernelOp::Synchronization, 13.0),
            (KernelOp::MemoryManagement, 20.0),
            (KernelOp::Miscellaneous, 27.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 26.0),
            (SyncPrimitive::Mutex, 63.0),
            (SyncPrimitive::CompareExchange, 11.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 15.0),
            (CLibOp::CtorsDtors, 6.0),
            (CLibOp::Strings, 1.0),
            (CLibOp::HashTables, 15.0),
            (CLibOp::Vectors, 34.0),
            (CLibOp::Trees, 1.0),
            (CLibOp::OperatorOverride, 18.0),
            (CLibOp::Miscellaneous, 10.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.3e9,
            compressions_per_second: 9_500.0,
            copies_per_second: 600_000.0,
            allocations_per_second: 140_000.0,
            encryptions_per_second: 10_000.0,
        },
        platform: GEN_C_18,
    }
}

