//! Web: the HipHop VM web tier (§2.1).

use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::GEN_C_18;
use crate::services::{bd, ServiceId, ServiceProfile, ServiceRates};

/// Web (§2.1, §2.4): HipHop VM. Constraints: only 18% of cycles in core
/// web-serving logic; 23% in reading/updating logs; significant I/O from
/// its many URL endpoints; memory leaves are its largest category at 37%
/// (§2.3.1's "37% of cycles" maximum); C libraries heavy in strings and
/// hash-table look-ups (§2.3.4); copies dominated by I/O pre/post
/// processing (§2.3.1, Fig. 4 discussion).
pub(super) fn web() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Web,
        functionality: bd(&[
            (F::SecureInsecureIo, 15.0),
            (F::IoPrePostProcessing, 10.0),
            (F::Compression, 9.0),
            (F::Serialization, 7.0),
            (F::ApplicationLogic, 18.0),
            (F::Logging, 23.0),
            (F::ThreadPoolManagement, 4.0),
            (F::Miscellaneous, 14.0),
        ]),
        leaves: bd(&[
            (L::Memory, 37.0),
            (L::Kernel, 7.0),
            (L::Hashing, 2.0),
            (L::Synchronization, 2.0),
            (L::Zstd, 5.0),
            (L::Ssl, 1.0),
            (L::CLibraries, 31.0),
            (L::Miscellaneous, 15.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 35.0),
            (MemoryOp::Free, 20.0),
            (MemoryOp::Allocation, 25.0),
            (MemoryOp::Move, 8.0),
            (MemoryOp::Set, 7.0),
            (MemoryOp::Compare, 5.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 17.0),
            (CopyOrigin::IoPrePostProcessing, 46.0),
            (CopyOrigin::Serialization, 17.0),
            (CopyOrigin::ApplicationLogic, 20.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 19.0),
            (KernelOp::EventHandling, 10.0),
            (KernelOp::Network, 16.0),
            (KernelOp::Synchronization, 12.0),
            (KernelOp::MemoryManagement, 10.0),
            (KernelOp::Miscellaneous, 33.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 6.0),
            (SyncPrimitive::Mutex, 71.0),
            (SyncPrimitive::CompareExchange, 12.0),
            (SyncPrimitive::SpinLock, 11.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 5.0),
            (CLibOp::CtorsDtors, 5.0),
            (CLibOp::Strings, 32.0),
            (CLibOp::HashTables, 24.0),
            (CLibOp::Vectors, 6.0),
            (CLibOp::Trees, 1.0),
            (CLibOp::OperatorOverride, 16.0),
            (CLibOp::Miscellaneous, 11.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.2e9,
            compressions_per_second: 22_000.0,
            copies_per_second: 900_000.0,
            allocations_per_second: 160_000.0,
            encryptions_per_second: 30_000.0,
        },
        platform: GEN_C_18,
    }
}

