//! Cache1, Cache2, and Cache3: the caching microservices (§2.1, §4).

use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::GEN_C_20;
use crate::services::{bd, ServiceId, ServiceProfile, ServiceRates};

/// Cache1 (§2.1): the cache mid tier. Constraints: encryption (secure
/// I/O) is 16.58% of cycles with 298,951 encryptions/s (Table 6's AES-NI
/// `α = 0.165844`); 6% of cycles in SSL leaves (§2.3); memory 26% with a
/// 21% allocation share so the allocation fraction is ≈ Table 7's
/// `α = 0.055` with 51,695 allocations/s; high kernel share with frequent
/// scheduler invocations (§2.3.2); 19% synchronization dominated by spin
/// locks (§2.3.3); compression + serialization overheads dominate the
/// abstract's cache discussion.
pub(super) fn cache1() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Cache1,
        functionality: bd(&[
            (F::SecureInsecureIo, 42.0),
            (F::IoPrePostProcessing, 12.0),
            (F::Compression, 10.0),
            (F::Serialization, 13.0),
            (F::ApplicationLogic, 14.0),
            (F::ThreadPoolManagement, 7.0),
            (F::Miscellaneous, 2.0),
        ]),
        leaves: bd(&[
            (L::Memory, 26.0),
            (L::Kernel, 22.0),
            (L::Hashing, 4.0),
            (L::Synchronization, 19.0),
            (L::Zstd, 7.0),
            (L::Ssl, 6.0),
            (L::CLibraries, 13.0),
            (L::Miscellaneous, 3.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 46.0),
            (MemoryOp::Free, 18.0),
            (MemoryOp::Allocation, 21.0),
            (MemoryOp::Move, 5.0),
            (MemoryOp::Set, 6.0),
            (MemoryOp::Compare, 4.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 36.0),
            (CopyOrigin::IoPrePostProcessing, 8.0),
            (CopyOrigin::Serialization, 10.0),
            (CopyOrigin::ApplicationLogic, 46.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 30.0),
            (KernelOp::EventHandling, 20.0),
            (KernelOp::Network, 23.0),
            (KernelOp::Synchronization, 12.0),
            (KernelOp::MemoryManagement, 8.0),
            (KernelOp::Miscellaneous, 7.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 10.0),
            (SyncPrimitive::Mutex, 20.0),
            (SyncPrimitive::SpinLock, 70.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 3.0),
            (CLibOp::CtorsDtors, 2.0),
            (CLibOp::Strings, 18.0),
            (CLibOp::HashTables, 47.0),
            (CLibOp::Vectors, 16.0),
            (CLibOp::OperatorOverride, 6.0),
            (CLibOp::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.0e9,
            compressions_per_second: 21_000.0,
            copies_per_second: 750_000.0,
            allocations_per_second: 51_695.0,
            encryptions_per_second: 298_951.0,
        },
        platform: GEN_C_20,
    }
}

/// Cache2 (§2.1): the cache front tier. Constraints: 52% of cycles
/// sending/receiving I/O (abstract); the highest kernel share (44%) with
/// significant network-stack time (§2.3.2); spin-lock-heavy
/// synchronization; copies dominated by the network protocol stack
/// (§2.3.1's "Cache2 can gain from fewer copies in network protocol
/// stacks").
pub(super) fn cache2() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Cache2,
        functionality: bd(&[
            (F::SecureInsecureIo, 52.0),
            (F::IoPrePostProcessing, 12.0),
            (F::Compression, 5.0),
            (F::Serialization, 12.0),
            (F::ApplicationLogic, 12.0),
            (F::ThreadPoolManagement, 3.0),
            (F::Miscellaneous, 4.0),
        ]),
        leaves: bd(&[
            (L::Memory, 19.0),
            (L::Kernel, 44.0),
            (L::Hashing, 3.0),
            (L::Synchronization, 10.0),
            (L::Zstd, 4.0),
            (L::Ssl, 3.0),
            (L::CLibraries, 10.0),
            (L::Miscellaneous, 7.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 58.0),
            (MemoryOp::Free, 16.0),
            (MemoryOp::Allocation, 12.0),
            (MemoryOp::Move, 5.0),
            (MemoryOp::Set, 5.0),
            (MemoryOp::Compare, 4.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 50.0),
            (CopyOrigin::IoPrePostProcessing, 8.0),
            (CopyOrigin::Serialization, 13.0),
            (CopyOrigin::ApplicationLogic, 29.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 32.0),
            (KernelOp::EventHandling, 10.0),
            (KernelOp::Network, 31.0),
            (KernelOp::Synchronization, 7.0),
            (KernelOp::MemoryManagement, 10.0),
            (KernelOp::Miscellaneous, 10.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 5.0),
            (SyncPrimitive::Mutex, 9.0),
            (SyncPrimitive::SpinLock, 86.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 5.0),
            (CLibOp::CtorsDtors, 5.0),
            (CLibOp::Strings, 13.0),
            (CLibOp::HashTables, 60.0),
            (CLibOp::OperatorOverride, 2.0),
            (CLibOp::Miscellaneous, 15.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.1e9,
            compressions_per_second: 14_000.0,
            copies_per_second: 950_000.0,
            allocations_per_second: 48_000.0,
            encryptions_per_second: 200_000.0,
        },
        platform: GEN_C_20,
    }
}

/// Cache3 (§4, case study 2): a caching service similar to Cache1 and
/// Cache2. Constraints: encryption (secure I/O share) is 19.15% of cycles
/// (Table 6's `α = 0.19154`) with 101,863 encryptions/s; Fig. 17's legend
/// shows no compression category.
pub(super) fn cache3() -> ServiceProfile {
    let base = cache1();
    ServiceProfile {
        id: ServiceId::Cache3,
        functionality: bd(&[
            (F::SecureInsecureIo, 48.0),
            (F::IoPrePostProcessing, 14.0),
            (F::Serialization, 14.0),
            (F::ApplicationLogic, 16.0),
            (F::ThreadPoolManagement, 6.0),
            (F::Miscellaneous, 2.0),
        ]),
        leaves: bd(&[
            (L::Memory, 24.0),
            (L::Kernel, 25.0),
            (L::Hashing, 4.0),
            (L::Synchronization, 16.0),
            (L::Ssl, 8.0),
            (L::CLibraries, 15.0),
            (L::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.3e9,
            compressions_per_second: 0.0,
            copies_per_second: 700_000.0,
            allocations_per_second: 45_000.0,
            encryptions_per_second: 101_863.0,
        },
        platform: GEN_C_20,
        ..base
    }
}

