//! Ads1 and Ads2: the ad-serving microservices (§2.1).

use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::{GEN_C_18, GEN_C_20};
use crate::services::{bd, ServiceId, ServiceProfile, ServiceRates};

/// Ads1 (§2.1): the ads user-data service. Constraints: inference is 52%
/// of cycles (Table 6's remote-inference `α = 0.52`); memory leaves 28%
/// with a 54% copy share so the total copy fraction is exactly Table 7's
/// `α = 0.1512` with 1,473,681 copies/s; highest copy overhead of the
/// seven (§5); high thread-pool overhead (§2.4).
pub(super) fn ads1() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Ads1,
        functionality: bd(&[
            (F::SecureInsecureIo, 9.0),
            (F::IoPrePostProcessing, 2.0),
            (F::Compression, 3.0),
            (F::Serialization, 6.0),
            (F::FeatureExtraction, 8.0),
            (F::PredictionRanking, 52.0),
            (F::ApplicationLogic, 6.0),
            (F::ThreadPoolManagement, 9.0),
            (F::Miscellaneous, 5.0),
        ]),
        leaves: bd(&[
            (L::Memory, 28.0),
            (L::Kernel, 11.0),
            (L::Hashing, 2.0),
            (L::Synchronization, 3.0),
            (L::Zstd, 2.0),
            (L::Math, 10.0),
            (L::Ssl, 2.0),
            (L::CLibraries, 17.0),
            (L::Miscellaneous, 25.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 54.0),
            (MemoryOp::Free, 15.0),
            (MemoryOp::Allocation, 18.0),
            (MemoryOp::Move, 6.0),
            (MemoryOp::Set, 4.0),
            (MemoryOp::Compare, 3.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 17.0),
            (CopyOrigin::IoPrePostProcessing, 9.0),
            (CopyOrigin::Serialization, 50.0),
            (CopyOrigin::ApplicationLogic, 24.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 19.0),
            (KernelOp::EventHandling, 20.0),
            (KernelOp::Network, 17.0),
            (KernelOp::Synchronization, 7.0),
            (KernelOp::MemoryManagement, 10.0),
            (KernelOp::Miscellaneous, 27.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 41.0),
            (SyncPrimitive::Mutex, 59.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 19.0),
            (CLibOp::CtorsDtors, 11.0),
            (CLibOp::Strings, 6.0),
            (CLibOp::HashTables, 13.0),
            (CLibOp::Vectors, 32.0),
            (CLibOp::OperatorOverride, 11.0),
            (CLibOp::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.3e9,
            compressions_per_second: 4_800.0,
            copies_per_second: 1_473_681.0,
            allocations_per_second: 120_000.0,
            encryptions_per_second: 25_000.0,
        },
        platform: GEN_C_18,
    }
}

/// Ads2 (§2.1): the ads ad-data service. Constraints: math leaves at the
/// §2.3 "up to 13%" bound for ML services; memory 28%; vector-heavy C
/// libraries.
pub(super) fn ads2() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Ads2,
        functionality: bd(&[
            (F::SecureInsecureIo, 10.0),
            (F::IoPrePostProcessing, 3.0),
            (F::Compression, 2.0),
            (F::Serialization, 8.0),
            (F::FeatureExtraction, 15.0),
            (F::PredictionRanking, 40.0),
            (F::ApplicationLogic, 17.0),
            (F::ThreadPoolManagement, 4.0),
            (F::Miscellaneous, 1.0),
        ]),
        leaves: bd(&[
            (L::Memory, 28.0),
            (L::Kernel, 4.0),
            (L::Hashing, 2.0),
            (L::Synchronization, 5.0),
            (L::Zstd, 1.0),
            (L::Math, 13.0),
            (L::CLibraries, 42.0),
            (L::Miscellaneous, 5.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 43.0),
            (MemoryOp::Free, 21.0),
            (MemoryOp::Allocation, 20.0),
            (MemoryOp::Move, 7.0),
            (MemoryOp::Set, 5.0),
            (MemoryOp::Compare, 4.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 13.0),
            (CopyOrigin::IoPrePostProcessing, 7.0),
            (CopyOrigin::Serialization, 38.0),
            (CopyOrigin::ApplicationLogic, 42.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 47.0),
            (KernelOp::EventHandling, 9.0),
            (KernelOp::Network, 18.0),
            (KernelOp::Synchronization, 16.0),
            (KernelOp::MemoryManagement, 10.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 50.0),
            (SyncPrimitive::Mutex, 50.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 8.0),
            (CLibOp::CtorsDtors, 3.0),
            (CLibOp::Strings, 6.0),
            (CLibOp::HashTables, 10.0),
            (CLibOp::Vectors, 53.0),
            (CLibOp::Trees, 6.0),
            (CLibOp::OperatorOverride, 6.0),
            (CLibOp::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.4e9,
            compressions_per_second: 3_200.0,
            copies_per_second: 800_000.0,
            allocations_per_second: 110_000.0,
            encryptions_per_second: 18_000.0,
        },
        platform: GEN_C_20,
    }
}

