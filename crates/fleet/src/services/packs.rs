//! The three workload packs shipped as data files under
//! `configs/services/`: services *beyond* the paper's seven, built from
//! the tax breakdowns of the related work (see PAPERS.md) and exported
//! to JSON by the service registry.
//!
//! These constructors are the exporters' source of truth — the committed
//! JSON files are generated from them (`accelctl services export`) and a
//! lockstep test keeps file and constructor identical. None of the
//! percentages below is a paper figure; each profile's doc comment names
//! the source it is modeled on.

use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::{GEN_C_18, GEN_C_20};
use crate::services::{bd, ServiceId, ServiceProfile, ServiceRates};

/// AI-inference pack, modeled on the "AI Tax" breakdown: MLP inference
/// (`kernels::mlp`) is the core, but pre/post-processing — feature
/// extraction, (de)serialization, I/O framing — taxes more cycles than
/// the inference itself (31% inference vs 60% orchestration). Math
/// leaves (vectorized MLP kernels) and memory traffic dominate; vectors
/// dominate the C-library mix as in the paper's ML services.
pub(super) fn ai_inference() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::AiInference,
        functionality: bd(&[
            (F::SecureInsecureIo, 9.0),
            (F::IoPrePostProcessing, 14.0),
            (F::Serialization, 10.0),
            (F::FeatureExtraction, 12.0),
            (F::PredictionRanking, 31.0),
            (F::ApplicationLogic, 9.0),
            (F::Logging, 5.0),
            (F::ThreadPoolManagement, 4.0),
            (F::Miscellaneous, 6.0),
        ]),
        leaves: bd(&[
            (L::Memory, 24.0),
            (L::Kernel, 9.0),
            (L::Hashing, 3.0),
            (L::Synchronization, 7.0),
            (L::Math, 22.0),
            (L::Ssl, 5.0),
            (L::CLibraries, 14.0),
            (L::Miscellaneous, 16.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 46.0),
            (MemoryOp::Free, 12.0),
            (MemoryOp::Allocation, 24.0),
            (MemoryOp::Move, 5.0),
            (MemoryOp::Set, 9.0),
            (MemoryOp::Compare, 4.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 14.0),
            (CopyOrigin::IoPrePostProcessing, 38.0),
            (CopyOrigin::Serialization, 30.0),
            (CopyOrigin::ApplicationLogic, 18.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 30.0),
            (KernelOp::EventHandling, 18.0),
            (KernelOp::Network, 22.0),
            (KernelOp::Synchronization, 12.0),
            (KernelOp::MemoryManagement, 10.0),
            (KernelOp::Miscellaneous, 8.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 30.0),
            (SyncPrimitive::Mutex, 44.0),
            (SyncPrimitive::CompareExchange, 16.0),
            (SyncPrimitive::SpinLock, 10.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 16.0),
            (CLibOp::CtorsDtors, 14.0),
            (CLibOp::Strings, 8.0),
            (CLibOp::HashTables, 10.0),
            (CLibOp::Vectors, 40.0),
            (CLibOp::Trees, 2.0),
            (CLibOp::OperatorOverride, 4.0),
            (CLibOp::Miscellaneous, 6.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.5e9,
            compressions_per_second: 0.0,
            copies_per_second: 900_000.0,
            allocations_per_second: 150_000.0,
            encryptions_per_second: 60_000.0,
        },
        platform: GEN_C_18,
    }
}

/// Kvstore pack, modeled on the "Offloading Data Center Tax" storage
/// breakdown and on this repo's `kernels::kvstore` (the SSE2 tag-probed
/// shard from PR 8, whose measured probe costs ground the hashing and
/// compare shares). Key-value serving is core application logic as in
/// Cache1; hashing (tag probes) and memory compares (key checks) are
/// far above the paper services; spin locks dominate synchronization as
/// in the µs-scale caches.
pub(super) fn kvstore() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Kvstore,
        functionality: bd(&[
            (F::SecureInsecureIo, 22.0),
            (F::IoPrePostProcessing, 14.0),
            (F::Compression, 5.0),
            (F::Serialization, 8.0),
            (F::ApplicationLogic, 34.0),
            (F::Logging, 6.0),
            (F::ThreadPoolManagement, 5.0),
            (F::Miscellaneous, 6.0),
        ]),
        leaves: bd(&[
            (L::Memory, 28.0),
            (L::Kernel, 18.0),
            (L::Hashing, 11.0),
            (L::Synchronization, 9.0),
            (L::Zstd, 4.0),
            (L::Ssl, 4.0),
            (L::CLibraries, 13.0),
            (L::Miscellaneous, 13.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 50.0),
            (MemoryOp::Free, 13.0),
            (MemoryOp::Allocation, 21.0),
            (MemoryOp::Move, 3.0),
            (MemoryOp::Set, 5.0),
            (MemoryOp::Compare, 8.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 26.0),
            (CopyOrigin::IoPrePostProcessing, 18.0),
            (CopyOrigin::Serialization, 10.0),
            (CopyOrigin::ApplicationLogic, 46.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 18.0),
            (KernelOp::EventHandling, 22.0),
            (KernelOp::Network, 34.0),
            (KernelOp::Synchronization, 10.0),
            (KernelOp::MemoryManagement, 9.0),
            (KernelOp::Miscellaneous, 7.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 26.0),
            (SyncPrimitive::Mutex, 16.0),
            (SyncPrimitive::CompareExchange, 10.0),
            (SyncPrimitive::SpinLock, 48.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 14.0),
            (CLibOp::CtorsDtors, 12.0),
            (CLibOp::Strings, 22.0),
            (CLibOp::HashTables, 36.0),
            (CLibOp::Vectors, 3.0),
            (CLibOp::Trees, 4.0),
            (CLibOp::OperatorOverride, 3.0),
            (CLibOp::Miscellaneous, 6.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.2e9,
            compressions_per_second: 9_500.0,
            copies_per_second: 820_000.0,
            allocations_per_second: 60_000.0,
            encryptions_per_second: 48_000.0,
        },
        platform: GEN_C_20,
    }
}

/// Post-quantum-crypto pack: a transport tier whose cycle budget is
/// dominated by lattice KEM/signature work (encapsulation on every
/// connection, hash-based XOFs, constant-time compares, buffer
/// zeroization). Secure I/O is the largest functionality at 44%; SSL,
/// Math (NTT polynomial arithmetic), and Hashing (Keccak/SHAKE) lead
/// the leaves; memory-set (zeroization) and memory-compare
/// (constant-time tag checks) are far above the paper services.
pub(super) fn pqc() -> ServiceProfile {
    ServiceProfile {
        id: ServiceId::Pqc,
        functionality: bd(&[
            (F::SecureInsecureIo, 44.0),
            (F::IoPrePostProcessing, 12.0),
            (F::Serialization, 9.0),
            (F::ApplicationLogic, 17.0),
            (F::Logging, 5.0),
            (F::ThreadPoolManagement, 4.0),
            (F::Miscellaneous, 9.0),
        ]),
        leaves: bd(&[
            (L::Memory, 17.0),
            (L::Kernel, 8.0),
            (L::Hashing, 14.0),
            (L::Synchronization, 4.0),
            (L::Math, 16.0),
            (L::Ssl, 30.0),
            (L::CLibraries, 6.0),
            (L::Miscellaneous, 5.0),
        ]),
        memory_ops: bd(&[
            (MemoryOp::Copy, 44.0),
            (MemoryOp::Free, 10.0),
            (MemoryOp::Allocation, 18.0),
            (MemoryOp::Move, 5.0),
            (MemoryOp::Set, 14.0),
            (MemoryOp::Compare, 9.0),
        ]),
        copy_origins: bd(&[
            (CopyOrigin::SecureInsecureIo, 48.0),
            (CopyOrigin::IoPrePostProcessing, 26.0),
            (CopyOrigin::Serialization, 16.0),
            (CopyOrigin::ApplicationLogic, 10.0),
        ]),
        kernel_ops: bd(&[
            (KernelOp::Scheduler, 24.0),
            (KernelOp::EventHandling, 18.0),
            (KernelOp::Network, 30.0),
            (KernelOp::Synchronization, 11.0),
            (KernelOp::MemoryManagement, 9.0),
            (KernelOp::Miscellaneous, 8.0),
        ]),
        sync_ops: bd(&[
            (SyncPrimitive::Atomics, 28.0),
            (SyncPrimitive::Mutex, 40.0),
            (SyncPrimitive::CompareExchange, 18.0),
            (SyncPrimitive::SpinLock, 14.0),
        ]),
        clib_ops: bd(&[
            (CLibOp::StdAlgorithms, 12.0),
            (CLibOp::CtorsDtors, 10.0),
            (CLibOp::Strings, 18.0),
            (CLibOp::HashTables, 12.0),
            (CLibOp::Vectors, 30.0),
            (CLibOp::Trees, 4.0),
            (CLibOp::OperatorOverride, 6.0),
            (CLibOp::Miscellaneous, 8.0),
        ]),
        rates: ServiceRates {
            host_cycles_per_second: 2.3e9,
            compressions_per_second: 0.0,
            copies_per_second: 700_000.0,
            allocations_per_second: 52_000.0,
            encryptions_per_second: 180_000.0,
        },
        platform: GEN_C_18,
    }
}
