//! CPU platforms (Table 1): the three server generations the paper's IPC
//! scaling study spans.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A CPU generation in the paper's fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CpuGeneration {
    /// GenA: Intel Haswell.
    GenA,
    /// GenB: Intel Broadwell.
    GenB,
    /// GenC: Intel Skylake (the generation the characterization ran on).
    GenC,
}

impl CpuGeneration {
    /// All generations, oldest first.
    pub const ALL: [CpuGeneration; 3] =
        [CpuGeneration::GenA, CpuGeneration::GenB, CpuGeneration::GenC];

    /// The microarchitecture name.
    #[must_use]
    pub fn microarchitecture(self) -> &'static str {
        match self {
            CpuGeneration::GenA => "Intel Haswell",
            CpuGeneration::GenB => "Intel Broadwell",
            CpuGeneration::GenC => "Intel Skylake",
        }
    }

    /// Theoretical peak IPC per core (§2.3.5 quotes 4.0 for GenC; all
    /// three generations are 4-wide at retirement).
    #[must_use]
    pub fn peak_ipc(self) -> f64 {
        4.0
    }
}

impl fmt::Display for CpuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CpuGeneration::GenA => "GenA",
            CpuGeneration::GenB => "GenB",
            CpuGeneration::GenC => "GenC",
        };
        f.write_str(name)
    }
}

/// A concrete platform configuration from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPlatform {
    /// The generation.
    pub generation: CpuGeneration,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// SMT ways per core.
    pub smt: u32,
    /// Cache-block size in bytes.
    pub cache_block_bytes: u32,
    /// Per-core L1 instruction cache in KiB.
    pub l1i_kib: u32,
    /// Per-core L1 data cache in KiB.
    pub l1d_kib: u32,
    /// Per-core private L2 in KiB.
    pub l2_kib: u32,
    /// Shared last-level cache in KiB.
    pub llc_kib: u32,
}

impl CpuPlatform {
    /// Hardware threads per socket.
    #[must_use]
    pub fn hardware_threads(&self) -> u32 {
        self.cores_per_socket * self.smt
    }

    /// Shared LLC per core, in KiB.
    #[must_use]
    pub fn llc_per_core_kib(&self) -> f64 {
        f64::from(self.llc_kib) / f64::from(self.cores_per_socket)
    }
}

/// Table 1, column GenA: 12-core Haswell.
pub const GEN_A: CpuPlatform = CpuPlatform {
    generation: CpuGeneration::GenA,
    cores_per_socket: 12,
    smt: 2,
    cache_block_bytes: 64,
    l1i_kib: 32,
    l1d_kib: 32,
    l2_kib: 256,
    llc_kib: 30 * 1024,
};

/// Table 1, column GenB: 16-core Broadwell.
pub const GEN_B: CpuPlatform = CpuPlatform {
    generation: CpuGeneration::GenB,
    cores_per_socket: 16,
    smt: 2,
    cache_block_bytes: 64,
    l1i_kib: 32,
    l1d_kib: 32,
    l2_kib: 256,
    llc_kib: 24 * 1024,
};

/// Table 1, GenC variant 1: the 18-core Skylake running Web, Feed1,
/// Feed2, and Ads1 (24.75 MiB LLC).
pub const GEN_C_18: CpuPlatform = CpuPlatform {
    generation: CpuGeneration::GenC,
    cores_per_socket: 18,
    smt: 2,
    cache_block_bytes: 64,
    l1i_kib: 32,
    l1d_kib: 32,
    l2_kib: 1024,
    llc_kib: 25_344, // 24.75 MiB
};

/// Table 1, GenC variant 2: the 20-core Skylake running Ads2, Cache1, and
/// Cache2 (27 MiB LLC).
pub const GEN_C_20: CpuPlatform = CpuPlatform {
    generation: CpuGeneration::GenC,
    cores_per_socket: 20,
    smt: 2,
    cache_block_bytes: 64,
    l1i_kib: 32,
    l1d_kib: 32,
    l2_kib: 1024,
    llc_kib: 27 * 1024,
};

/// All Table 1 platforms in presentation order.
pub const ALL_PLATFORMS: [CpuPlatform; 4] = [GEN_A, GEN_B, GEN_C_18, GEN_C_20];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_counts() {
        assert_eq!(GEN_A.cores_per_socket, 12);
        assert_eq!(GEN_B.cores_per_socket, 16);
        assert_eq!(GEN_C_18.cores_per_socket, 18);
        assert_eq!(GEN_C_20.cores_per_socket, 20);
    }

    #[test]
    fn table1_cache_hierarchy() {
        // Skylake grew the private L2 to 1 MiB.
        assert_eq!(GEN_A.l2_kib, 256);
        assert_eq!(GEN_B.l2_kib, 256);
        assert_eq!(GEN_C_18.l2_kib, 1024);
        // LLC sizes.
        assert_eq!(GEN_A.llc_kib, 30 * 1024);
        assert_eq!(GEN_B.llc_kib, 24 * 1024);
        assert_eq!(GEN_C_18.llc_kib as f64 / 1024.0, 24.75);
        assert_eq!(GEN_C_20.llc_kib, 27 * 1024);
    }

    #[test]
    fn smt_doubles_hardware_threads() {
        for p in ALL_PLATFORMS {
            assert_eq!(p.smt, 2);
            assert_eq!(p.hardware_threads(), p.cores_per_socket * 2);
            assert_eq!(p.cache_block_bytes, 64);
        }
    }

    #[test]
    fn llc_per_core_shrinks_across_generations() {
        assert!(GEN_A.llc_per_core_kib() > GEN_B.llc_per_core_kib());
        assert!(GEN_B.llc_per_core_kib() > GEN_C_20.llc_per_core_kib());
    }

    #[test]
    fn generation_metadata() {
        assert_eq!(CpuGeneration::GenA.microarchitecture(), "Intel Haswell");
        assert_eq!(CpuGeneration::GenC.to_string(), "GenC");
        assert_eq!(CpuGeneration::GenC.peak_ipc(), 4.0);
        assert!(CpuGeneration::GenA < CpuGeneration::GenC);
    }
}
