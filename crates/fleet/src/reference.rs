//! Reference workloads the paper compares against: Google's fleet
//! profile (Kanev et al., ISCA'15) and four SPEC CPU2006 benchmarks.
//!
//! Figs. 2, 3, and 5 include these rows. SPEC rows are dominated by math,
//! C libraries, and miscellaneous leaves (the paper omits the other SPEC
//! benchmarks for exactly this reason); Google's fleet-wide breakdown
//! mirrors the Facebook microservices.

use serde::{Deserialize, Serialize};

use crate::breakdown::Breakdown;
use crate::categories::{KernelOp, LeafCategory as L, MemoryOp};

/// A comparison workload from outside the Facebook fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ReferenceWorkload {
    /// Google's global server fleet (Kanev et al. \[63\]).
    Google,
    /// SPEC CPU2006 400.perlbench.
    Perlbench,
    /// SPEC CPU2006 403.gcc.
    Gcc,
    /// SPEC CPU2006 471.omnetpp.
    Omnetpp,
    /// SPEC CPU2006 473.astar.
    Astar,
}

impl ReferenceWorkload {
    /// All reference workloads in figure order.
    pub const ALL: [ReferenceWorkload; 5] = [
        ReferenceWorkload::Google,
        ReferenceWorkload::Perlbench,
        ReferenceWorkload::Gcc,
        ReferenceWorkload::Omnetpp,
        ReferenceWorkload::Astar,
    ];

    /// The display label used in the figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReferenceWorkload::Google => "Google [Kanev'15]",
            ReferenceWorkload::Perlbench => "400.perlbench",
            ReferenceWorkload::Gcc => "403.gcc",
            ReferenceWorkload::Omnetpp => "471.omnetpp",
            ReferenceWorkload::Astar => "473.astar",
        }
    }

    /// Whether this row is a SPEC CPU2006 benchmark.
    #[must_use]
    pub fn is_spec(self) -> bool {
        !matches!(self, ReferenceWorkload::Google)
    }
}

fn bd<C: Copy + PartialEq>(entries: &[(C, f64)]) -> Breakdown<C> {
    Breakdown::complete(entries.to_vec()).expect("static breakdown data sums to 100")
}

/// Fig. 2 leaf breakdown for a reference workload.
///
/// The SPEC rows' memory shares follow Fig. 3's nets (perlbench 7%, gcc
/// 31%, omnetpp 11%, astar 3%) with the balance in math + C libraries +
/// miscellaneous; Google's row follows Kanev et al.'s "datacenter tax"
/// shape (≈13% memory, ≈19% kernel).
#[must_use]
pub fn leaf_breakdown(workload: ReferenceWorkload) -> Breakdown<L> {
    match workload {
        ReferenceWorkload::Google => bd(&[
            (L::Memory, 13.0),
            (L::Kernel, 19.0),
            (L::Hashing, 4.0),
            (L::Synchronization, 3.0),
            (L::Zstd, 4.0),
            (L::Math, 10.0),
            (L::Ssl, 3.0),
            (L::CLibraries, 25.0),
            (L::Miscellaneous, 19.0),
        ]),
        ReferenceWorkload::Perlbench => bd(&[
            (L::Memory, 7.0),
            (L::Math, 6.0),
            (L::CLibraries, 77.0),
            (L::Miscellaneous, 10.0),
        ]),
        ReferenceWorkload::Gcc => bd(&[
            (L::Memory, 31.0),
            (L::Math, 8.0),
            (L::CLibraries, 52.0),
            (L::Miscellaneous, 9.0),
        ]),
        ReferenceWorkload::Omnetpp => bd(&[
            (L::Memory, 11.0),
            (L::Kernel, 1.0),
            (L::Math, 15.0),
            (L::CLibraries, 60.0),
            (L::Miscellaneous, 13.0),
        ]),
        ReferenceWorkload::Astar => bd(&[
            (L::Memory, 3.0),
            (L::Math, 30.0),
            (L::CLibraries, 55.0),
            (L::Miscellaneous, 12.0),
        ]),
    }
}

/// Fig. 3 memory-op shares for a reference workload (share of its memory
/// cycles).
///
/// For Google only copy and allocation were reported (\[63\] gives ≈5% of
/// total fleet cycles to copies against a 13% memory net), so that row is
/// partial. gcc spends very few of its many memory cycles copying;
/// omnetpp has the largest allocation share of the SPEC suite (≈5% of
/// total cycles = 45% of its 11% memory net).
#[must_use]
pub fn memory_breakdown(workload: ReferenceWorkload) -> Breakdown<MemoryOp> {
    match workload {
        ReferenceWorkload::Google => Breakdown::partial(vec![
            (MemoryOp::Copy, 38.0),
            (MemoryOp::Allocation, 62.0),
        ])
        .expect("static partial breakdown is valid"),
        ReferenceWorkload::Perlbench => bd(&[
            (MemoryOp::Copy, 38.0),
            (MemoryOp::Free, 32.0),
            (MemoryOp::Allocation, 24.0),
            (MemoryOp::Set, 3.0),
            (MemoryOp::Compare, 3.0),
        ]),
        ReferenceWorkload::Gcc => bd(&[
            (MemoryOp::Copy, 9.0),
            (MemoryOp::Free, 56.0),
            (MemoryOp::Allocation, 14.0),
            (MemoryOp::Set, 12.0),
            (MemoryOp::Compare, 9.0),
        ]),
        ReferenceWorkload::Omnetpp => bd(&[
            (MemoryOp::Copy, 1.0),
            (MemoryOp::Free, 43.0),
            (MemoryOp::Allocation, 45.0),
            (MemoryOp::Set, 6.0),
            (MemoryOp::Compare, 5.0),
        ]),
        ReferenceWorkload::Astar => bd(&[
            (MemoryOp::Copy, 7.0),
            (MemoryOp::Free, 53.0),
            (MemoryOp::Allocation, 40.0),
        ]),
    }
}

/// Fig. 5 kernel-op shares for Google (only the scheduler share was
/// reported in \[63\]; the paper notes it "typically mirrors overheads seen
/// in Cache1 and Cache2"). SPEC benchmarks spend negligible kernel time
/// and return `None`.
#[must_use]
pub fn kernel_breakdown(workload: ReferenceWorkload) -> Option<Breakdown<KernelOp>> {
    match workload {
        ReferenceWorkload::Google => Some(
            Breakdown::partial(vec![(KernelOp::Scheduler, 35.0)])
                .expect("static partial breakdown is valid"),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{profile, ServiceId};

    #[test]
    fn spec_rows_are_math_clib_misc_dominated() {
        // §2.3: SPEC functions "primarily belong to the math, C libraries,
        // and miscellaneous categories".
        for w in ReferenceWorkload::ALL {
            if !w.is_spec() {
                continue;
            }
            let b = leaf_breakdown(w);
            let tail = b.percent(L::Math) + b.percent(L::CLibraries) + b.percent(L::Miscellaneous);
            assert!(tail > 60.0, "{w:?} tail {tail}");
            // SPEC captures no SSL/ZSTD/hashing overheads.
            assert_eq!(b.percent(L::Ssl), 0.0);
            assert_eq!(b.percent(L::Zstd), 0.0);
            assert_eq!(b.percent(L::Hashing), 0.0);
        }
    }

    #[test]
    fn spec_misses_key_fb_overheads() {
        // §2.3: SPEC doesn't capture the memory and kernel overheads the
        // microservices face.
        let fb_kernel_max = ServiceId::CHARACTERIZED
            .iter()
            .map(|&id| profile(id).leaves.percent(L::Kernel))
            .fold(0.0, f64::max);
        for w in ReferenceWorkload::ALL.into_iter().filter(|w| w.is_spec()) {
            assert!(leaf_breakdown(w).percent(L::Kernel) < fb_kernel_max / 4.0);
        }
    }

    #[test]
    fn google_mirrors_facebook() {
        // §2.3: "Google's breakdown across their global server fleet is
        // similar to Facebook's leaf breakdowns" — significant memory and
        // kernel cycles.
        let g = leaf_breakdown(ReferenceWorkload::Google);
        assert!(g.percent(L::Memory) >= 10.0);
        assert!(g.percent(L::Kernel) >= 15.0);
    }

    #[test]
    fn google_memory_row_is_partial_copy_plus_alloc() {
        let g = memory_breakdown(ReferenceWorkload::Google);
        assert!(!g.is_complete());
        // Copy ≈ 5% of total cycles over a 13% memory net ≈ 38% share.
        let copy_total = g.fraction(MemoryOp::Copy)
            * leaf_breakdown(ReferenceWorkload::Google).fraction(L::Memory);
        assert!((copy_total - 0.05).abs() < 0.005, "google copy {copy_total}");
        // "Google's services incur a slightly greater allocation overhead."
        assert!(g.percent(MemoryOp::Allocation) > g.percent(MemoryOp::Copy));
    }

    #[test]
    fn gcc_copies_little_despite_high_memory() {
        // §2.3.1: "Although 403.gcc exhibits a high memory overhead, it
        // spends very few cycles in copying memory."
        let gcc_leaves = leaf_breakdown(ReferenceWorkload::Gcc);
        assert!(gcc_leaves.percent(L::Memory) >= 30.0);
        assert!(memory_breakdown(ReferenceWorkload::Gcc).percent(MemoryOp::Copy) < 10.0);
    }

    #[test]
    fn omnetpp_allocates_most_of_spec() {
        // §2.3.1: "471.omnetpp spends the most cycles on allocation (~5%)".
        let total_alloc = |w: ReferenceWorkload| {
            memory_breakdown(w).fraction(MemoryOp::Allocation) * leaf_breakdown(w).fraction(L::Memory)
        };
        let omnetpp = total_alloc(ReferenceWorkload::Omnetpp);
        assert!((omnetpp - 0.05).abs() < 0.005, "omnetpp alloc {omnetpp}");
        for w in [ReferenceWorkload::Perlbench, ReferenceWorkload::Gcc, ReferenceWorkload::Astar] {
            assert!(total_alloc(w) < omnetpp, "{w:?}");
        }
    }

    #[test]
    fn google_kernel_reports_scheduler_only() {
        let g = kernel_breakdown(ReferenceWorkload::Google).unwrap();
        assert!(!g.is_complete());
        assert!(g.percent(KernelOp::Scheduler) > 0.0);
        assert_eq!(g.percent(KernelOp::Network), 0.0);
        assert!(kernel_breakdown(ReferenceWorkload::Gcc).is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(ReferenceWorkload::Google.label(), "Google [Kanev'15]");
        assert_eq!(ReferenceWorkload::Astar.label(), "473.astar");
        assert!(ReferenceWorkload::Perlbench.is_spec());
        assert!(!ReferenceWorkload::Google.is_spec());
    }
}
