//! The seven production microservices (§2.1) plus Cache3 (§4, case study
//! 2), with their full characterization profiles.
//!
//! Every percentage below is reconstructed from the paper. Where the
//! figure's exact bar heights are ambiguous in the source, the value is
//! chosen to satisfy the constraints the paper states in prose or tables;
//! each profile's doc comment lists the constraints that pin it down.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::breakdown::Breakdown;
use crate::categories::{
    CLibOp, CopyOrigin, FunctionalityCategory as F, KernelOp, LeafCategory as L, MemoryOp,
    SyncPrimitive,
};
use crate::platform::CpuPlatform;

/// Identifier of a microservice in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ServiceId {
    /// The HipHop VM web tier serving end-user requests.
    Web,
    /// News Feed ranking: computes predicted user-relevance vectors.
    Feed1,
    /// News Feed aggregation and feature extraction.
    Feed2,
    /// Ads user-data service; ranks returned ads (and, in case study 3,
    /// offloads its ML inference to a remote CPU).
    Ads1,
    /// Ads ad-data service; traverses the sorted ad list.
    Ads2,
    /// Cache mid tier (fills Cache2 misses from the database).
    Cache1,
    /// Cache front tier (contacted by client services).
    Cache2,
    /// A third caching microservice, similar to Cache1/Cache2, used in
    /// the off-chip encryption case study (§4).
    Cache3,
    /// AI-inference workload pack: MLP inference wrapped in the AI Tax's
    /// pre/post-processing overheads (not a paper service).
    AiInference,
    /// Storage workload pack: a kvstore-heavy service modeled on
    /// `kernels::kvstore` (not a paper service).
    Kvstore,
    /// Post-quantum-cryptography workload pack: lattice KEM/signature
    /// traffic dominating the cycle budget (not a paper service).
    Pqc,
}

impl ServiceId {
    /// The seven characterized services (§2) — Cache3 appears only in the
    /// validation study.
    pub const CHARACTERIZED: [ServiceId; 7] = [
        ServiceId::Web,
        ServiceId::Feed1,
        ServiceId::Feed2,
        ServiceId::Ads1,
        ServiceId::Ads2,
        ServiceId::Cache1,
        ServiceId::Cache2,
    ];

    /// All services: the paper's eight plus the three workload packs.
    pub const ALL: [ServiceId; 11] = [
        ServiceId::Web,
        ServiceId::Feed1,
        ServiceId::Feed2,
        ServiceId::Ads1,
        ServiceId::Ads2,
        ServiceId::Cache1,
        ServiceId::Cache2,
        ServiceId::Cache3,
        ServiceId::AiInference,
        ServiceId::Kvstore,
        ServiceId::Pqc,
    ];

    /// The three workload packs shipped as data files under
    /// `configs/services/` (derived from the AI Tax / Data Center Tax
    /// breakdowns, not measured in the paper).
    pub const PACKS: [ServiceId; 3] =
        [ServiceId::AiInference, ServiceId::Kvstore, ServiceId::Pqc];

    /// The service domain (§2.1 groups the seven services into four;
    /// the workload packs add three more).
    #[must_use]
    pub fn domain(self) -> ServiceDomain {
        match self {
            ServiceId::Web => ServiceDomain::Web,
            ServiceId::Feed1 | ServiceId::Feed2 => ServiceDomain::NewsFeed,
            ServiceId::Ads1 | ServiceId::Ads2 => ServiceDomain::Ads,
            ServiceId::Cache1 | ServiceId::Cache2 | ServiceId::Cache3 => ServiceDomain::Cache,
            ServiceId::AiInference => ServiceDomain::MlInference,
            ServiceId::Kvstore => ServiceDomain::Storage,
            ServiceId::Pqc => ServiceDomain::Crypto,
        }
    }

    /// Whether the service performs ML inference (§2.4 calls out Feed1,
    /// Feed2, Ads1, and Ads2; the AI-inference pack does by design).
    #[must_use]
    pub fn performs_inference(self) -> bool {
        matches!(
            self,
            ServiceId::Feed1
                | ServiceId::Feed2
                | ServiceId::Ads1
                | ServiceId::Ads2
                | ServiceId::AiInference
        )
    }

    /// The kebab-case identifier used in the JSON schema and as the
    /// `configs/services/<slug>.json` file stem.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            ServiceId::Web => "web",
            ServiceId::Feed1 => "feed1",
            ServiceId::Feed2 => "feed2",
            ServiceId::Ads1 => "ads1",
            ServiceId::Ads2 => "ads2",
            ServiceId::Cache1 => "cache1",
            ServiceId::Cache2 => "cache2",
            ServiceId::Cache3 => "cache3",
            ServiceId::AiInference => "ai-inference",
            ServiceId::Kvstore => "kvstore",
            ServiceId::Pqc => "pqc",
        }
    }

    /// Parses a kebab-case identifier produced by [`ServiceId::slug`].
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<ServiceId> {
        ServiceId::ALL.into_iter().find(|s| s.slug() == slug)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ServiceId::Web => "Web",
            ServiceId::Feed1 => "Feed1",
            ServiceId::Feed2 => "Feed2",
            ServiceId::Ads1 => "Ads1",
            ServiceId::Ads2 => "Ads2",
            ServiceId::Cache1 => "Cache1",
            ServiceId::Cache2 => "Cache2",
            ServiceId::Cache3 => "Cache3",
            ServiceId::AiInference => "AI-Inference",
            ServiceId::Kvstore => "KVStore",
            ServiceId::Pqc => "PQC",
        };
        f.write_str(name)
    }
}

/// The four service domains of §2.1, plus one per workload pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ServiceDomain {
    /// Web serving (HipHop VM).
    Web,
    /// News Feed.
    NewsFeed,
    /// Ad serving.
    Ads,
    /// Distributed-memory object caching.
    Cache,
    /// Standalone ML-inference serving (AI Tax workload pack).
    MlInference,
    /// Persistent key-value storage (kvstore workload pack).
    Storage,
    /// Cryptography-dominated transport (post-quantum workload pack).
    Crypto,
}

/// Per-second operation rates for a service at peak load, used to derive
/// the model's `n` parameters. Rates marked in Table 6/7 are the paper's;
/// the rest are synthetic but order-of-magnitude consistent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceRates {
    /// `C`: busy host cycles per second.
    pub host_cycles_per_second: f64,
    /// Compression invocations per second.
    pub compressions_per_second: f64,
    /// Memory copies per second.
    pub copies_per_second: f64,
    /// Memory allocations per second.
    pub allocations_per_second: f64,
    /// Encryption operations per second.
    pub encryptions_per_second: f64,
}

/// A microservice's complete characterization profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// The service this profile describes.
    pub id: ServiceId,
    /// Fig. 9: cycles by microservice functionality.
    pub functionality: Breakdown<F>,
    /// Fig. 2: cycles by leaf-function category.
    pub leaves: Breakdown<L>,
    /// Fig. 3: shares of *memory* cycles by memory operation.
    pub memory_ops: Breakdown<MemoryOp>,
    /// Fig. 4: shares of *copy* cycles by originating functionality.
    pub copy_origins: Breakdown<CopyOrigin>,
    /// Fig. 5: shares of *kernel* cycles by kernel operation.
    pub kernel_ops: Breakdown<KernelOp>,
    /// Fig. 6: shares of *synchronization* cycles by primitive.
    pub sync_ops: Breakdown<SyncPrimitive>,
    /// Fig. 7: shares of *C-library* cycles by routine family.
    pub clib_ops: Breakdown<CLibOp>,
    /// Operation rates at peak load.
    pub rates: ServiceRates,
    /// The Table 1 platform the service runs on (§2.2).
    pub platform: CpuPlatform,
}

impl ServiceProfile {
    /// Fig. 1's "Application Logic" share: cycles in core work
    /// (application logic + inference + feature extraction).
    #[must_use]
    pub fn core_percent(&self) -> f64 {
        self.functionality.percent_where(F::is_core)
    }

    /// Fig. 1's "Orchestration" share: everything that merely facilitates
    /// the core logic.
    #[must_use]
    pub fn orchestration_percent(&self) -> f64 {
        self.functionality.percent_where(|c| !c.is_core())
    }

    /// Fraction of cycles in ML inference (prediction/ranking).
    #[must_use]
    pub fn inference_fraction(&self) -> f64 {
        self.functionality.fraction(F::PredictionRanking)
    }

    /// Fraction of total cycles in a memory operation, composing the
    /// Fig. 2 memory share with the Fig. 3 sub-share — e.g. Ads1's copy
    /// fraction is 28% × 54% = 15.12% (Table 7's `α`).
    #[must_use]
    pub fn memory_op_fraction(&self, op: MemoryOp) -> f64 {
        self.leaves.fraction(L::Memory) * self.memory_ops.fraction(op)
    }
}

mod ads;
mod cache;
mod feed;
mod packs;
mod web;

use ads::{ads1, ads2};
use cache::{cache1, cache2, cache3};
use feed::{feed1, feed2};
use packs::{ai_inference, kvstore, pqc};
use web::web;

pub(crate) fn profile_data(id: ServiceId) -> ServiceProfile {
    match id {
        ServiceId::Web => web(),
        ServiceId::Feed1 => feed1(),
        ServiceId::Feed2 => feed2(),
        ServiceId::Ads1 => ads1(),
        ServiceId::Ads2 => ads2(),
        ServiceId::Cache1 => cache1(),
        ServiceId::Cache2 => cache2(),
        ServiceId::Cache3 => cache3(),
        ServiceId::AiInference => ai_inference(),
        ServiceId::Kvstore => kvstore(),
        ServiceId::Pqc => pqc(),
    }
}

/// Returns the characterization profile for a service.
///
/// When a [`crate::registry::ServiceRegistry`] has been installed as the
/// process-wide active registry (e.g. via `--services`), the profile
/// comes from its loaded data; otherwise from the built-in constructors.
/// The two paths are bit-exact for unmodified data files.
#[must_use]
pub fn profile(id: ServiceId) -> ServiceProfile {
    if let Some(reg) = crate::registry::active_registry() {
        return reg.profile(id);
    }
    profile_data(id)
}

/// Profiles for all seven characterized services, in paper order.
#[must_use]
pub fn characterized_profiles() -> Vec<ServiceProfile> {
    ServiceId::CHARACTERIZED.iter().map(|&id| profile(id)).collect()
}

pub(super) fn bd<C: Copy + PartialEq>(entries: &[(C, f64)]) -> Breakdown<C> {
    Breakdown::complete(entries.to_vec()).expect("static breakdown data sums to 100")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_complete() {
        for id in ServiceId::ALL {
            let p = profile(id);
            assert_eq!(p.id, id);
            assert!(p.functionality.is_complete(), "{id} functionality");
            assert!(p.leaves.is_complete(), "{id} leaves");
            assert!(p.memory_ops.is_complete(), "{id} memory ops");
            assert!(p.copy_origins.is_complete(), "{id} copy origins");
            assert!(p.kernel_ops.is_complete(), "{id} kernel ops");
            assert!(p.sync_ops.is_complete(), "{id} sync ops");
            assert!(p.clib_ops.is_complete(), "{id} clib ops");
        }
    }

    #[test]
    fn web_core_and_logging_match_paper() {
        let web = profile(ServiceId::Web);
        // §2.4: "Web spends only 18% of cycles in core web serving logic,
        // consuming 23% of cycles in reading and updating logs."
        assert_eq!(web.core_percent(), 18.0);
        assert_eq!(web.functionality.percent(F::Logging), 23.0);
        assert_eq!(web.orchestration_percent(), 82.0);
    }

    #[test]
    fn inference_fractions_span_the_paper_bounds() {
        // §2.4: inference services spend "as few as 33%" of cycles on ML
        // inference, yielding 1.49×–2.38× ideal gains.
        let fractions: Vec<f64> = [ServiceId::Feed1, ServiceId::Feed2, ServiceId::Ads1, ServiceId::Ads2]
            .iter()
            .map(|&id| profile(id).inference_fraction())
            .collect();
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        assert_eq!(min, 0.33);
        assert_eq!(max, 0.58);
        let ideal_min = 1.0 / (1.0 - min);
        let ideal_max = 1.0 / (1.0 - max);
        assert!((ideal_min - 1.49).abs() < 0.01);
        assert!((ideal_max - 2.38).abs() < 0.01);
    }

    #[test]
    fn ads1_copy_alpha_is_table7_value() {
        let ads1 = profile(ServiceId::Ads1);
        // 28% memory × 54% copy share = 0.1512 (Table 7).
        assert!((ads1.memory_op_fraction(MemoryOp::Copy) - 0.1512).abs() < 1e-9);
        assert_eq!(ads1.rates.copies_per_second, 1_473_681.0);
    }

    #[test]
    fn cache1_alloc_alpha_near_table7_value() {
        let c1 = profile(ServiceId::Cache1);
        // 26% memory × 21% allocation share = 0.0546 ≈ Table 7's 0.055.
        assert!((c1.memory_op_fraction(MemoryOp::Allocation) - 0.055).abs() < 0.001);
        assert_eq!(c1.rates.allocations_per_second, 51_695.0);
    }

    #[test]
    fn cache1_encryption_matches_case_study_1() {
        let c1 = profile(ServiceId::Cache1);
        assert_eq!(c1.rates.encryptions_per_second, 298_951.0);
        assert_eq!(c1.rates.host_cycles_per_second, 2.0e9);
        // SSL leaf share is 6% (§2.3); secure I/O α = 0.165844 sits within
        // the 42% I/O functionality share.
        assert_eq!(c1.leaves.percent(L::Ssl), 6.0);
        assert!(c1.functionality.fraction(F::SecureInsecureIo) > 0.165844);
    }

    #[test]
    fn cache3_encryption_matches_case_study_2() {
        let c3 = profile(ServiceId::Cache3);
        assert_eq!(c3.rates.encryptions_per_second, 101_863.0);
        assert_eq!(c3.rates.host_cycles_per_second, 2.3e9);
        // Fig. 17 has no compression category.
        assert_eq!(c3.functionality.percent(F::Compression), 0.0);
        assert!(c3.functionality.fraction(F::SecureInsecureIo) > 0.19154);
    }

    #[test]
    fn feed1_compression_matches_table7() {
        let f1 = profile(ServiceId::Feed1);
        assert_eq!(f1.functionality.percent(F::Compression), 15.0);
        assert_eq!(f1.rates.compressions_per_second, 15_008.0);
        assert_eq!(f1.rates.host_cycles_per_second, 2.3e9);
    }

    #[test]
    fn caches_have_high_io_and_kernel() {
        // Abstract: caching services spend up to 52% of cycles in I/O.
        assert_eq!(
            profile(ServiceId::Cache2).functionality.percent(F::SecureInsecureIo),
            52.0
        );
        // §2.3: Cache1/Cache2 spend more cycles in the kernel.
        for id in [ServiceId::Cache1, ServiceId::Cache2] {
            let kernel = profile(id).leaves.percent(L::Kernel);
            for other in [ServiceId::Web, ServiceId::Feed1, ServiceId::Feed2] {
                assert!(kernel > profile(other).leaves.percent(L::Kernel));
            }
        }
    }

    #[test]
    fn caches_prefer_spin_locks() {
        // §2.3.3: Cache implements spin locks to avoid µs-scale wakeups.
        for id in [ServiceId::Cache1, ServiceId::Cache2] {
            let p = profile(id);
            let (dominant, _) = p.sync_ops.dominant().unwrap();
            assert_eq!(dominant, SyncPrimitive::SpinLock, "{id}");
        }
        // Non-cache services don't.
        assert_ne!(
            profile(ServiceId::Web).sync_ops.dominant().unwrap().0,
            SyncPrimitive::SpinLock
        );
    }

    #[test]
    fn ml_services_are_vector_heavy_web_is_string_heavy() {
        // §2.3.4.
        for id in [ServiceId::Feed2, ServiceId::Ads1, ServiceId::Ads2] {
            let (dominant, _) = profile(id).clib_ops.dominant().unwrap();
            assert_eq!(dominant, CLibOp::Vectors, "{id}");
        }
        let web = profile(ServiceId::Web);
        assert!(web.clib_ops.percent(CLibOp::Strings) >= 30.0);
        assert!(web.clib_ops.percent(CLibOp::HashTables) >= 20.0);
    }

    #[test]
    fn memory_is_significant_and_copy_dominated() {
        // §2.3.1: copies are the greatest consumers of memory cycles for
        // every service; Web's memory share is the 37% maximum.
        let mut max_mem: f64 = 0.0;
        for id in ServiceId::CHARACTERIZED {
            let p = profile(id);
            let (dominant, _) = p.memory_ops.dominant().unwrap();
            assert_eq!(dominant, MemoryOp::Copy, "{id}");
            max_mem = max_mem.max(p.leaves.percent(L::Memory));
        }
        assert_eq!(max_mem, 37.0);
    }

    #[test]
    fn copy_origin_diversity() {
        // §2.3.1: Web copies mostly in I/O pre/post processing; Cache2
        // mostly in the network protocol stack (I/O).
        assert_eq!(
            profile(ServiceId::Web).copy_origins.dominant().unwrap().0,
            CopyOrigin::IoPrePostProcessing
        );
        assert_eq!(
            profile(ServiceId::Cache2).copy_origins.dominant().unwrap().0,
            CopyOrigin::SecureInsecureIo
        );
        // Cache1's key-value store copies show up as application logic.
        assert_eq!(
            profile(ServiceId::Cache1).copy_origins.dominant().unwrap().0,
            CopyOrigin::ApplicationLogic
        );
    }

    #[test]
    fn platform_assignment_matches_section_2_2() {
        // Web, Feed1, Feed2, Ads1 on the 18-core Skylake; Ads2, Cache1,
        // Cache2 on the 20-core.
        for id in [ServiceId::Web, ServiceId::Feed1, ServiceId::Feed2, ServiceId::Ads1] {
            assert_eq!(profile(id).platform.cores_per_socket, 18, "{id}");
        }
        for id in [ServiceId::Ads2, ServiceId::Cache1, ServiceId::Cache2] {
            assert_eq!(profile(id).platform.cores_per_socket, 20, "{id}");
        }
    }

    #[test]
    fn domains_and_inference_flags() {
        assert_eq!(ServiceId::Web.domain(), ServiceDomain::Web);
        assert_eq!(ServiceId::Feed2.domain(), ServiceDomain::NewsFeed);
        assert_eq!(ServiceId::Ads1.domain(), ServiceDomain::Ads);
        assert_eq!(ServiceId::Cache3.domain(), ServiceDomain::Cache);
        assert!(ServiceId::Feed1.performs_inference());
        assert!(!ServiceId::Cache1.performs_inference());
        assert_eq!(ServiceId::CHARACTERIZED.len(), 7);
        assert_eq!(characterized_profiles().len(), 7);
    }

    #[test]
    fn ml_services_orchestrate_42_to_67_percent() {
        // §2.4: the inference services consume "42% - 67% of cycles in
        // orchestrating inference".
        let orch: Vec<f64> = [ServiceId::Feed1, ServiceId::Feed2, ServiceId::Ads1, ServiceId::Ads2]
            .iter()
            .map(|&id| profile(id).orchestration_percent())
            .collect();
        let min = orch.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = orch.iter().cloned().fold(0.0, f64::max);
        assert!((min - 42.0).abs() < 1e-9, "min orchestration {min}");
        assert!((max - 67.0).abs() < 1e-9, "max orchestration {max}");
    }

    #[test]
    fn orchestration_dominates_for_most_services() {
        // Fig. 1: "orchestration overheads can significantly dominate".
        let dominated = ServiceId::CHARACTERIZED
            .iter()
            .filter(|&&id| profile(id).orchestration_percent() > 50.0)
            .count();
        assert!(dominated >= 4, "only {dominated} services orchestration-dominated");
    }

    #[test]
    fn display_names() {
        assert_eq!(ServiceId::Feed1.to_string(), "Feed1");
        assert_eq!(ServiceId::Cache3.to_string(), "Cache3");
    }
}
