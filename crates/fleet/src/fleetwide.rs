//! Fleet-wide aggregation: weighting the per-service profiles by their
//! share of the installed base to project fleet-level gains.
//!
//! §3's first application: "Data center operators can project fleet-wide
//! gains from optimizing key service overheads." The seven services
//! "occupy a large portion of the compute-optimized installed base"; the
//! weights here are synthetic shares of that base (Web famously the
//! largest single service).

use serde::{Deserialize, Serialize};

use crate::breakdown::Breakdown;
use crate::categories::{FunctionalityCategory, LeafCategory};
use crate::services::{profile, ServiceId};

/// A service's share of the fleet's compute-optimized installed base.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetWeight {
    /// The service.
    pub service: ServiceId,
    /// Fraction of the installed base (0–1) it occupies.
    pub share: f64,
}

/// Synthetic installed-base shares for the seven characterized services,
/// normalized to 1.0 across them (the real shares are proprietary).
pub const DEFAULT_WEIGHTS: [FleetWeight; 7] = [
    FleetWeight {
        service: ServiceId::Web,
        share: 0.35,
    },
    FleetWeight {
        service: ServiceId::Feed1,
        share: 0.10,
    },
    FleetWeight {
        service: ServiceId::Feed2,
        share: 0.12,
    },
    FleetWeight {
        service: ServiceId::Ads1,
        share: 0.10,
    },
    FleetWeight {
        service: ServiceId::Ads2,
        share: 0.08,
    },
    FleetWeight {
        service: ServiceId::Cache1,
        share: 0.13,
    },
    FleetWeight {
        service: ServiceId::Cache2,
        share: 0.12,
    },
];

/// Fleet-wide fraction of cycles spent in a functionality category,
/// weighted by installed-base share.
#[must_use]
pub fn fleet_functionality_fraction(
    category: FunctionalityCategory,
    weights: &[FleetWeight],
) -> f64 {
    weighted(weights, |id| profile(id).functionality.fraction(category))
}

/// Fleet-wide fraction of cycles spent in a leaf category.
#[must_use]
pub fn fleet_leaf_fraction(category: LeafCategory, weights: &[FleetWeight]) -> f64 {
    weighted(weights, |id| profile(id).leaves.fraction(category))
}

/// Fleet-wide throughput gain if each service independently achieves the
/// given per-service speedup, weighted by installed base: the harmonic
/// composition `1 / Σ wᵢ/Sᵢ`.
///
/// This is how "accelerating common overheads can provide fleet-wide
/// wins" (Table 4) is quantified: freed cycles translate into servers the
/// fleet does not have to buy.
#[must_use]
pub fn fleet_speedup(per_service: &[(ServiceId, f64)], weights: &[FleetWeight]) -> f64 {
    let total: f64 = weights.iter().map(|w| w.share).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let inv: f64 = weights
        .iter()
        .map(|w| {
            let speedup = per_service
                .iter()
                .find(|(id, _)| *id == w.service)
                .map_or(1.0, |(_, s)| *s);
            w.share / speedup
        })
        .sum();
    total / inv
}

/// The fleet-weighted functionality breakdown (a synthetic "all seven
/// services" bar for Fig. 9).
#[must_use]
pub fn fleet_functionality_breakdown(weights: &[FleetWeight]) -> Breakdown<FunctionalityCategory> {
    let entries: Vec<(FunctionalityCategory, f64)> = FunctionalityCategory::ALL
        .iter()
        .map(|&c| (c, 100.0 * fleet_functionality_fraction(c, weights)))
        .filter(|(_, p)| *p > 0.0)
        .collect();
    Breakdown::complete(entries).expect("weighted complete breakdowns stay complete")
}

fn weighted(weights: &[FleetWeight], f: impl Fn(ServiceId) -> f64) -> f64 {
    let total: f64 = weights.iter().map(|w| w.share).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights.iter().map(|w| w.share * f(w.service)).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_sum_to_one() {
        let total: f64 = DEFAULT_WEIGHTS.iter().map(|w| w.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_functionality_breakdown_is_complete() {
        let b = fleet_functionality_breakdown(&DEFAULT_WEIGHTS);
        assert!((b.total_percent() - 100.0).abs() < 1e-6);
        // Orchestration dominates fleet-wide, the paper's core message.
        let core = b.percent_where(FunctionalityCategory::is_core);
        assert!(core < 50.0, "fleet core share {core}");
    }

    #[test]
    fn common_overheads_are_fleet_significant() {
        // Table 4: compression, serialization, and I/O are common
        // overheads worth fleet-wide investment.
        let io = fleet_functionality_fraction(FunctionalityCategory::SecureInsecureIo, &DEFAULT_WEIGHTS);
        let comp = fleet_functionality_fraction(FunctionalityCategory::Compression, &DEFAULT_WEIGHTS);
        let ser = fleet_functionality_fraction(FunctionalityCategory::Serialization, &DEFAULT_WEIGHTS);
        assert!(io > 0.10);
        assert!(comp > 0.05);
        assert!(ser > 0.05);
    }

    #[test]
    fn fleet_memory_leaf_share_is_significant() {
        let mem = fleet_leaf_fraction(LeafCategory::Memory, &DEFAULT_WEIGHTS);
        assert!(mem > 0.15 && mem < 0.40, "fleet memory {mem}");
    }

    #[test]
    fn fleet_speedup_identity_when_nothing_accelerated() {
        assert_eq!(fleet_speedup(&[], &DEFAULT_WEIGHTS), 1.0);
        assert_eq!(fleet_speedup(&[], &[]), 1.0);
    }

    #[test]
    fn fleet_speedup_weights_by_share() {
        // Speeding up only Web (35% of the fleet) by 2× yields
        // 1/(0.35/2 + 0.65) = 1.2121×.
        let s = fleet_speedup(&[(ServiceId::Web, 2.0)], &DEFAULT_WEIGHTS);
        assert!((s - 1.0 / (0.35 / 2.0 + 0.65)).abs() < 1e-9);
    }

    #[test]
    fn uniform_speedup_is_preserved() {
        let per: Vec<(ServiceId, f64)> = ServiceId::CHARACTERIZED
            .iter()
            .map(|&id| (id, 1.5))
            .collect();
        let s = fleet_speedup(&per, &DEFAULT_WEIGHTS);
        assert!((s - 1.5).abs() < 1e-9);
    }
}
