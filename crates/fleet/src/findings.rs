//! Table 4: the characterization's findings and the acceleration
//! opportunities they suggest, in machine-readable form.

use serde::{Deserialize, Serialize};

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Short identifier for cross-referencing.
    pub id: &'static str,
    /// The observation (left column of Table 4).
    pub finding: &'static str,
    /// The paper section(s) that establish it.
    pub sections: &'static str,
    /// The suggested acceleration opportunity (right column).
    pub opportunity: &'static str,
}

/// All ten Table 4 rows, in paper order.
pub const FINDINGS: [Finding; 10] = [
    Finding {
        id: "orchestration",
        finding: "Significant orchestration overheads",
        sections: "§2.4",
        opportunity:
            "Software and hardware acceleration for orchestration rather than just app. logic",
    },
    Finding {
        id: "common-overheads",
        finding: "Several common orchestration overheads",
        sections: "§2.4",
        opportunity:
            "Accelerating common overheads (e.g., compression) can provide fleet-wide wins",
    },
    Finding {
        id: "ipc-scaling",
        finding: "Poor IPC scaling for several functions",
        sections: "§2.3.5, §2.4.1",
        opportunity: "Optimizations for specific leaf/service categories",
    },
    Finding {
        id: "memory-copy-alloc",
        finding: "Memory copies & allocations are significant",
        sections: "§2.3, §2.3.1",
        opportunity:
            "Dense copies via SIMD, copying in DRAM, Intel's I/O AT, DMA via accelerators, PIM",
    },
    Finding {
        id: "memory-free",
        finding: "Memory frees are computationally expensive",
        sections: "§2.3, §2.3.1",
        opportunity: "Faster software libraries, hardware support to remove pages",
    },
    Finding {
        id: "kernel",
        finding: "High kernel overhead and low IPC",
        sections: "§2.3, §2.3.5",
        opportunity: "Coalesce I/O, user-space drivers, in-line accelerators, kernel-bypass",
    },
    Finding {
        id: "logging",
        finding: "Logging overheads can dominate",
        sections: "§2.4",
        opportunity: "Optimizations to reduce log size or number of updates",
    },
    Finding {
        id: "compression",
        finding: "High compression overhead",
        sections: "§2.3, §2.4",
        opportunity:
            "Bit-Plane Compression, Buddy compression, dedicated compression hardware",
    },
    Finding {
        id: "cache-sync",
        finding: "Cache synchronizes frequently",
        sections: "§2.3, §2.3.3",
        opportunity:
            "Better thread pool tuning and scheduling, Intel's TSX, coalesce I/O, vDSO",
    },
    Finding {
        id: "event-notification",
        finding: "High event notification overhead",
        sections: "§2.3.2",
        opportunity: "RDMA-style notification, hardware support for notifications, spin vs. block hybrids",
    },
];

/// Looks up a finding by its identifier.
#[must_use]
pub fn finding(id: &str) -> Option<&'static Finding> {
    FINDINGS.iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_ten_rows() {
        assert_eq!(FINDINGS.len(), 10);
    }

    #[test]
    fn ids_are_unique() {
        for (i, f) in FINDINGS.iter().enumerate() {
            assert!(
                FINDINGS[..i].iter().all(|g| g.id != f.id),
                "duplicate id {}",
                f.id
            );
        }
    }

    #[test]
    fn lookup_by_id() {
        let f = finding("compression").unwrap();
        assert!(f.opportunity.contains("compression hardware"));
        assert!(finding("nonexistent").is_none());
    }

    #[test]
    fn the_three_applied_overheads_are_findings() {
        // §5 applies the model to compression, memory copy, and memory
        // allocation — all of which must appear in Table 4.
        assert!(finding("compression").is_some());
        assert!(finding("memory-copy-alloc").is_some());
    }

    #[test]
    fn every_row_cites_a_section() {
        for f in FINDINGS {
            assert!(f.sections.starts_with('§'), "{}", f.id);
            assert!(!f.finding.is_empty());
            assert!(!f.opportunity.is_empty());
        }
    }
}
