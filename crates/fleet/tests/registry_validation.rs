//! Structured-validation tests for the service-spec loader: every
//! malformed-profile rejection reason surfaces as a typed
//! [`FleetError`], never a panic. Each test corrupts one aspect of a
//! valid exported spec (the serde derives accept the shape; only
//! `ServiceSpec::validate` — run on every load — catches the damage).

use std::fs;
use std::path::PathBuf;

use accelerometer_fleet::registry::builtin_spec;
use accelerometer_fleet::{FleetError, ServiceId, ServiceRegistry, ServiceSpec};
use serde_json::Value;

/// The exported spec as a mutable JSON tree.
fn spec_value(id: ServiceId) -> Value {
    serde_json::from_str(&ServiceRegistry::export_json(id)).expect("export parses")
}

/// Navigates to a mutable object entry (panics on shape mismatch — the
/// exported layout is pinned by the lockstep test).
fn get_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
    match v {
        Value::Object(entries) => entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("object key {key}")),
        _ => panic!("not an object at {key}"),
    }
}

fn get_idx(v: &mut Value) -> &mut Vec<Value> {
    match v {
        Value::Array(items) => items,
        _ => panic!("not an array"),
    }
}

/// Re-parses the (possibly corrupted) tree and validates it.
fn validate(v: &Value) -> Result<(), FleetError> {
    let spec: ServiceSpec =
        serde_json::from_str(&v.to_pretty_string()).expect("corrupted spec still parses");
    spec.validate()
}

fn number(x: f64) -> Value {
    serde_json::from_str(&format!("{x}")).expect("number parses")
}

#[test]
fn unsupported_schema_version_is_rejected() {
    let mut v = spec_value(ServiceId::Web);
    *get_mut(&mut v, "schema") = number(99.0);
    assert_eq!(
        validate(&v),
        Err(FleetError::UnsupportedSchema { found: 99 })
    );
}

#[test]
fn breakdown_not_summing_to_100_is_rejected() {
    let mut v = spec_value(ServiceId::Web);
    let entries = get_idx(get_mut(
        get_mut(get_mut(&mut v, "profile"), "functionality"),
        "entries",
    ));
    // Inflate the first share by 50 points: 100% becomes 150%.
    let first = get_idx(&mut entries[0]);
    let bumped = first[1].as_f64().expect("percent") + 50.0;
    first[1] = number(bumped);
    match validate(&v) {
        Err(FleetError::BreakdownTotal { service, field, total }) => {
            assert_eq!(service, ServiceId::Web);
            assert_eq!(field, "functionality");
            assert!((total - 150.0).abs() < 1e-9, "total {total}");
        }
        other => panic!("expected BreakdownTotal, got {other:?}"),
    }
}

#[test]
fn duplicated_breakdown_category_is_rejected() {
    let mut v = spec_value(ServiceId::Web);
    let entries = get_idx(get_mut(
        get_mut(get_mut(&mut v, "profile"), "leaves"),
        "entries",
    ));
    // Rename the second category to the first's: sum unchanged, entry
    // list invalid.
    let first_cat = get_idx(&mut entries[0])[0].clone();
    get_idx(&mut entries[1])[0] = first_cat;
    match validate(&v) {
        Err(FleetError::BreakdownEntry { service, field, .. }) => {
            assert_eq!(service, ServiceId::Web);
            assert_eq!(field, "leaves");
        }
        other => panic!("expected BreakdownEntry, got {other:?}"),
    }
}

#[test]
fn empty_granularity_cdf_is_rejected() {
    let mut v = spec_value(ServiceId::Web);
    *get_mut(get_mut(&mut v, "copy_granularity"), "points") = Value::Array(Vec::new());
    assert_eq!(
        validate(&v),
        Err(FleetError::EmptyCdf {
            service: ServiceId::Web,
            field: "copy_granularity",
        })
    );
}

#[test]
fn non_monotone_granularity_cdf_is_rejected() {
    let mut v = spec_value(ServiceId::Web);
    let points = get_idx(get_mut(get_mut(&mut v, "allocation_granularity"), "points"));
    // Swap the first two cumulative fractions: the CDF now decreases.
    let a = get_idx(&mut points[0])[1].clone();
    let b = get_idx(&mut points[1])[1].clone();
    get_idx(&mut points[0])[1] = b;
    get_idx(&mut points[1])[1] = a;
    match validate(&v) {
        Err(FleetError::NonMonotoneCdf { service, field, .. }) => {
            assert_eq!(service, ServiceId::Web);
            assert_eq!(field, "allocation_granularity");
        }
        other => panic!("expected NonMonotoneCdf, got {other:?}"),
    }
}

#[test]
fn negative_ipc_is_rejected() {
    // Cache1 is the one builtin spec that carries IPC tables (Fig. 8).
    let mut v = spec_value(ServiceId::Cache1);
    let leaves = get_idx(get_mut(get_mut(&mut v, "ipc"), "leaves"));
    let scaling = &mut get_idx(&mut leaves[0])[1];
    *get_mut(scaling, "gen_b") = number(-0.5);
    match validate(&v) {
        Err(FleetError::NegativeIpc { service, value, .. }) => {
            assert_eq!(service, ServiceId::Cache1);
            assert_eq!(value, -0.5);
        }
        other => panic!("expected NegativeIpc, got {other:?}"),
    }
}

#[test]
fn negative_rate_is_rejected() {
    let mut v = spec_value(ServiceId::Feed1);
    let rates = get_mut(get_mut(&mut v, "profile"), "rates");
    *get_mut(rates, "compressions_per_second") = number(-1.0);
    assert_eq!(
        validate(&v),
        Err(FleetError::NegativeRate {
            service: ServiceId::Feed1,
            field: "compressions_per_second",
            value: -1.0,
        })
    );
}

#[test]
fn zero_host_cycle_budget_is_rejected() {
    let mut v = spec_value(ServiceId::Feed1);
    let rates = get_mut(get_mut(&mut v, "profile"), "rates");
    *get_mut(rates, "host_cycles_per_second") = number(0.0);
    assert_eq!(
        validate(&v),
        Err(FleetError::NegativeRate {
            service: ServiceId::Feed1,
            field: "host_cycles_per_second",
            value: 0.0,
        })
    );
}

#[test]
fn out_of_range_case_study_parameter_is_rejected() {
    let mut v = spec_value(ServiceId::Cache1);
    let study = get_mut(&mut get_idx(get_mut(&mut v, "case_studies"))[0], "study");
    let params = get_mut(get_mut(study, "scenario"), "params");
    *get_mut(params, "kernel_fraction") = number(1.5);
    match validate(&v) {
        Err(FleetError::InvalidModelParam { service, field, value }) => {
            assert_eq!(service, ServiceId::Cache1);
            assert_eq!(field, "case_study.kernel_fraction");
            assert_eq!(value, 1.5);
        }
        other => panic!("expected InvalidModelParam, got {other:?}"),
    }
}

#[test]
fn foreign_case_study_is_rejected() {
    // A Cache1 spec may not smuggle in a case study claiming Web.
    let mut v = spec_value(ServiceId::Cache1);
    let study = get_mut(&mut get_idx(get_mut(&mut v, "case_studies"))[0], "study");
    *get_mut(study, "service") = Value::String("web".to_owned());
    match validate(&v) {
        Err(FleetError::ForeignEntry { service, found, .. }) => {
            assert_eq!(service, ServiceId::Cache1);
            assert_eq!(found, ServiceId::Web);
        }
        other => panic!("expected ForeignEntry, got {other:?}"),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "accel-registry-{tag}-{}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn file_stem_must_match_the_profile_id() {
    let dir = temp_dir("stem");
    let path = dir.join("cache1.json");
    fs::write(&path, ServiceRegistry::export_json(ServiceId::Web)).expect("write");
    let err = ServiceRegistry::builtin().load_file(&path).unwrap_err();
    match err {
        FleetError::FilenameMismatch { expected, .. } => assert_eq!(expected, "web"),
        other => panic!("expected FilenameMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unparseable_file_and_empty_dir_are_structured_errors() {
    let dir = temp_dir("parse");
    assert!(matches!(
        ServiceRegistry::load_path(&dir),
        Err(FleetError::EmptyDir { .. })
    ));
    let path = dir.join("web.json");
    fs::write(&path, "{ not json").expect("write");
    assert!(matches!(
        ServiceRegistry::load_path(&path),
        Err(FleetError::Parse { .. })
    ));
    assert!(matches!(
        ServiceRegistry::load_path(&dir.join("missing.json")),
        Err(FleetError::Io { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_error_renders_a_useful_message() {
    let msg = FleetError::BreakdownTotal {
        service: ServiceId::Web,
        field: "leaves",
        total: 98.0,
    }
    .to_string();
    assert!(msg.contains("Web") && msg.contains("leaves") && msg.contains("98"), "{msg}");
    let msg = FleetError::NonMonotoneCdf {
        service: ServiceId::Pqc,
        field: "copy_granularity",
        index: 3,
    }
    .to_string();
    assert!(msg.contains("PQC") && msg.contains("knot 3"), "{msg}");
    // FleetError is a real std error (boxable, source-chainable).
    let boxed: Box<dyn std::error::Error> =
        Box::new(FleetError::UnsupportedSchema { found: 2 });
    assert!(boxed.to_string().contains("schema version 2"), "{boxed}");
}

#[test]
fn valid_spec_loads_and_replaces_only_that_service() {
    let dir = temp_dir("ok");
    let path = dir.join("pqc.json");
    fs::write(&path, ServiceRegistry::export_json(ServiceId::Pqc)).expect("write");
    let registry = ServiceRegistry::load_path(&path).expect("valid spec loads");
    assert_eq!(registry.loaded_services(), [ServiceId::Pqc]);
    assert_eq!(registry.profile(ServiceId::Pqc), builtin_spec(ServiceId::Pqc).profile);
    // The other ten services fall back to their builtin specs.
    assert_eq!(registry.profile(ServiceId::Web), builtin_spec(ServiceId::Web).profile);
    fs::remove_dir_all(&dir).ok();
}
