//! Property and consistency tests over the characterization datasets:
//! invariants that must hold for every service and every randomized view
//! of the data.

use accelerometer::units::bytes;
use accelerometer_fleet::{
    cdf, profile, Breakdown, FunctionalityCategory, LeafCategory, ServiceId, ServiceProfile,
};
use proptest::prelude::*;

#[test]
fn every_profile_serde_round_trips() {
    for id in ServiceId::ALL {
        let p = profile(id);
        let json = serde_json::to_string(&p).expect("profiles serialize");
        let back: ServiceProfile = serde_json::from_str(&json).expect("profiles deserialize");
        assert_eq!(p, back, "{id}");
    }
}

#[test]
fn leaf_and_functionality_views_are_both_complete_accounts() {
    // The two breakdowns partition the same cycles two different ways;
    // each must account for 100% of them.
    for id in ServiceId::ALL {
        let p = profile(id);
        assert!((p.leaves.total_percent() - 100.0).abs() < 0.5, "{id} leaves");
        assert!(
            (p.functionality.total_percent() - 100.0).abs() < 0.5,
            "{id} functionality"
        );
        assert!((p.core_percent() + p.orchestration_percent() - 100.0).abs() < 1e-9);
    }
}

#[test]
fn rates_are_positive_and_consistent() {
    for id in ServiceId::ALL {
        let p = profile(id);
        assert!(p.rates.host_cycles_per_second > 1e9, "{id}");
        // A service with a compression functionality share must have a
        // compression rate, and vice versa (Cache3 has neither).
        let has_share = p.functionality.percent(FunctionalityCategory::Compression) > 0.0;
        let has_rate = p.rates.compressions_per_second > 0.0;
        assert_eq!(has_share, has_rate, "{id} compression share/rate mismatch");
    }
}

proptest! {
    /// Sampling any quantile of any service CDF yields a size inside the
    /// distribution's support, and the CDF at that size recovers the
    /// quantile.
    #[test]
    fn cdf_quantile_round_trip(
        service in prop::sample::select(ServiceId::ALL.to_vec()),
        p in 0.0..1.0_f64,
        which in 0usize..2,
    ) {
        let dist = if which == 0 {
            cdf::memory_copy(service)
        } else {
            cdf::memory_allocation(service)
        };
        let g = dist.quantile(p);
        prop_assert!(g.get() >= 0.0);
        prop_assert!(g <= dist.max_bytes());
        let back = dist.fraction_at_or_below(g);
        prop_assert!(back >= p - 1e-9, "p={} back={}", p, back);
    }

    /// Scaling a breakdown by any positive factor preserves relative
    /// shares (the composition rule used to derive α values).
    #[test]
    fn breakdown_scaling_preserves_ratios(
        service in prop::sample::select(ServiceId::CHARACTERIZED.to_vec()),
        factor in 0.01..10.0_f64,
    ) {
        let b = profile(service).memory_ops;
        let scaled = b.scaled_by(factor);
        for (category, pct) in b.iter() {
            let scaled_pct = scaled.iter().find(|(c, _)| *c == category).unwrap().1;
            prop_assert!((scaled_pct - pct * factor).abs() < 1e-9);
        }
    }

    /// Randomly thinning a complete breakdown yields a valid partial one
    /// (the constructor invariants hold on arbitrary subsets).
    #[test]
    fn partial_breakdowns_from_subsets(
        service in prop::sample::select(ServiceId::CHARACTERIZED.to_vec()),
        keep_mask in 0u16..512,
    ) {
        let full = profile(service).leaves;
        let entries: Vec<(LeafCategory, f64)> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << i) != 0)
            .map(|(_, e)| e)
            .collect();
        let partial = Breakdown::partial(entries.clone()).expect("subset is valid partial");
        prop_assert!(partial.total_percent() <= full.total_percent() + 1e-9);
        for (category, pct) in entries {
            prop_assert_eq!(partial.percent(category), pct);
        }
    }

    /// Every break-even threshold below a distribution's support selects
    /// a non-increasing lucrative fraction as it rises.
    #[test]
    fn lucrative_fraction_is_monotone(
        lo in 1.0..1_000.0_f64,
        hi_multiplier in 1.1..50.0_f64,
    ) {
        let dist = cdf::feed1_compression();
        let hi = lo * hi_multiplier;
        let f_lo = dist.fraction_above(bytes(lo));
        let f_hi = dist.fraction_above(bytes(hi));
        prop_assert!(f_hi <= f_lo + 1e-12);
    }
}
