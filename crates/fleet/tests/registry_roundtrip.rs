//! Round-trip properties for the data-driven service schema: any valid
//! `ServiceProfile` survives JSON serialization structurally intact
//! (breakdown shares, CDF knot order, rates, platform — bit-for-bit,
//! thanks to shortest-round-trip float printing), and the registry's
//! exported builtin files reload into specs identical to the Rust
//! constructors.

use std::fs;

use accelerometer::GranularityCdf;
use accelerometer_fleet::registry::builtin_spec;
use accelerometer_fleet::{
    Breakdown, CLibOp, CopyOrigin, FunctionalityCategory, KernelOp, LeafCategory, MemoryOp,
    ServiceId, ServiceProfile, ServiceRegistry, ServiceSpec, SyncPrimitive,
};
use accelerometer_fleet::services::ServiceRates;
use accelerometer_fleet::ALL_PLATFORMS;
use proptest::prelude::*;

/// A complete breakdown over all of `C`'s categories with arbitrary
/// positive shares, normalized to sum to (floating-point) 100%.
fn arb_breakdown<C: Copy + PartialEq + std::fmt::Debug + 'static>(
    categories: &'static [C],
) -> impl Strategy<Value = Breakdown<C>> {
    let n = categories.len();
    prop::collection::vec(0.5..100.0_f64, n..n + 1).prop_map(move |weights| {
        let total: f64 = weights.iter().sum();
        let entries: Vec<(C, f64)> = categories
            .iter()
            .zip(&weights)
            .map(|(&c, w)| (c, w * 100.0 / total))
            .collect();
        Breakdown::complete(entries).expect("normalized shares are a valid breakdown")
    })
}

/// A valid granularity CDF: strictly increasing byte bounds, strictly
/// increasing cumulative fractions ending at exactly 1.0.
fn arb_cdf() -> impl Strategy<Value = GranularityCdf> {
    prop::collection::vec((1.0..5000.0_f64, 0.05..1.0_f64), 1usize..8).prop_map(|steps| {
        let mut bound = 0.0;
        let mut cumulative = Vec::with_capacity(steps.len());
        let mut running = 0.0;
        let mut bounds = Vec::with_capacity(steps.len());
        for (gap, weight) in steps {
            bound += gap;
            running += weight;
            bounds.push(bound);
            cumulative.push(running);
        }
        let total = running;
        let points: Vec<(f64, f64)> = bounds
            .into_iter()
            .zip(cumulative)
            .map(|(b, c)| (b, c / total))
            .collect();
        GranularityCdf::from_points(points).expect("normalized knots are a valid CDF")
    })
}

fn arb_profile() -> impl Strategy<Value = ServiceProfile> {
    (
        prop::sample::select(ServiceId::ALL.to_vec()),
        arb_breakdown(FunctionalityCategory::ALL),
        arb_breakdown(LeafCategory::ALL),
        arb_breakdown(MemoryOp::ALL),
        arb_breakdown(CopyOrigin::ALL),
        (
            arb_breakdown(KernelOp::ALL),
            arb_breakdown(SyncPrimitive::ALL),
            arb_breakdown(CLibOp::ALL),
        ),
        (
            1.0e9..4.0e9_f64,
            0.0..1.0e6_f64,
            0.0..1.0e6_f64,
            0.0..1.0e6_f64,
            0.0..1.0e6_f64,
        ),
        0usize..ALL_PLATFORMS.len(),
    )
        .prop_map(
            |(
                id,
                functionality,
                leaves,
                memory_ops,
                copy_origins,
                (kernel_ops, sync_ops, clib_ops),
                (
                    host_cycles_per_second,
                    compressions_per_second,
                    copies_per_second,
                    allocations_per_second,
                    encryptions_per_second,
                ),
                platform_index,
            )| ServiceProfile {
                id,
                functionality,
                leaves,
                memory_ops,
                copy_origins,
                kernel_ops,
                sync_ops,
                clib_ops,
                rates: ServiceRates {
                    host_cycles_per_second,
                    compressions_per_second,
                    copies_per_second,
                    allocations_per_second,
                    encryptions_per_second,
                },
                platform: ALL_PLATFORMS[platform_index],
            },
        )
}

proptest! {
    /// Any valid profile -> JSON -> parse is structurally identical:
    /// same breakdown entries in the same order with the same
    /// (normalized, non-round) shares, same CDF knots, same rates.
    #[test]
    fn arbitrary_profile_round_trips_through_json(profile in arb_profile()) {
        let json = serde_json::to_string(&profile).expect("profiles serialize");
        let back: ServiceProfile = serde_json::from_str(&json).expect("profiles parse");
        prop_assert_eq!(&back, &profile);
        // Pretty-printing (the configs/services/ file format) is not a
        // different dialect.
        let pretty = serde_json::to_string_pretty(&profile).expect("profiles serialize");
        let back: ServiceProfile = serde_json::from_str(&pretty).expect("profiles parse");
        prop_assert_eq!(back, profile);
    }

    /// CDF knot order and exact knot values survive the trip inside a
    /// full spec (the granularity fields ride next to the profile).
    #[test]
    fn arbitrary_cdf_round_trips_through_json(cdf in arb_cdf()) {
        let json = serde_json::to_string(&cdf).expect("CDFs serialize");
        let back: GranularityCdf = serde_json::from_str(&json).expect("CDFs parse");
        prop_assert_eq!(back.points(), cdf.points());
    }
}

#[test]
fn every_builtin_spec_exports_and_reloads_identically() {
    for id in ServiceId::ALL {
        let json = ServiceRegistry::export_json(id);
        let back: ServiceSpec = serde_json::from_str(&json).expect("export parses");
        back.validate().expect("export validates");
        assert_eq!(back, builtin_spec(id), "{id}");
        // And the canonical rendering is a fixed point: re-serializing
        // the reloaded spec reproduces the file byte-for-byte.
        assert_eq!(
            serde_json::to_string_pretty(&back).expect("spec serializes"),
            json,
            "{id}"
        );
    }
}

#[test]
fn registry_loaded_from_exported_files_matches_builtin_profiles() {
    let dir = std::env::temp_dir().join(format!("accel-export-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let written = ServiceRegistry::export_dir(&dir).expect("export");
    assert_eq!(written.len(), ServiceId::ALL.len());
    let registry = ServiceRegistry::load_path(&dir).expect("exported files load");
    assert_eq!(registry.loaded_services().len(), ServiceId::ALL.len());
    for id in ServiceId::ALL {
        // The file-driven profile is the builtin profile, exactly —
        // this is what makes the `--services` path byte-identical.
        assert_eq!(registry.profile(id), accelerometer_fleet::profile(id), "{id}");
        assert_eq!(registry.spec(id), &builtin_spec(id), "{id}");
    }
    assert_eq!(
        registry.case_studies(),
        accelerometer_fleet::all_case_studies(),
    );
    assert_eq!(
        registry.recommendations(),
        accelerometer_fleet::params::all_recommendations(),
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn slugs_round_trip_for_every_service() {
    for id in ServiceId::ALL {
        assert_eq!(ServiceId::from_slug(id.slug()), Some(id), "{id}");
    }
    assert_eq!(ServiceId::from_slug("bogus"), None);
}
