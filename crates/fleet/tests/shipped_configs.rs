//! Lockstep test for the committed service-profile data files: every
//! `configs/services/<slug>.json` must be byte-identical to what the
//! Rust constructors export. The constructors are the source of truth;
//! the files are generated artifacts (`accelctl services export`).
//!
//! To regenerate after an intentional profile change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test -p accelerometer-fleet --test shipped_configs
//! ```

use std::fs;
use std::path::PathBuf;

use accelerometer_fleet::{ServiceId, ServiceRegistry};

fn services_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../configs/services")
}

#[test]
fn shipped_service_files_match_the_builtin_exporters() {
    let dir = services_dir();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        ServiceRegistry::export_dir(&dir).expect("export shipped configs");
        return;
    }
    for id in ServiceId::ALL {
        let path = dir.join(format!("{}.json", id.slug()));
        let shipped = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing shipped spec {path:?} ({e}); run with GOLDEN_BLESS=1")
        });
        assert_eq!(
            shipped,
            ServiceRegistry::export_json(id),
            "{id}: shipped spec drifted from its constructor; if intentional, \
             regenerate with GOLDEN_BLESS=1"
        );
    }
}

#[test]
fn shipped_directory_holds_exactly_the_known_services() {
    let mut stems: Vec<String> = fs::read_dir(services_dir())
        .expect("configs/services exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .collect();
    stems.sort();
    let mut expected: Vec<String> = ServiceId::ALL.iter().map(|id| id.slug().to_owned()).collect();
    expected.sort();
    assert_eq!(stems, expected);
}

#[test]
fn shipped_directory_loads_and_validates_as_a_full_registry() {
    let registry = ServiceRegistry::load_path(&services_dir()).expect("shipped configs load");
    assert_eq!(registry.loaded_services().len(), ServiceId::ALL.len());
}
