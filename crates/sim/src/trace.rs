//! The two-level sampling pipeline: trace banks and frozen traces.
//!
//! PR 6 measured that ~40% of per-event cost in the engine is RNG / `ln`
//! / inverse-CDF draws whose *values* are frozen by the bit-exactness
//! contract. Frozen values do not mean a frozen *schedule*, though — the
//! engine consumes its workload RNG stream only through request draws,
//! and the i-th request drawn is always the i-th block of that stream
//! regardless of cores, threads, offload design, or fault plan (fault
//! RNG is a separate derived stream). Draws can therefore be hoisted out
//! of the event loop, and across sweep grids computed once instead of
//! once per point, without changing a single output byte.
//!
//! Two levels:
//!
//! 1. **[`SampleBank`]** (per engine): refills blocks of pre-drawn
//!    requests in one tight loop, so the monomorphized `advance` loop
//!    consumes plain data instead of interleaving `StdRng`/`ln`/quantile
//!    calls with event handling. Same values in the same order; it is
//!    also the adapter that lets a [`FrozenTrace`] feed the engine and
//!    resume live drawing when the prefix runs out. Shard engines fill
//!    their banks independently from their decorrelated seeds. (On the
//!    1-core dev container the bank alone is a measured 2–4% *loss* on
//!    the engine microbenches — see `EXPERIMENTS.md`; level 2 is where
//!    the sampling tax is actually paid down.)
//! 2. **[`FrozenTrace`]** (per seed × workload, behind `Arc`): an
//!    immutable pre-drawn request prefix plus the RNG state *after* the
//!    prefix. Sweep runners draw it once and install it at every grid
//!    point that shares the seed and workload (only offload / policy /
//!    fault parameters differ), turning O(points × draws) sampling into
//!    O(draws) per sweep. A run that outlives the prefix resumes live
//!    banked drawing from the continuation RNG state — bit-identical to
//!    never having had the trace, so the prefix length is a pure
//!    performance knob.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::SimConfig;
use crate::workload::{RequestSampler, WorkItem, WorkloadSpec};

/// Requests per [`SampleBank`] refill. Big enough that the refill branch
/// is cold in `begin_request`; small enough that a bank is a few KiB and
/// stays in L1 while the engine drains it. Any value ≥ 1 is bit-identical
/// (pinned by proptest); 8/64/256 all measured within noise of each
/// other on the 1-core container, so 64 is kept as the cache-friendly
/// middle.
const BANK_BLOCK: usize = 64;

/// Upper bound on a frozen trace's request count (~56 MB at the typical
/// 3 items per request). Runs that need more fall back to banked live
/// drawing after the prefix — correct, just less amortized.
const MAX_TRACE_REQUESTS: usize = 1 << 20;

/// Process-wide switch for cross-point trace reuse in sweep runners
/// (level 2). On by default; `accelctl --trace-reuse off` clears it so
/// CI can diff both paths. Level 1 (the bank) has no switch — it is the
/// engine's draw path.
static TRACE_REUSE: AtomicBool = AtomicBool::new(true);

/// Enables or disables cross-point frozen-trace reuse process-wide.
/// Both settings produce byte-identical output (that is the point of
/// the `tier1.sh` smoke); `off` exists to prove it and to measure the
/// sampling tax.
pub fn set_trace_reuse(enabled: bool) {
    TRACE_REUSE.store(enabled, Ordering::Relaxed);
}

/// Whether sweep runners currently reuse frozen traces across grid
/// points.
#[must_use]
pub fn trace_reuse_enabled() -> bool {
    TRACE_REUSE.load(Ordering::Relaxed)
}

/// A block of pre-drawn requests owned by one engine (level 1).
///
/// Each request lives in its own buffer; popping swaps the pre-drawn
/// buffer with the consumer's (returning the consumer's old allocation
/// to the bank for the next refill), so the per-request cost is three
/// pointer-word swaps — no copy, no bounds arithmetic. The refill loop
/// consumes the engine RNG in exactly the order per-request drawing
/// would, so popping request `i` yields bit-identical items to drawing
/// it inline.
#[derive(Debug, Clone)]
pub(crate) struct SampleBank {
    bufs: Vec<Vec<WorkItem>>,
    /// Index of the next un-popped request in `bufs`.
    next: usize,
    /// Number of valid pre-drawn requests in `bufs` (0 after a clear).
    filled: usize,
    /// Requests per refill (testable; [`BANK_BLOCK`] by default).
    block: usize,
    /// Refills performed since the last [`clear`](Self::clear) —
    /// surfaced as `EngineStats::bank_refills`.
    refills: u64,
}

impl SampleBank {
    pub(crate) fn new() -> Self {
        Self {
            bufs: Vec::new(),
            next: 0,
            filled: 0,
            block: BANK_BLOCK,
            refills: 0,
        }
    }

    /// Drops all buffered requests (keeping allocations) so the next pop
    /// refills from the current RNG state. Must be called on engine
    /// reset: buffered draws belong to the old stream.
    pub(crate) fn clear(&mut self) {
        self.next = 0;
        self.filled = 0;
        self.refills = 0;
    }

    /// Refills performed since the last [`clear`](Self::clear).
    pub(crate) fn refills(&self) -> u64 {
        self.refills
    }

    /// Overrides the refill block size (minimum 1) and discards buffered
    /// draws. Test hook: block size 1 degenerates to the historical
    /// draw-per-request path, and proptests pin that every block size is
    /// bit-identical.
    pub(crate) fn set_block(&mut self, block: usize) {
        self.block = block.max(1);
        self.clear();
    }

    /// Pops the next pre-drawn request by swapping its buffer with
    /// `out`, refilling the bank from `rng` when empty.
    #[inline(always)]
    pub(crate) fn pop_into(
        &mut self,
        sampler: &RequestSampler,
        rng: &mut StdRng,
        out: &mut Vec<WorkItem>,
    ) {
        if self.next == self.filled {
            self.refill(sampler, rng);
        }
        std::mem::swap(out, &mut self.bufs[self.next]);
        self.next += 1;
    }

    /// The tight loop: `block` consecutive requests drawn with nothing
    /// between the draws but a buffer-slot step. Buffers returned by
    /// earlier swaps are redrawn in place, so steady state allocates
    /// nothing.
    #[cold]
    fn refill(&mut self, sampler: &RequestSampler, rng: &mut StdRng) {
        if self.bufs.len() < self.block {
            self.bufs.resize_with(self.block, Vec::new);
        }
        for buf in &mut self.bufs[..self.block] {
            sampler.draw_into(rng, buf);
        }
        self.next = 0;
        self.filled = self.block;
        self.refills += 1;
    }
}

/// An immutable pre-drawn request trace for one (seed, workload) pair
/// (level 2), shared across sweep grid points behind an `Arc`.
#[derive(Debug, Clone)]
pub struct FrozenTrace {
    seed: u64,
    workload: WorkloadSpec,
    items: Vec<WorkItem>,
    ends: Vec<usize>,
    /// The RNG state after drawing the prefix: a run that consumes more
    /// requests than the trace holds continues live drawing from here,
    /// bit-identical to a run that never had the trace.
    resume_rng: StdRng,
}

impl FrozenTrace {
    /// Draws a trace of `requests` requests for `(seed, workload)` —
    /// the first `requests` blocks of the engine RNG stream that
    /// `StdRng::seed_from_u64(seed)` produces.
    #[must_use]
    pub fn draw(seed: u64, workload: &WorkloadSpec, requests: usize) -> Self {
        let sampler = workload.sampler();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = requests.min(MAX_TRACE_REQUESTS);
        let mut items = Vec::new();
        let mut ends = Vec::with_capacity(requests);
        for _ in 0..requests {
            sampler.draw_append(&mut rng, &mut items);
            ends.push(items.len());
        }
        Self {
            seed,
            workload: workload.clone(),
            items,
            ends,
            resume_rng: rng,
        }
    }

    /// Draws a trace sized for `cfg`: the expected request consumption
    /// of the run (cores × horizon / mean request cycles, scaled by the
    /// Amdahl ceiling when an offload could raise throughput) plus
    /// margin for in-flight requests. Underestimates only cost the
    /// continuation draws; overestimates only cost memory and the
    /// one-time draw.
    #[must_use]
    pub fn for_config(cfg: &SimConfig) -> Self {
        Self::draw(cfg.seed, &cfg.workload, Self::estimated_requests(cfg))
    }

    fn estimated_requests(cfg: &SimConfig) -> usize {
        let mean = cfg.workload.mean_request_cycles().max(1.0);
        let per_core = cfg.horizon / mean;
        let speedup_cap = cfg.offload.as_ref().map_or(1.0, |o| {
            let alpha = cfg.workload.expected_alpha();
            let a = o.peak_speedup.max(1.0);
            1.0 / ((1.0 - alpha) + alpha / a)
        });
        let est = (cfg.cores as f64) * per_core * speedup_cap * 1.3;
        // `as usize` saturates (NaN → 0) on degenerate workloads; the
        // continuation path keeps those correct.
        (est as usize).saturating_add(2 * cfg.threads + 16)
    }

    /// Whether this trace was drawn from `cfg`'s seed and workload —
    /// the precondition for installing it into an engine.
    #[must_use]
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        self.seed == cfg.seed && self.workload == cfg.workload
    }

    /// The seed the trace was drawn from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of pre-drawn requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the trace holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The `i`-th pre-drawn request's work items.
    pub(crate) fn request(&self, i: usize) -> &[WorkItem] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.items[start..self.ends[i]]
    }

    /// The RNG state after the prefix, for the live-drawing
    /// continuation.
    pub(crate) fn resume_rng(&self) -> &StdRng {
        &self.resume_rng
    }
}

/// A per-sweep cache of [`FrozenTrace`]s keyed by (seed, workload).
///
/// Sweep runners create one store per sweep and pass it to every grid
/// point; shard engines look up their derived seeds here too, so a
/// sharded 8-point sweep draws each shard's trace once instead of eight
/// times. Lookups that miss either draw-and-cache (eager stores, used
/// by sweeps whose points all share the base seed) or return `None`
/// (prewarmed-only stores, used by batch runners where most configs are
/// unique and a draw-once-use-once trace would be pure overhead).
#[derive(Debug)]
pub struct TraceStore {
    draw_on_miss: bool,
    inner: Mutex<Vec<Arc<FrozenTrace>>>,
}

impl TraceStore {
    /// A store that draws and caches a trace on every miss.
    #[must_use]
    pub fn eager() -> Self {
        Self {
            draw_on_miss: true,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// A store that only serves traces drawn via [`prewarm`]
    /// (misses return `None`).
    ///
    /// [`prewarm`]: TraceStore::prewarm
    #[must_use]
    pub fn prewarmed_only() -> Self {
        Self {
            draw_on_miss: false,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// An eager store for a sweep, or `None` when cross-point reuse is
    /// globally disabled ([`set_trace_reuse`]).
    #[must_use]
    pub fn for_sweep() -> Option<Self> {
        trace_reuse_enabled().then(Self::eager)
    }

    /// Draws and caches the trace for `cfg` (no-op if already cached).
    /// Sweep frontends call this on the base config before fanning out
    /// so the trace length does not depend on which worker gets there
    /// first.
    pub fn prewarm(&self, cfg: &SimConfig) {
        let mut traces = self.inner.lock().expect("trace store poisoned");
        if !traces.iter().any(|t| t.matches(cfg)) {
            traces.push(Arc::new(FrozenTrace::draw(
                cfg.seed,
                &cfg.workload,
                FrozenTrace::estimated_requests(cfg),
            )));
        }
    }

    /// The cached trace for `cfg`'s (seed, workload), drawing it on a
    /// miss when the store is eager. The draw happens under the store
    /// lock so concurrent workers block briefly instead of drawing
    /// twice; trace content depends only on (seed, workload), so which
    /// worker draws is unobservable.
    #[must_use]
    pub fn get(&self, cfg: &SimConfig) -> Option<Arc<FrozenTrace>> {
        let mut traces = self.inner.lock().expect("trace store poisoned");
        if let Some(t) = traces.iter().find(|t| t.matches(cfg)) {
            return Some(Arc::clone(t));
        }
        if !self.draw_on_miss {
            return None;
        }
        let trace = Arc::new(FrozenTrace::for_config(cfg));
        traces.push(Arc::clone(&trace));
        Some(trace)
    }

    /// Number of distinct traces currently cached.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::GranularityCdf;
    use crate::fault::{FaultPlan, RecoveryPolicy};

    fn workload(kernels: usize) -> WorkloadSpec {
        WorkloadSpec {
            non_kernel_cycles: 3_000.0,
            kernels_per_request: kernels,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)]).unwrap(),
            cycles_per_byte: cycles_per_byte(2.0),
        }
    }

    fn config() -> SimConfig {
        SimConfig {
            cores: 2,
            threads: 4,
            context_switch_cycles: 200.0,
            horizon: 1e6,
            seed: 99,
            workload: workload(1),
            offload: None,
            fault: FaultPlan::none(),
            recovery: RecoveryPolicy::none(),
        }
    }

    /// Popping N requests through a bank — at any block size — must
    /// yield the same items in the same order as N direct draws, and
    /// leave the RNG in the same state.
    #[test]
    fn bank_pops_equal_direct_draws_at_any_block_size() {
        for kernels in [0, 1, 3] {
            let spec = workload(kernels);
            let sampler = spec.sampler();
            for block in [1, 2, 7, 64, 200] {
                let mut direct_rng = StdRng::seed_from_u64(5);
                let mut banked_rng = StdRng::seed_from_u64(5);
                let mut bank = SampleBank::new();
                bank.set_block(block);
                let mut out = Vec::new();
                for _ in 0..150 {
                    let reference = spec.draw_request(&mut direct_rng);
                    bank.pop_into(&sampler, &mut banked_rng, &mut out);
                    assert_eq!(reference, out, "block {block}, kernels {kernels}");
                }
            }
        }
    }

    #[test]
    fn bank_clear_discards_buffered_draws() {
        let spec = workload(1);
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(1);
        let mut bank = SampleBank::new();
        let mut out = Vec::new();
        bank.pop_into(&sampler, &mut rng, &mut out);
        bank.clear();
        // After a clear + reseed the bank must replay the stream from
        // the start, exactly like a fresh engine.
        let mut rng = StdRng::seed_from_u64(1);
        bank.pop_into(&sampler, &mut rng, &mut out);
        let mut reference_rng = StdRng::seed_from_u64(1);
        assert_eq!(spec.draw_request(&mut reference_rng), out);
    }

    /// The defining property of a frozen trace: request i equals the
    /// i-th direct draw, and the resume RNG equals the direct RNG after
    /// those draws — so continuation draws line up too.
    #[test]
    fn trace_prefix_and_resume_rng_match_direct_drawing() {
        let spec = workload(2);
        let trace = FrozenTrace::draw(77, &spec, 40);
        assert_eq!(trace.len(), 40);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..trace.len() {
            assert_eq!(spec.draw_request(&mut rng).as_slice(), trace.request(i));
        }
        assert_eq!(&rng, trace.resume_rng());
    }

    #[test]
    fn trace_matches_checks_seed_and_workload() {
        let cfg = config();
        let trace = FrozenTrace::for_config(&cfg);
        assert!(trace.matches(&cfg));
        assert!(!trace.is_empty());
        let mut other_seed = cfg.clone();
        other_seed.seed = 100;
        assert!(!trace.matches(&other_seed));
        let mut other_workload = cfg.clone();
        other_workload.workload.non_kernel_cycles = 1.0;
        assert!(!trace.matches(&other_workload));
        // Offload / fault / policy changes keep the trace valid.
        let mut offloaded = cfg;
        offloaded.offload = Some(crate::engine::OffloadConfig::on_chip_sync(4.0));
        assert!(trace.matches(&offloaded));
    }

    #[test]
    fn estimate_covers_expected_consumption() {
        let cfg = config();
        let est = FrozenTrace::estimated_requests(&cfg);
        // cores × horizon / mean ≈ 2 × 1e6 / ~4280 ≈ 467; margin on top.
        let expected = cfg.cores as f64 * cfg.horizon / cfg.workload.mean_request_cycles();
        assert!(est as f64 >= expected, "{est} < {expected}");
        assert!(est < 10 * expected as usize + 1_000, "gross overdraw: {est}");
    }

    #[test]
    fn eager_store_draws_once_per_seed_workload() {
        let store = TraceStore::eager();
        let cfg = config();
        let a = store.get(&cfg).expect("eager store draws");
        let b = store.get(&cfg).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let mut other = config();
        other.seed = 1234;
        let c = store.get(&other).expect("eager store draws");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.cached(), 2);
    }

    #[test]
    fn prewarmed_only_store_never_draws_on_miss() {
        let store = TraceStore::prewarmed_only();
        let cfg = config();
        assert!(store.get(&cfg).is_none());
        store.prewarm(&cfg);
        store.prewarm(&cfg); // idempotent
        assert_eq!(store.cached(), 1);
        let t = store.get(&cfg).expect("prewarmed trace is served");
        assert!(t.matches(&cfg));
    }

    #[test]
    fn reuse_toggle_round_trips() {
        assert!(trace_reuse_enabled(), "reuse defaults to on");
        set_trace_reuse(false);
        assert!(!trace_reuse_enabled());
        assert!(TraceStore::for_sweep().is_none());
        set_trace_reuse(true);
        assert!(trace_reuse_enabled());
        assert!(TraceStore::for_sweep().is_some());
    }
}
