//! Deterministic fault injection and recovery for the offload path.
//!
//! The paper's off-chip and remote strategies (Table 5, eqns 5–8) turn
//! the accelerator into a distributed-system dependency whose queue `Q`
//! amplifies every hiccup into tail latency. This module models the
//! hiccups: a seeded [`FaultPlan`] injects per-offload failures,
//! device-degradation windows (a service-time multiplier over
//! `[start, end)`, including full downtime), and interface-latency
//! spikes; a [`RecoveryPolicy`] decides what the host does about them —
//! per-offload timeouts, bounded retries with deterministic backoff,
//! fallback-to-host once the retry budget is exhausted, and queue-depth
//! admission control that sheds offloads to the host before the backlog
//! collapses the service.
//!
//! Everything is deterministic: the fault RNG is seeded from the plan
//! and the run seed, and is *separate* from the workload RNG, so
//! [`FaultPlan::none`] leaves the engine bit-identical to a fault-free
//! build (the golden fixtures prove it byte-for-byte).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::error::{ensure, Result};
use crate::metrics::FaultMetrics;
use crate::time::SimTime;

/// One interval of degraded device service.
///
/// While an offload's service would start inside `[start, end)`, its
/// service time is multiplied by `multiplier`; with `down` set the
/// device is fully unavailable and service is deferred to `end` (the
/// paper's `Q` growing without bound for the window's duration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// Window start, in cycles since simulation start.
    pub start: f64,
    /// Window end (exclusive), in cycles.
    pub end: f64,
    /// Service-time multiplier applied while the window is active
    /// (ignored when `down` is set).
    pub multiplier: f64,
    /// Full downtime: no service starts inside the window at all.
    #[serde(default)]
    pub down: bool,
}

impl DegradationWindow {
    /// A slowdown window: service takes `multiplier`× as long.
    #[must_use]
    pub fn slowdown(start: f64, end: f64, multiplier: f64) -> Self {
        Self {
            start,
            end,
            multiplier,
            down: false,
        }
    }

    /// A full-downtime window: service defers to the window's end.
    #[must_use]
    pub fn downtime(start: f64, end: f64) -> Self {
        Self {
            start,
            end,
            multiplier: 1.0,
            down: true,
        }
    }

    fn validate(&self) -> Result<()> {
        ensure(
            self.start.is_finite() && self.start >= 0.0,
            "fault.degradation.start",
            self.start,
            "window start must be finite and non-negative",
        )?;
        ensure(
            self.end.is_finite() && self.end > self.start,
            "fault.degradation.end",
            self.end,
            "window end must be finite and after its start",
        )?;
        ensure(
            self.multiplier.is_finite() && self.multiplier > 0.0,
            "fault.degradation.multiplier",
            self.multiplier,
            "service-time multiplier must be finite and positive",
        )
    }

    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// [`FaultPlan::none`] (also the `Default`) injects nothing and is
/// guaranteed zero-impact: the engine takes the exact fault-free code
/// path, bit for bit.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault RNG (mixed with the run seed; separate from
    /// the workload stream).
    #[serde(default)]
    pub seed: u64,
    /// Probability that any single offload attempt fails at the device.
    #[serde(default)]
    pub failure_probability: f64,
    /// Probability that an attempt's interface hop suffers a latency
    /// spike of [`spike_cycles`](Self::spike_cycles).
    #[serde(default)]
    pub spike_probability: f64,
    /// Extra one-way interface latency (cycles) added by a spike.
    #[serde(default)]
    pub spike_cycles: f64,
    /// Device degradation windows, applied to every attempt whose
    /// service would start inside one.
    #[serde(default)]
    pub degradation: Vec<DegradationWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan can perturb a run at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.failure_probability > 0.0
            || (self.spike_probability > 0.0 && self.spike_cycles > 0.0)
            || !self.degradation.is_empty()
    }

    /// Validates every plan parameter.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] for probabilities
    /// outside `[0, 1]`, non-finite cycle counts, or malformed windows.
    pub fn validate(&self) -> Result<()> {
        ensure(
            (0.0..=1.0).contains(&self.failure_probability),
            "fault.failure_probability",
            self.failure_probability,
            "probability must be within [0, 1]",
        )?;
        ensure(
            (0.0..=1.0).contains(&self.spike_probability),
            "fault.spike_probability",
            self.spike_probability,
            "probability must be within [0, 1]",
        )?;
        ensure(
            self.spike_cycles.is_finite() && self.spike_cycles >= 0.0,
            "fault.spike_cycles",
            self.spike_cycles,
            "spike latency must be finite and non-negative",
        )?;
        for window in &self.degradation {
            window.validate()?;
        }
        Ok(())
    }
}

/// What the host does about offload faults.
///
/// [`RecoveryPolicy::none`] (also the `Default`) detects nothing and
/// recovers nothing: failed offloads are simply lost (their requests
/// complete but count as failed — goodput loss), slow offloads are
/// waited out, and the backlog is never shed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Per-attempt timeout (cycles from submission): the host gives up
    /// on an attempt that has not responded by then. `None` waits
    /// forever.
    #[serde(default)]
    pub timeout_cycles: Option<f64>,
    /// Retry budget after the first attempt.
    #[serde(default)]
    pub max_retries: u32,
    /// Deterministic exponential backoff: retry `k` (1-based) resubmits
    /// `backoff_base_cycles · 2^(k−1)` cycles after failure detection.
    #[serde(default)]
    pub backoff_base_cycles: f64,
    /// Execute the kernel on the host once the retry budget is
    /// exhausted (the request still completes successfully, at host
    /// speed) instead of abandoning it.
    #[serde(default)]
    pub fallback_to_host: bool,
    /// Admission control: when the device's predicted queueing delay
    /// exceeds this many cycles, the offload is shed to the host before
    /// dispatch. `None` never sheds.
    #[serde(default)]
    pub shed_backlog_cycles: Option<f64>,
}

impl RecoveryPolicy {
    /// The null policy: no detection, no retries, no fallback, no
    /// admission control.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the policy changes engine behaviour at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.timeout_cycles.is_some()
            || self.max_retries > 0
            || self.fallback_to_host
            || self.shed_backlog_cycles.is_some()
    }

    /// Validates every policy parameter.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] for non-finite or
    /// non-positive timeouts/thresholds or a negative backoff.
    pub fn validate(&self) -> Result<()> {
        if let Some(timeout) = self.timeout_cycles {
            ensure(
                timeout.is_finite() && timeout > 0.0,
                "recovery.timeout_cycles",
                timeout,
                "timeout must be finite and positive",
            )?;
        }
        ensure(
            self.backoff_base_cycles.is_finite() && self.backoff_base_cycles >= 0.0,
            "recovery.backoff_base_cycles",
            self.backoff_base_cycles,
            "backoff must be finite and non-negative",
        )?;
        if let Some(limit) = self.shed_backlog_cycles {
            ensure(
                limit.is_finite() && limit >= 0.0,
                "recovery.shed_backlog_cycles",
                limit,
                "admission threshold must be finite and non-negative",
            )?;
        }
        Ok(())
    }

    /// The backoff before retry number `retry` (1-based).
    #[must_use]
    pub fn backoff_cycles(&self, retry: u32) -> f64 {
        // Cap the shift so huge budgets cannot overflow; 2^32 cycles of
        // backoff already exceeds any practical horizon.
        let exp = (retry.saturating_sub(1)).min(32);
        self.backoff_base_cycles * (1u64 << exp) as f64
    }
}

/// The outcome of one offload "saga": first dispatch, any retries, and
/// the final resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SagaOutcome {
    /// When the offload's result is finally in hand (success, fallback
    /// completion, or abandonment detection).
    pub done: SimTime,
    /// When the host learned the saga's final resolution: the last
    /// attempt's response (or timeout deadline) for failures, `done`
    /// for successes. A fallback's host re-execution becomes *eligible*
    /// to run at this instant — the engine schedules it as a real slice
    /// from here, rather than assuming it ran for free inside
    /// `[detect, done)`.
    pub detect: SimTime,
    /// The first attempt's service start (the engine's engagement
    /// reference), clamped to `done`.
    pub engaged_ref: SimTime,
    /// Host cycles a fallback execution needs (0 otherwise). The engine
    /// charges these through the scheduler, not here.
    pub fallback_host_cycles: f64,
    /// The offload was abandoned: no result, the request fails.
    pub abandoned: bool,
}

/// Live fault-injection state for one simulation run: the plan, the
/// policy, a dedicated RNG, and the counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    pub recovery: RecoveryPolicy,
    rng: StdRng,
    pub metrics: FaultMetrics,
}

impl FaultState {
    pub fn new(plan: FaultPlan, recovery: RecoveryPolicy, rng_seed: u64) -> Self {
        Self {
            plan,
            recovery,
            rng: StdRng::seed_from_u64(rng_seed),
            metrics: FaultMetrics {
                active: true,
                ..FaultMetrics::default()
            },
        }
    }

    /// Runs an offload through fault injection and recovery against the
    /// device, entirely in virtual time (the device model resolves each
    /// dispatch synchronously, so retries and backoff can too).
    pub fn offload_saga(
        &mut self,
        device: &mut Device,
        issue: SimTime,
        core: usize,
        service_cycles: f64,
        host_cycles: f64,
    ) -> SagaOutcome {
        let mut submit = issue;
        let mut engaged_ref = None;
        let mut attempt: u32 = 0;
        loop {
            let spike = if self.plan.spike_probability > 0.0
                && self.rng.gen_range(0.0..1.0) < self.plan.spike_probability
            {
                self.metrics.latency_spikes += 1;
                self.plan.spike_cycles
            } else {
                0.0
            };
            let dispatch =
                device.dispatch_faulty(submit, core, service_cycles, spike, &self.plan.degradation);
            if dispatch.degraded {
                self.metrics.degraded_offloads += 1;
            }
            let engaged = *engaged_ref.get_or_insert(dispatch.service_start);
            let failed = self.plan.failure_probability > 0.0
                && self.rng.gen_range(0.0..1.0) < self.plan.failure_probability;
            if failed {
                self.metrics.injected_failures += 1;
            }
            let deadline = self.recovery.timeout_cycles.map(|t| submit + t);
            let timed_out = deadline.is_some_and(|d| dispatch.done > d);
            if !failed && !timed_out {
                return SagaOutcome {
                    done: dispatch.done,
                    detect: dispatch.done,
                    engaged_ref: engaged.min(dispatch.done),
                    fallback_host_cycles: 0.0,
                    abandoned: false,
                };
            }
            // When does the host learn the attempt is lost? A timeout
            // fires at the deadline; an undetected failure surfaces only
            // when the (error) response comes back.
            let detect = match deadline {
                Some(d) if timed_out => {
                    self.metrics.timeouts += 1;
                    d
                }
                Some(d) => dispatch.done.min(d),
                None => dispatch.done,
            };
            if attempt < self.recovery.max_retries {
                attempt += 1;
                self.metrics.retries += 1;
                submit = detect + self.recovery.backoff_cycles(attempt);
                continue;
            }
            if self.recovery.fallback_to_host {
                self.metrics.fallbacks += 1;
                return SagaOutcome {
                    // `done` is the earliest the result can exist — host
                    // re-execution starting right at detection. Designs
                    // that hold the core through the saga (Sync) use it;
                    // everyone else schedules a slice at `detect` and
                    // completes whenever that slice actually ran.
                    done: detect + host_cycles,
                    detect,
                    engaged_ref: engaged.min(detect + host_cycles),
                    fallback_host_cycles: host_cycles,
                    abandoned: false,
                };
            }
            self.metrics.abandoned_offloads += 1;
            return SagaOutcome {
                done: detect,
                detect,
                engaged_ref: engaged.min(detect),
                fallback_host_cycles: 0.0,
                abandoned: true,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn device() -> Device {
        Device::new(DeviceKind::Shared { servers: 1 }, 100.0, 1, 1e9)
    }

    fn sure_failure() -> FaultPlan {
        FaultPlan {
            failure_probability: 1.0,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn none_is_inactive_and_valid() {
        assert!(!FaultPlan::none().is_active());
        assert!(!RecoveryPolicy::none().is_active());
        FaultPlan::none().validate().unwrap();
        RecoveryPolicy::none().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let plan = FaultPlan {
            failure_probability: 1.5,
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            degradation: vec![DegradationWindow::slowdown(10.0, 5.0, 2.0)],
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            degradation: vec![DegradationWindow::slowdown(0.0, 5.0, -1.0)],
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
        let policy = RecoveryPolicy {
            timeout_cycles: Some(0.0),
            ..RecoveryPolicy::none()
        };
        assert!(policy.validate().is_err());
        let policy = RecoveryPolicy {
            backoff_base_cycles: f64::NAN,
            ..RecoveryPolicy::none()
        };
        assert!(policy.validate().is_err());
    }

    #[test]
    fn backoff_doubles_deterministically() {
        let policy = RecoveryPolicy {
            backoff_base_cycles: 100.0,
            max_retries: 3,
            ..RecoveryPolicy::none()
        };
        assert_eq!(policy.backoff_cycles(1), 100.0);
        assert_eq!(policy.backoff_cycles(2), 200.0);
        assert_eq!(policy.backoff_cycles(3), 400.0);
    }

    #[test]
    fn sure_failure_without_recovery_abandons_at_response() {
        let mut state = FaultState::new(sure_failure(), RecoveryPolicy::none(), 7);
        let mut dev = device();
        let saga = state.offload_saga(&mut dev, SimTime::new(0.0), 0, 50.0, 400.0);
        assert!(saga.abandoned);
        // Detection at the (error) response: L + service.
        assert_eq!(saga.done.cycles(), 150.0);
        assert_eq!(state.metrics.injected_failures, 1);
        assert_eq!(state.metrics.abandoned_offloads, 1);
        assert_eq!(state.metrics.retries, 0);
    }

    #[test]
    fn sure_failure_with_fallback_recovers_on_host() {
        let policy = RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 10.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let mut state = FaultState::new(sure_failure(), policy, 7);
        let mut dev = device();
        let saga = state.offload_saga(&mut dev, SimTime::new(0.0), 0, 50.0, 400.0);
        assert!(!saga.abandoned);
        assert_eq!(state.metrics.retries, 2);
        assert_eq!(state.metrics.fallbacks, 1);
        assert_eq!(state.metrics.injected_failures, 3);
        // Three attempts plus backoffs plus the host execution.
        assert!(saga.done.cycles() > 400.0);
        assert_eq!(saga.fallback_host_cycles, 400.0);
        // Detection precedes the earliest possible completion by exactly
        // the host re-execution the engine must now schedule.
        assert_eq!(saga.done.cycles() - saga.detect.cycles(), 400.0);
    }

    #[test]
    fn timeout_detects_slow_service_before_completion() {
        let policy = RecoveryPolicy {
            timeout_cycles: Some(200.0),
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        // No injected failures: the attempt is only *slow* (10k cycles of
        // service), and the timeout converts it into a host fallback.
        let mut state = FaultState::new(FaultPlan::none(), policy, 7);
        let mut dev = device();
        let saga = state.offload_saga(&mut dev, SimTime::new(0.0), 0, 10_000.0, 400.0);
        assert_eq!(state.metrics.timeouts, 1);
        assert_eq!(state.metrics.fallbacks, 1);
        assert_eq!(saga.detect.cycles(), 200.0); // the deadline fires
        assert_eq!(saga.done.cycles(), 600.0); // deadline 200 + host 400
    }

    #[test]
    fn saga_is_deterministic_per_seed() {
        let plan = FaultPlan {
            failure_probability: 0.5,
            spike_probability: 0.3,
            spike_cycles: 1_000.0,
            ..FaultPlan::none()
        };
        let policy = RecoveryPolicy {
            timeout_cycles: Some(5_000.0),
            max_retries: 2,
            backoff_base_cycles: 50.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let run = || {
            let mut state = FaultState::new(plan.clone(), policy, 99);
            let mut dev = device();
            (0..64)
                .map(|i| {
                    state
                        .offload_saga(&mut dev, SimTime::new(f64::from(i) * 500.0), 0, 80.0, 500.0)
                        .done
                        .cycles()
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }
}
