//! Structured errors for simulator construction and runners.
//!
//! Degenerate configurations used to surface as panics deep inside the
//! engine (or worse, as NaN metrics in serialized JSON); every entry
//! point now validates up front and reports one of these instead.

use std::fmt;

/// Errors produced when building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Name of the offending field (e.g. `cores`, `horizon`).
        field: &'static str,
        /// The rejected value (integer fields are widened to `f64`).
        value: f64,
        /// Human-readable explanation of the violated constraint.
        reason: &'static str,
    },
    /// A case-study name did not match any Table 6 row.
    UnknownCaseStudy {
        /// The unrecognized name.
        name: String,
        /// The valid names, for the error message.
        valid: &'static [&'static str],
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig {
                field,
                value,
                reason,
            } => write!(f, "invalid simulation config: {field} = {value}: {reason}"),
            SimError::UnknownCaseStudy { name, valid } => {
                write!(f, "unknown case study '{name}' (valid: {})", valid.join(", "))
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

pub(crate) fn ensure(
    condition: bool,
    field: &'static str,
    value: f64,
    reason: &'static str,
) -> Result<()> {
    if condition {
        Ok(())
    } else {
        Err(SimError::InvalidConfig {
            field,
            value,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_reason() {
        let err = SimError::InvalidConfig {
            field: "horizon",
            value: 0.0,
            reason: "horizon must be positive",
        };
        let msg = err.to_string();
        assert!(msg.contains("horizon"));
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn display_lists_valid_case_studies() {
        let err = SimError::UnknownCaseStudy {
            name: "bogus".to_owned(),
            valid: &["aes-ni", "encryption"],
        };
        let msg = err.to_string();
        assert!(msg.contains("bogus"));
        assert!(msg.contains("aes-ni, encryption"));
    }

    #[test]
    fn ensure_accepts_and_rejects() {
        assert!(ensure(true, "x", 1.0, "ok").is_ok());
        assert!(ensure(false, "x", 2.0, "bad").is_err());
    }
}
