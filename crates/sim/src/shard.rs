//! Sharded execution of one large simulation across worker threads.
//!
//! The monolithic engine is inherently serial: one global event order,
//! one RNG stream, one floating-point accumulation order. Sharded mode
//! is therefore an *alternative decomposition* of the same scenario —
//! the host's cores, threads, and (shared-device) service units are
//! partitioned into `L` independent shard engines, each owning a
//! disjoint slice of the machine and a disjoint request-id space, with
//! decorrelated per-shard RNG streams derived from the run seed.
//!
//! # Determinism model
//!
//! The shard count `L` is a **function of the configuration only**
//! (see [`ShardPlan::for_config`]) — never of how many worker threads
//! execute the shards. `--shards N` picks only the worker-pool width.
//! Three mechanisms then make the output byte-identical at any width:
//!
//! 1. **Fork–join epochs.** The horizon is cut into [`ShardPlan::epochs`]
//!    equal epochs. All shards advance to an epoch boundary and barrier
//!    ([`ExecPool::for_each_mut`]) before any cross-shard state moves.
//! 2. **Ordered exchange.** At each boundary, shards of a shared device
//!    publish the service demand they dispatched during the epoch; the
//!    totals are folded *in shard-index order* and each shard's device
//!    is occupied by the foreign demand, modelling contention with the
//!    siblings it cannot see. Floating-point folds never depend on
//!    worker scheduling.
//! 3. **Ordered merge.** Final accumulators are folded in shard-index
//!    order into one [`SimMetrics`].
//!
//! A single-shard plan (`L == 1`, e.g. coprime cores/threads or a
//! one-server FIFO) degenerates to the classic engine exactly: same
//! seed, same event order, bit-identical metrics.

use std::sync::atomic::{AtomicUsize, Ordering};

use accelerometer::exec::ExecPool;

use crate::device::DeviceKind;
use crate::engine::{EngineStats, ShardOutput, SimConfig, Simulator};
use crate::error::Result;
use crate::metrics::{FaultMetrics, LatencyStats, SimMetrics};
use crate::parallel::derive_seed;
use crate::trace::TraceStore;

/// Upper bound on the logical shard count. Shards trade fidelity of
/// cross-shard queueing for parallelism; eight bounds the loss while
/// covering every host the fleet scenarios model.
const MAX_SHARDS: usize = 8;

/// Epochs per run: enough barriers that shared-device demand circulates
/// while keeping barrier overhead negligible against millions of events.
const EPOCHS: usize = 16;

/// Process-wide default shard-pool width; `0` means "classic monolithic
/// engine" (sharding off). Binaries wire their `--shards N` flag here,
/// mirroring `--jobs`.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide shard-pool width used by the runners. `0`
/// disables sharding (the classic engine). Any non-zero width produces
/// identical output — width 1 is the reference execution.
pub fn set_default_shards(shards: usize) {
    DEFAULT_SHARDS.store(shards, Ordering::Relaxed);
}

/// The current default shard-pool width (`0` = sharding off).
#[must_use]
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// How a configuration decomposes into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Logical shard count `L` (1 = the classic engine verbatim).
    pub shards: usize,
    /// Epoch barriers per run.
    pub epochs: usize,
}

impl ShardPlan {
    /// Computes the decomposition for `cfg`: the largest `L ≤ 8` that
    /// divides the core count, the thread count, *and* (for a shared
    /// device) the server count, so every shard owns an equal integer
    /// slice of each resource. Depends on the configuration only —
    /// never on `--shards` — which is what makes every worker width
    /// produce the same decomposition.
    #[must_use]
    pub fn for_config(cfg: &SimConfig) -> Self {
        let mut g = gcd(cfg.cores, cfg.threads);
        if let Some(DeviceKind::Shared { servers }) = cfg.offload.map(|o| o.device) {
            g = gcd(g, servers);
        }
        let shards = (1..=MAX_SHARDS.min(g))
            .rev()
            .find(|&d| g.is_multiple_of(d))
            .unwrap_or(1);
        Self {
            shards,
            epochs: EPOCHS,
        }
    }

    /// The configuration shard `index` runs: an equal slice of cores,
    /// threads, and shared-device servers, with a decorrelated seed.
    /// With `L == 1` the configuration is returned verbatim (classic
    /// seed included), so the degenerate plan reproduces the monolithic
    /// engine bit for bit.
    #[must_use]
    pub fn shard_config(&self, cfg: &SimConfig, index: usize) -> SimConfig {
        let mut c = cfg.clone();
        if self.shards == 1 {
            return c;
        }
        c.cores = cfg.cores / self.shards;
        c.threads = cfg.threads / self.shards;
        c.seed = derive_seed(cfg.seed, index as u64);
        if let Some(o) = &mut c.offload {
            if let DeviceKind::Shared { servers } = o.device {
                o.device = DeviceKind::Shared {
                    servers: servers / self.shards,
                };
            }
        }
        c
    }
}

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Observability counters for a sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// The decomposition that ran.
    pub plan: ShardPlan,
    /// Events each shard processed, in shard-index order.
    pub per_shard_events: Vec<u64>,
    /// Peak simultaneous live requests each shard observed, in
    /// shard-index order. Shards share no requests, so per-shard peaks
    /// are exact; the merged [`EngineStats::peak_live_requests`] takes
    /// their maximum (the largest peak any one engine actually held —
    /// summing would fabricate a "fleet-wide peak" no engine ever saw).
    pub per_shard_peak_live: Vec<usize>,
    /// Engine counters summed across shards (`peak_live_requests` is
    /// the max of `per_shard_peak_live`).
    pub engine: EngineStats,
}

/// Runs `cfg` sharded on `pool` and returns the merged metrics.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the configuration is
/// rejected by [`SimConfig::validate`].
pub fn run_sharded(pool: &ExecPool, cfg: &SimConfig) -> Result<SimMetrics> {
    run_sharded_instrumented_traced(pool, cfg, None).map(|(m, _)| m)
}

/// [`run_sharded`] with an optional frozen-trace store: each shard looks
/// up (or, in an eager store, draws and caches) the trace for its
/// decorrelated seed, so a sweep's grid points share one trace draw per
/// shard instead of redrawing per point. Byte-identical to
/// [`run_sharded`] — the trace path is the same stream, pre-drawn.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the configuration is
/// rejected by [`SimConfig::validate`].
pub fn run_sharded_traced(
    pool: &ExecPool,
    cfg: &SimConfig,
    traces: Option<&TraceStore>,
) -> Result<SimMetrics> {
    run_sharded_instrumented_traced(pool, cfg, traces).map(|(m, _)| m)
}

/// [`run_sharded`] plus the per-shard counters.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the configuration is
/// rejected by [`SimConfig::validate`].
pub fn run_sharded_instrumented(
    pool: &ExecPool,
    cfg: &SimConfig,
) -> Result<(SimMetrics, ShardStats)> {
    run_sharded_instrumented_traced(pool, cfg, None)
}

fn run_sharded_instrumented_traced(
    pool: &ExecPool,
    cfg: &SimConfig,
    traces: Option<&TraceStore>,
) -> Result<(SimMetrics, ShardStats)> {
    cfg.validate()?;
    let plan = ShardPlan::for_config(cfg);
    let mut shards = (0..plan.shards)
        .map(|i| {
            let shard_cfg = plan.shard_config(cfg, i);
            let trace = traces.and_then(|s| s.get(&shard_cfg));
            Simulator::try_new_with_trace(shard_cfg, trace)
        })
        .collect::<Result<Vec<_>>>()?;
    // Only shards of one shared device interact; per-core devices are
    // private by construction and unlimited devices never queue.
    let exchange = plan.shards > 1
        && matches!(
            cfg.offload.map(|o| o.device),
            Some(DeviceKind::Shared { .. })
        );
    for epoch in 1..=plan.epochs {
        let until = if epoch == plan.epochs {
            cfg.horizon
        } else {
            cfg.horizon * (epoch as f64 / plan.epochs as f64)
        };
        // Barrier: every shard reaches the boundary before any exchange.
        pool.for_each_mut(&mut shards, |_, shard| shard.run_until(until));
        if exchange {
            // Fold demands in shard-index order; each shard's device
            // absorbs the demand its siblings dispatched this epoch,
            // spread over its slice of the service units.
            let demands: Vec<f64> = shards
                .iter_mut()
                .map(Simulator::take_epoch_service)
                .collect();
            let total: f64 = demands.iter().sum();
            for (shard, own) in shards.iter_mut().zip(&demands) {
                let servers = shard.device_servers();
                if servers > 0 {
                    shard.defer_device((total - own) / servers as f64);
                }
            }
        }
    }
    let outputs: Vec<ShardOutput> = shards.into_iter().map(Simulator::into_shard_output).collect();
    Ok(merge(cfg, plan, &outputs))
}

/// Folds shard accumulators into one [`SimMetrics`], in shard-index
/// order, with the exact arithmetic the monolithic `finish` uses — so a
/// single-shard plan is bit-identical to the classic engine.
fn merge(cfg: &SimConfig, plan: ShardPlan, outputs: &[ShardOutput]) -> (SimMetrics, ShardStats) {
    let horizon = cfg.horizon;
    let mut completed = 0u64;
    let mut completed_failed = 0u64;
    let mut core_busy = 0.0f64;
    let mut offloads = 0u64;
    let mut suppressed = 0u64;
    let mut switches = 0u64;
    let mut device_busy = 0.0f64;
    let mut device_queue_delay_total = 0.0f64;
    let mut device_offloads = 0u64;
    let mut device_servers = 0usize;
    let mut samples: Vec<f64> = Vec::new();
    let mut faults: Option<FaultMetrics> = None;
    let mut engine = EngineStats::default();
    let mut per_shard_events = Vec::with_capacity(outputs.len());
    let mut per_shard_peak_live = Vec::with_capacity(outputs.len());
    for out in outputs {
        completed += out.completed;
        completed_failed += out.completed_failed;
        core_busy += out.core_busy;
        offloads += out.offloads;
        suppressed += out.suppressed;
        switches += out.switches;
        device_busy += out.device_busy;
        device_queue_delay_total += out.device_queue_delay_total;
        device_offloads += out.device_offloads;
        device_servers += out.device_servers;
        samples.extend_from_slice(&out.latencies);
        if let Some(f) = &out.faults {
            let acc = faults.get_or_insert_with(FaultMetrics::default);
            acc.active |= f.active;
            acc.injected_failures += f.injected_failures;
            acc.latency_spikes += f.latency_spikes;
            acc.degraded_offloads += f.degraded_offloads;
            acc.timeouts += f.timeouts;
            acc.retries += f.retries;
            acc.fallbacks += f.fallbacks;
            acc.shed_offloads += f.shed_offloads;
            acc.abandoned_offloads += f.abandoned_offloads;
        }
        engine.events_processed += out.stats.events_processed;
        engine.events_scheduled += out.stats.events_scheduled;
        engine.peak_live_requests = engine.peak_live_requests.max(out.stats.peak_live_requests);
        engine.batch_runs += out.stats.batch_runs;
        engine.multi_event_batches += out.stats.multi_event_batches;
        engine.heap_sift_ups += out.stats.heap_sift_ups;
        engine.heap_sift_downs += out.stats.heap_sift_downs;
        engine.bank_refills += out.stats.bank_refills;
        engine.trace_requests_replayed += out.stats.trace_requests_replayed;
        per_shard_events.push(out.stats.events_processed);
        per_shard_peak_live.push(out.stats.peak_live_requests);
    }
    let faults = faults.map_or_else(FaultMetrics::default, |mut m| {
        m.failed_requests = completed_failed;
        m.goodput_per_gcycle = (completed - completed_failed) as f64 / horizon * 1e9;
        m
    });
    let mean_queue_delay = if device_offloads == 0 {
        0.0
    } else {
        device_queue_delay_total / device_offloads as f64
    };
    let device_utilization = if device_servers == 0 {
        0.0
    } else {
        device_busy / (device_servers as f64 * horizon)
    };
    let metrics = SimMetrics {
        horizon_cycles: horizon,
        completed_requests: completed,
        throughput_per_gcycle: completed as f64 / horizon * 1e9,
        latency: LatencyStats::from_samples_owned(samples),
        core_utilization: core_busy / (cfg.cores as f64 * horizon),
        offloads_dispatched: offloads,
        offloads_suppressed: suppressed,
        mean_queue_delay,
        device_utilization,
        device_offloads,
        thread_switches: switches,
        faults,
    };
    let stats = ShardStats {
        plan,
        per_shard_events,
        per_shard_peak_live,
        engine,
    };
    (metrics, stats)
}

/// Runs one configuration point the way the batch runners do: through
/// the sharded path when `--shards` is set, otherwise through a
/// reusable engine slot that is `reset` instead of rebuilt. When a
/// trace store is supplied, the engine adopts the cached frozen trace
/// for the point's (seed, workload) — or each shard's derived seed —
/// instead of redrawing the stream.
///
/// # Panics
///
/// Panics on an invalid configuration, matching the batch runners'
/// historical `Simulator::new` behaviour (sweep frontends validate
/// configurations up front).
pub(crate) fn run_point(
    slot: &mut Option<Simulator>,
    cfg: &SimConfig,
    traces: Option<&TraceStore>,
) -> SimMetrics {
    let shards = default_shards();
    if shards > 0 {
        match run_sharded_traced(&ExecPool::new(shards), cfg, traces) {
            Ok(metrics) => return metrics,
            Err(err) => panic!("{err}"),
        }
    }
    let trace = traces.and_then(|s| s.get(cfg));
    match slot {
        Some(sim) => {
            if let Err(err) = sim.reset_with_trace(cfg.clone(), trace) {
                panic!("{err}");
            }
            sim.run_instrumented_in_place().0
        }
        None => match Simulator::try_new_with_trace(cfg.clone(), trace) {
            Ok(sim) => slot.insert(sim).run_instrumented_in_place().0,
            Err(err) => panic!("{err}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DegradationWindow, FaultPlan, RecoveryPolicy};
    use crate::workload::WorkloadSpec;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
    use crate::engine::OffloadConfig;

    fn workload() -> WorkloadSpec {
        WorkloadSpec {
            non_kernel_cycles: 4_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)]).unwrap(),
            cycles_per_byte: cycles_per_byte(2.0),
        }
    }

    fn sharded_config() -> SimConfig {
        SimConfig {
            cores: 4,
            threads: 8,
            context_switch_cycles: 400.0,
            horizon: 8e6,
            seed: 42,
            workload: workload(),
            offload: Some(OffloadConfig {
                design: ThreadingDesign::AsyncSameThread,
                strategy: AccelerationStrategy::OffChip,
                driver: DriverMode::Posted,
                device: DeviceKind::Shared { servers: 4 },
                peak_speedup: 4.0,
                interface_latency: 2_000.0,
                setup_cycles: 50.0,
                dispatch_pollution: 0.0,
                min_offload_bytes: None,
            }),
            fault: FaultPlan::none(),
            recovery: RecoveryPolicy::none(),
        }
    }

    #[test]
    fn plan_depends_only_on_config() {
        let cfg = sharded_config();
        let plan = ShardPlan::for_config(&cfg);
        assert_eq!(plan.shards, 4); // gcd(4 cores, 8 threads, 4 servers)
        // A one-server FIFO cannot shard.
        let mut single = cfg.clone();
        single.offload.as_mut().unwrap().device = DeviceKind::Shared { servers: 1 };
        assert_eq!(ShardPlan::for_config(&single).shards, 1);
        // Coprime cores/threads cannot shard.
        let mut coprime = cfg;
        coprime.cores = 3;
        coprime.threads = 7;
        assert_eq!(ShardPlan::for_config(&coprime).shards, 1);
    }

    #[test]
    fn shard_configs_partition_the_machine() {
        let cfg = sharded_config();
        let plan = ShardPlan::for_config(&cfg);
        let mut cores = 0;
        let mut threads = 0;
        let mut seeds = Vec::new();
        for i in 0..plan.shards {
            let sc = plan.shard_config(&cfg, i);
            cores += sc.cores;
            threads += sc.threads;
            seeds.push(sc.seed);
            assert_eq!(
                sc.offload.unwrap().device,
                DeviceKind::Shared { servers: 1 }
            );
        }
        assert_eq!(cores, cfg.cores);
        assert_eq!(threads, cfg.threads);
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), plan.shards, "shard seeds must differ");
    }

    #[test]
    fn output_is_identical_at_every_pool_width() {
        let cfg = sharded_config();
        let reference = run_sharded_instrumented(&ExecPool::new(1), &cfg).unwrap();
        for width in [2, 4, 13] {
            let got = run_sharded_instrumented(&ExecPool::new(width), &cfg).unwrap();
            assert_eq!(reference.0, got.0, "metrics diverged at width {width}");
            assert_eq!(reference.1, got.1, "stats diverged at width {width}");
        }
        assert_eq!(reference.1.plan.shards, 4);
        assert_eq!(reference.1.per_shard_events.len(), 4);
        assert!(reference.1.per_shard_events.iter().all(|&e| e > 0));
    }

    #[test]
    fn width_invariance_holds_under_active_faults() {
        let mut cfg = sharded_config();
        cfg.fault = FaultPlan {
            failure_probability: 0.02,
            spike_probability: 0.01,
            spike_cycles: 20_000.0,
            degradation: vec![DegradationWindow::downtime(2e6, 3e6)],
            ..FaultPlan::none()
        };
        cfg.recovery = RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 1_000.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let reference = run_sharded(&ExecPool::new(1), &cfg).unwrap();
        assert!(reference.faults.active);
        assert!(reference.faults.injected_failures > 0);
        for width in [2, 4] {
            let got = run_sharded(&ExecPool::new(width), &cfg).unwrap();
            assert_eq!(reference, got, "fault metrics diverged at width {width}");
        }
    }

    #[test]
    fn single_shard_plan_reproduces_the_classic_engine() {
        // Coprime cores/threads force L = 1: the sharded runner must
        // then be a bit-exact wrapper around the monolithic engine.
        let mut cfg = sharded_config();
        cfg.cores = 3;
        cfg.threads = 7;
        let classic = Simulator::new(cfg.clone()).run();
        let sharded = run_sharded(&ExecPool::new(4), &cfg).unwrap();
        assert_eq!(classic, sharded);
    }

    #[test]
    fn merged_peak_live_requests_is_the_max_of_shard_peaks() {
        // Shards hold disjoint request slabs, so the merged peak is the
        // largest peak any single engine actually observed — summing
        // per-shard peaks would fabricate a simultaneous "fleet peak"
        // no engine ever held.
        let cfg = sharded_config();
        let (_, stats) = run_sharded_instrumented(&ExecPool::new(1), &cfg).unwrap();
        assert_eq!(stats.per_shard_peak_live.len(), stats.plan.shards);
        assert!(stats.per_shard_peak_live.iter().all(|&p| p > 0));
        assert_eq!(
            stats.engine.peak_live_requests,
            stats.per_shard_peak_live.iter().copied().max().unwrap()
        );

        // A degenerate single-shard plan must reproduce the classic
        // engine's counters bit for bit (max of one value == the value).
        let mut single = cfg;
        single.cores = 3;
        single.threads = 7;
        let (_, sharded_stats) = run_sharded_instrumented(&ExecPool::new(2), &single).unwrap();
        let (_, classic_stats) = Simulator::new(single).run_instrumented();
        assert_eq!(sharded_stats.engine, classic_stats);
        assert_eq!(
            sharded_stats.per_shard_peak_live,
            vec![classic_stats.peak_live_requests]
        );
    }

    #[test]
    fn epoch_exchange_surfaces_cross_shard_contention() {
        // A slow shared device under heavy demand: shards must observe
        // queueing beyond what their private slice generates. With the
        // exchange, merged mean queue delay exceeds the no-exchange
        // lower bound of an unshared-looking device (smoke: non-zero).
        let mut cfg = sharded_config();
        cfg.offload.as_mut().unwrap().peak_speedup = 1.1;
        let m = run_sharded(&ExecPool::new(2), &cfg).unwrap();
        assert!(m.mean_queue_delay > 0.0);
        assert!(m.device_utilization > 0.0);
    }

    #[test]
    fn run_point_honours_the_global_and_reuses_the_slot() {
        // One test covers both the global round-trip and the classic
        // slot path, so nothing else races the process-wide default
        // while cargo runs tests concurrently.
        assert_eq!(default_shards(), 0);
        set_default_shards(3);
        assert_eq!(default_shards(), 3);
        let mut slot = None;
        let sharded = run_point(&mut slot, &sharded_config(), None);
        assert_eq!(
            sharded,
            run_sharded(&ExecPool::new(1), &sharded_config()).unwrap(),
            "with the global set, run_point must take the sharded path"
        );
        // An eager trace store must not change a sharded byte: shard
        // traces are looked up per derived seed and drawn once.
        let store = TraceStore::eager();
        assert_eq!(
            sharded,
            run_point(&mut slot, &sharded_config(), Some(&store)),
            "sharded trace reuse diverged"
        );
        assert_eq!(
            store.cached(),
            ShardPlan::for_config(&sharded_config()).shards,
            "one trace per shard seed"
        );
        assert!(slot.is_none(), "sharded path must not touch the slot");
        set_default_shards(0);
        assert_eq!(default_shards(), 0);
        let base = sharded_config();
        for seed in [1u64, 7, 99] {
            let mut cfg = base.clone();
            cfg.seed = seed;
            let got = run_point(&mut slot, &cfg, None);
            let fresh = Simulator::new(cfg).run();
            assert_eq!(got, fresh, "seed {seed}");
        }
        assert!(slot.is_some(), "classic path must cache the engine");
    }
}
