//! A/B testing: the paper's production measurement methodology (§4),
//! reproduced in simulation.
//!
//! "A/B testing is the process of comparing two identical systems that
//! differ only in a single variable" — here, two simulator configurations
//! identical except for whether the kernel is offloaded. The measured
//! throughput ratio is the experiment's "real speedup".

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::engine::{OffloadConfig, SimConfig, Simulator};
use crate::metrics::SimMetrics;
use crate::trace::{trace_reuse_enabled, FrozenTrace};

/// The outcome of an A/B comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbResult {
    /// Metrics of the unaccelerated control run.
    pub baseline: SimMetrics,
    /// Metrics of the accelerated treatment run.
    pub treatment: SimMetrics,
}

impl AbResult {
    /// Measured throughput speedup (treatment / baseline).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.treatment.speedup_over(&self.baseline)
    }

    /// Measured throughput gain in percent.
    #[must_use]
    pub fn speedup_percent(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }

    /// Measured mean-latency reduction (baseline / treatment).
    #[must_use]
    pub fn latency_reduction(&self) -> f64 {
        self.treatment.latency_reduction_over(&self.baseline)
    }

    /// Measured p99-latency ratio (baseline / treatment) — the SLO view.
    #[must_use]
    pub fn p99_latency_reduction(&self) -> f64 {
        self.baseline.latency.p99 / self.treatment.latency.p99
    }
}

/// Runs the A/B experiment: `control` unaccelerated versus `control`
/// plus `offload`. The two runs share every other parameter including
/// the seed, and execute on separate OS threads.
///
/// # Panics
///
/// Panics if `control` already carries an offload configuration — the
/// control arm must be the unaccelerated system.
#[must_use]
pub fn run_ab(control: &SimConfig, offload: OffloadConfig) -> AbResult {
    assert!(
        control.offload.is_none(),
        "the control arm must be unaccelerated"
    );
    let mut treatment_cfg = control.clone();
    treatment_cfg.offload = Some(offload);
    // Both arms share the seed and workload by construction, so one
    // frozen trace (sized for the faster treatment arm) serves both —
    // the experiment's stochastic input is sampled once, not twice.
    let trace = trace_reuse_enabled()
        .then(|| Arc::new(FrozenTrace::for_config(&treatment_cfg)));
    let (baseline, treatment) = std::thread::scope(|scope| {
        let base_trace = trace.clone();
        let base = scope.spawn(move || {
            Simulator::try_new_with_trace(control.clone(), base_trace)
                .unwrap_or_else(|err| panic!("{err}"))
                .run()
        });
        let treat = scope.spawn(move || {
            Simulator::try_new_with_trace(treatment_cfg, trace)
                .unwrap_or_else(|err| panic!("{err}"))
                .run()
        });
        (
            base.join().expect("baseline run does not panic"),
            treat.join().expect("treatment run does not panic"),
        )
    });
    AbResult {
        baseline,
        treatment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::GranularityCdf;

    fn control() -> SimConfig {
        SimConfig {
            cores: 2,
            threads: 2,
            context_switch_cycles: 0.0,
            horizon: 2e7,
            seed: 5,
            workload: WorkloadSpec {
                non_kernel_cycles: 4_000.0,
                kernels_per_request: 1,
                granularity: GranularityCdf::from_points(vec![(512.0, 1.0)]).unwrap(),
                cycles_per_byte: cycles_per_byte(4.0),
            },
            offload: None,
            fault: Default::default(),
            recovery: Default::default(),
        }
    }

    #[test]
    fn ab_measures_positive_speedup_for_cheap_acceleration() {
        let result = run_ab(&control(), OffloadConfig::on_chip_sync(8.0));
        assert!(result.speedup() > 1.1, "speedup {}", result.speedup());
        assert!(result.speedup_percent() > 10.0);
        assert!(result.latency_reduction() > 1.0);
        assert!(result.p99_latency_reduction() > 1.0);
    }

    #[test]
    fn ab_detects_harmful_acceleration() {
        // An offload whose overheads exceed the saved cycles slows the
        // service down; the A/B harness must report a speedup below 1.
        let mut offload = OffloadConfig::on_chip_sync(1.1);
        offload.setup_cycles = 5_000.0;
        let result = run_ab(&control(), offload);
        assert!(result.speedup() < 1.0, "speedup {}", result.speedup());
    }

    #[test]
    #[should_panic(expected = "control arm must be unaccelerated")]
    fn rejects_accelerated_control() {
        let mut cfg = control();
        cfg.offload = Some(OffloadConfig::on_chip_sync(2.0));
        let _ = run_ab(&cfg, OffloadConfig::on_chip_sync(2.0));
    }
}
