//! Deterministic parallel execution of independent simulations.
//!
//! Re-exports the workspace-wide [`ExecPool`] primitive and adds the
//! simulation-specific pieces: batch runners for [`SimConfig`] sets and
//! a seed-derivation function for replica studies.
//!
//! # Determinism
//!
//! Every simulation is fully determined by its [`SimConfig`] (which
//! carries its own RNG seed), so fanning a batch over worker threads
//! cannot change any run's result — only the wall-clock time. Batch
//! outputs always preserve input order, making `--jobs 1` and
//! `--jobs N` byte-identical.

pub use accelerometer::exec::{available_jobs, default_jobs, set_default_jobs, ExecPool};

use crate::engine::SimConfig;
use crate::metrics::SimMetrics;
use crate::shard::run_point;
use crate::trace::{trace_reuse_enabled, TraceStore};

/// Derives a statistically independent child seed from a root seed and
/// a job index (splitmix64 over `root ^ index·φ`), so replica studies
/// get decorrelated streams while remaining reproducible from the root.
#[must_use]
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut z = root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs every configuration on the pool, returning metrics in input
/// order. Each worker keeps one engine alive across the jobs it pulls
/// (reset, not rebuilt, per configuration), and the whole batch routes
/// through the sharded runner instead when `--shards` is set (see
/// [`crate::shard::set_default_shards`]).
#[must_use]
pub fn run_batch(pool: &ExecPool, configs: &[SimConfig]) -> Vec<SimMetrics> {
    // Batch configs usually carry distinct seeds (replicas), where a
    // draw-once-use-once frozen trace is pure overhead — so the store
    // serves only (seed, workload) pairs that appear more than once,
    // prewarmed here; unique configs draw live through their banks.
    let traces = trace_reuse_enabled()
        .then(|| {
            let store = TraceStore::prewarmed_only();
            for (i, cfg) in configs.iter().enumerate() {
                let duplicated = configs[..i]
                    .iter()
                    .any(|c| c.seed == cfg.seed && c.workload == cfg.workload);
                if duplicated {
                    store.prewarm(cfg);
                }
            }
            store
        })
        .filter(|store| store.cached() > 0);
    pool.map_init(configs, || None, |slot, _, cfg| {
        run_point(slot, cfg, traces.as_ref())
    })
}

/// Runs `replicas` copies of `base` whose seeds are derived from
/// `base.seed` via [`derive_seed`], for confidence intervals over the
/// simulator's stochastic outputs.
#[must_use]
pub fn run_replicas(pool: &ExecPool, base: &SimConfig, replicas: usize) -> Vec<SimMetrics> {
    let configs: Vec<SimConfig> = (0..replicas)
        .map(|i| {
            let mut cfg = base.clone();
            cfg.seed = derive_seed(base.seed, i as u64);
            cfg
        })
        .collect();
    run_batch(pool, &configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::workload::WorkloadSpec;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::GranularityCdf;

    fn base() -> SimConfig {
        SimConfig {
            cores: 2,
            threads: 2,
            context_switch_cycles: 0.0,
            horizon: 5e6,
            seed: 11,
            workload: WorkloadSpec {
                non_kernel_cycles: 4_000.0,
                kernels_per_request: 1,
                granularity: GranularityCdf::from_points(vec![(512.0, 1.0)]).unwrap(),
                cycles_per_byte: cycles_per_byte(2.0),
            },
            offload: None,
            fault: Default::default(),
            recovery: Default::default(),
        }
    }

    #[test]
    fn batch_results_are_independent_of_pool_width() {
        let configs: Vec<SimConfig> = (0..6)
            .map(|i| {
                let mut cfg = base();
                cfg.seed = 100 + i;
                cfg
            })
            .collect();
        let sequential = run_batch(&ExecPool::new(1), &configs);
        let parallel = run_batch(&ExecPool::new(8), &configs);
        assert_eq!(sequential, parallel);
        // And each run equals a direct invocation.
        for (cfg, m) in configs.iter().zip(&sequential) {
            assert_eq!(Simulator::new(cfg.clone()).run(), *m);
        }
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collisions in {seeds:?}");
    }

    #[test]
    fn replicas_differ_but_are_reproducible() {
        let pool = ExecPool::new(4);
        let a = run_replicas(&pool, &base(), 4);
        let b = run_replicas(&pool, &base(), 4);
        assert_eq!(a, b);
        // Distinct seeds → distinct completion counts with high
        // probability at this horizon.
        assert!(
            a.iter()
                .any(|m| m.completed_requests != a[0].completed_requests)
                || a.len() == 1
        );
    }
}
