//! The fault sweep: one degraded scenario, many recovery policies.
//!
//! §4's lesson is that offload engines become distributed-system
//! dependencies; this runner quantifies what each recovery discipline
//! buys when the accelerator misbehaves. A [`FaultScenario`] pairs a
//! base configuration with a [`FaultPlan`] and a list of named
//! [`RecoveryPolicy`]s; the sweep simulates a healthy reference run plus
//! one run per policy and reports goodput, p99, and an SLO verdict per
//! policy. Every run is an independent seeded simulation, so the report
//! is byte-identical at any worker-pool width.

use accelerometer::LatencySlo;
use serde::{Deserialize, Serialize};

use crate::engine::{OffloadConfig, SimConfig};
use crate::error::{ensure, Result};
use crate::fault::{DegradationWindow, FaultPlan, RecoveryPolicy};
use crate::metrics::SimMetrics;
use crate::parallel::ExecPool;
use crate::shard::run_point;
use crate::trace::TraceStore;

/// A recovery policy with a human-readable name for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedPolicy {
    /// Display name (e.g. `"retry-fallback"`).
    pub name: String,
    /// The policy itself.
    pub policy: RecoveryPolicy,
}

/// One fault sweep: a base configuration, the faults to inject, and the
/// recovery policies to compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// The base simulation (its own `fault`/`recovery` fields are
    /// ignored; the sweep substitutes the plan and each policy).
    pub base: SimConfig,
    /// The fault plan applied to every policy run.
    pub plan: FaultPlan,
    /// The recovery policies to compare, in report order.
    pub policies: Vec<NamedPolicy>,
    /// SLO: minimum acceptable `healthy p99 / faulted p99` ratio.
    pub slo_min_p99_ratio: f64,
}

/// One policy's outcome under the scenario's faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// The policy's name.
    pub policy: String,
    /// Good (non-failed) requests per 10⁹ host cycles.
    pub goodput_per_gcycle: f64,
    /// p99 request latency under faults, in cycles.
    pub p99_latency: f64,
    /// `healthy p99 / faulted p99` (1.0 = no tail inflation).
    pub p99_ratio_vs_healthy: f64,
    /// Whether the ratio meets the scenario's SLO.
    pub slo_met: bool,
    /// The run's full metrics (including the fault counters).
    pub metrics: SimMetrics,
}

/// The full report: the healthy reference plus one outcome per policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepReport {
    /// The seed every run used.
    pub seed: u64,
    /// The scenario's SLO threshold, echoed for the reader.
    pub slo_min_p99_ratio: f64,
    /// The fault-free reference run.
    pub healthy: SimMetrics,
    /// Per-policy outcomes, in scenario order.
    pub outcomes: Vec<PolicyOutcome>,
}

/// Runs the sweep on the process-wide default pool.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the base
/// configuration, the plan, any policy, or the SLO ratio is invalid.
pub fn run_fault_sweep(scenario: &FaultScenario) -> Result<FaultSweepReport> {
    run_fault_sweep_with(&ExecPool::default(), scenario)
}

/// [`run_fault_sweep`] with an explicit worker pool. Each run is an
/// independent seeded simulation and results are assembled in input
/// order, so the report is identical at any pool width.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the base
/// configuration, the plan, any policy, or the SLO ratio is invalid.
pub fn run_fault_sweep_with(pool: &ExecPool, scenario: &FaultScenario) -> Result<FaultSweepReport> {
    ensure(
        scenario.slo_min_p99_ratio.is_finite() && scenario.slo_min_p99_ratio > 0.0,
        "slo_min_p99_ratio",
        scenario.slo_min_p99_ratio,
        "SLO ratio must be finite and positive",
    )?;
    let slo = LatencySlo::at_least(scenario.slo_min_p99_ratio).expect("validated above");

    // Index 0 is the healthy reference; one faulted run per policy.
    let mut configs = Vec::with_capacity(scenario.policies.len() + 1);
    let mut healthy = scenario.base.clone();
    healthy.fault = FaultPlan::none();
    healthy.recovery = RecoveryPolicy::none();
    configs.push(healthy);
    for named in &scenario.policies {
        let mut cfg = scenario.base.clone();
        cfg.fault = scenario.plan.clone();
        cfg.recovery = named.policy;
        configs.push(cfg);
    }
    // Validate everything up front so a bad policy cannot panic a
    // worker thread mid-sweep.
    for cfg in &configs {
        cfg.validate()?;
    }

    // Every run shares the base seed and workload — faults and recovery
    // policies draw from a separate derived RNG stream — so the whole
    // sweep samples its workload trace once.
    let traces = TraceStore::for_sweep();
    if let Some(store) = &traces {
        store.prewarm(&configs[0]);
    }
    let mut results = pool.map_init(&configs, || None, |slot, _, cfg| {
        run_point(slot, cfg, traces.as_ref())
    });
    let healthy = results.remove(0);
    let outcomes = scenario
        .policies
        .iter()
        .zip(results)
        .map(|(named, metrics)| {
            let p99 = metrics.latency.p99;
            let ratio = if p99 > 0.0 { healthy.latency.p99 / p99 } else { 0.0 };
            let goodput = if metrics.faults.active {
                metrics.faults.goodput_per_gcycle
            } else {
                metrics.throughput_per_gcycle
            };
            PolicyOutcome {
                policy: named.name.clone(),
                goodput_per_gcycle: goodput,
                p99_latency: p99,
                p99_ratio_vs_healthy: ratio,
                slo_met: slo.is_met_by_ratio(ratio),
                metrics,
            }
        })
        .collect();
    Ok(FaultSweepReport {
        seed: scenario.base.seed,
        slo_min_p99_ratio: scenario.slo_min_p99_ratio,
        healthy,
        outcomes,
    })
}

/// The built-in demonstration scenario (also shipped as
/// `configs/faults-degradation.json` and pinned by the CLI's golden
/// fixture): a shared remote accelerator that suffers a 3M-cycle full
/// outage, sporadic failures, and interface-latency spikes, swept across
/// five recovery disciplines from "do nothing" to the full stack.
#[must_use]
pub fn demo_scenario(seed: u64) -> FaultScenario {
    use accelerometer::units::cycles_per_byte;
    use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};

    use crate::device::DeviceKind;
    use crate::workload::WorkloadSpec;

    let base = SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 400.0,
        horizon: 2.5e7,
        seed,
        workload: WorkloadSpec {
            non_kernel_cycles: 4_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)])
                .expect("static CDF is valid"),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: Some(OffloadConfig {
            design: ThreadingDesign::AsyncSameThread,
            strategy: AccelerationStrategy::Remote,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 4 },
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault: FaultPlan::none(),
        recovery: RecoveryPolicy::none(),
    };
    let plan = FaultPlan {
        seed: 7,
        failure_probability: 0.01,
        spike_probability: 0.005,
        spike_cycles: 25_000.0,
        degradation: vec![DegradationWindow::downtime(8.0e6, 1.1e7)],
    };
    let retrying = RecoveryPolicy {
        max_retries: 3,
        backoff_base_cycles: 2_000.0,
        ..RecoveryPolicy::none()
    };
    let policies = vec![
        NamedPolicy {
            name: "no-recovery".to_owned(),
            policy: RecoveryPolicy::none(),
        },
        NamedPolicy {
            name: "retry".to_owned(),
            policy: retrying,
        },
        NamedPolicy {
            name: "retry-fallback".to_owned(),
            policy: RecoveryPolicy {
                timeout_cycles: Some(30_000.0),
                fallback_to_host: true,
                ..retrying
            },
        },
        NamedPolicy {
            name: "admission".to_owned(),
            policy: RecoveryPolicy {
                shed_backlog_cycles: Some(15_000.0),
                ..RecoveryPolicy::none()
            },
        },
        NamedPolicy {
            name: "full".to_owned(),
            policy: RecoveryPolicy {
                timeout_cycles: Some(30_000.0),
                fallback_to_host: true,
                shed_backlog_cycles: Some(15_000.0),
                ..retrying
            },
        },
    ];
    FaultScenario {
        base,
        plan,
        policies,
        slo_min_p99_ratio: 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome<'a>(report: &'a FaultSweepReport, name: &str) -> &'a PolicyOutcome {
        report
            .outcomes
            .iter()
            .find(|o| o.policy == name)
            .expect("policy present")
    }

    #[test]
    fn recovery_beats_no_recovery_under_degradation() {
        let report = run_fault_sweep(&demo_scenario(20_260_806)).expect("valid scenario");
        let none = outcome(&report, "no-recovery");
        let recovered = outcome(&report, "retry-fallback");
        // The acceptance property the golden fixture pins: retries +
        // fallback strictly improve goodput and the p99 tail.
        assert!(
            recovered.goodput_per_gcycle > none.goodput_per_gcycle,
            "goodput {:.2} vs {:.2}",
            recovered.goodput_per_gcycle,
            none.goodput_per_gcycle
        );
        assert!(
            recovered.p99_latency < none.p99_latency,
            "p99 {:.0} vs {:.0}",
            recovered.p99_latency,
            none.p99_latency
        );
        // The outage inflates the unprotected tail past the SLO.
        assert!(!none.slo_met);
        assert!(report.healthy.latency.p99 > 0.0);
    }

    #[test]
    fn report_is_pool_width_invariant() {
        let scenario = demo_scenario(11);
        let seq = run_fault_sweep_with(&ExecPool::new(1), &scenario).unwrap();
        let par = run_fault_sweep_with(&ExecPool::new(8), &scenario).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn invalid_scenarios_are_rejected_up_front() {
        let mut scenario = demo_scenario(1);
        scenario.slo_min_p99_ratio = 0.0;
        assert!(run_fault_sweep(&scenario).is_err());

        let mut scenario = demo_scenario(1);
        scenario.plan.failure_probability = 7.0;
        assert!(run_fault_sweep(&scenario).is_err());

        let mut scenario = demo_scenario(1);
        scenario.policies[0].policy.timeout_cycles = Some(f64::NAN);
        assert!(run_fault_sweep(&scenario).is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = demo_scenario(20_260_806);
        let json = serde_json::to_string_pretty(&scenario).expect("serialize");
        let parsed: FaultScenario = serde_json::from_str(&json).expect("scenario round trip");
        assert_eq!(parsed, scenario);
    }
}
