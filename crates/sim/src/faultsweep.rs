//! The fault sweep: one degraded scenario, many recovery policies.
//!
//! §4's lesson is that offload engines become distributed-system
//! dependencies; this runner quantifies what each recovery discipline
//! buys when the accelerator misbehaves. A [`FaultScenario`] pairs a
//! base configuration with a [`FaultPlan`] and a list of named
//! [`RecoveryPolicy`]s; the sweep simulates a healthy reference run plus
//! one run per policy and reports goodput, p99, and an SLO verdict per
//! policy. Every run is an independent seeded simulation, so the report
//! is byte-identical at any worker-pool width.

use accelerometer::LatencySlo;
use serde::{Deserialize, Serialize};

use crate::engine::{OffloadConfig, SimConfig};
use crate::error::{ensure, Result};
use crate::fault::{DegradationWindow, FaultPlan, RecoveryPolicy};
use crate::metrics::SimMetrics;
use crate::parallel::ExecPool;
use crate::shard::run_point;
use crate::trace::TraceStore;

/// A recovery policy with a human-readable name for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedPolicy {
    /// Display name (e.g. `"retry-fallback"`).
    pub name: String,
    /// The policy itself.
    pub policy: RecoveryPolicy,
}

/// One fault sweep: a base configuration, the faults to inject, and the
/// recovery policies to compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// The base simulation (its own `fault`/`recovery` fields are
    /// ignored; the sweep substitutes the plan and each policy).
    pub base: SimConfig,
    /// The fault plan applied to every policy run.
    pub plan: FaultPlan,
    /// The recovery policies to compare, in report order.
    pub policies: Vec<NamedPolicy>,
    /// SLO: minimum acceptable `healthy p99 / faulted p99` ratio.
    pub slo_min_p99_ratio: f64,
}

/// One policy's outcome under the scenario's faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// The policy's name.
    pub policy: String,
    /// Good (non-failed) requests per 10⁹ host cycles.
    pub goodput_per_gcycle: f64,
    /// p99 request latency under faults, in cycles.
    pub p99_latency: f64,
    /// `healthy p99 / faulted p99` (1.0 = no tail inflation).
    pub p99_ratio_vs_healthy: f64,
    /// Whether the ratio meets the scenario's SLO.
    pub slo_met: bool,
    /// Analytical cross-check of the faulted throughput, when the
    /// scenario sits inside the model's domain (see
    /// [`FaultModelCheck`]); `None` otherwise.
    pub model_check: Option<FaultModelCheck>,
    /// The run's full metrics (including the fault counters).
    pub metrics: SimMetrics,
}

/// Model-vs-simulator cross-check for one policy outcome.
///
/// The analytical model's fault extension
/// ([`accelerometer::estimate_with_faults`]) predicts how much
/// throughput a retry/fallback discipline costs: retries inflate the
/// per-offload overheads by the expected attempt count `E[a]`, and
/// exhausted offloads re-execute their kernel on the host with
/// probability `p_fb = p^(r+1)`, putting `p_fb · α` back on the
/// throughput path. This check compares that prediction against the
/// simulator's measured faulted/healthy throughput ratio.
///
/// The check is only attached when the scenario stays inside the
/// model's domain: an offload is configured, the plan has no
/// degradation windows (the model is stationary — it cannot see an
/// outage interval), and the policy does no admission shedding (shed
/// offloads consume host cycles the fault terms don't describe). Spiky
/// interface latency *is* folded in, as `L_eff = L + p_spike ·
/// spike_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModelCheck {
    /// Model-predicted `faulted throughput / healthy throughput`.
    pub predicted_throughput_ratio: f64,
    /// Simulator-measured `faulted throughput / healthy throughput`.
    pub simulated_throughput_ratio: f64,
    /// `|predicted − simulated| × 100`, in percentage points.
    pub error_points: f64,
}

/// Builds the [`FaultModelCheck`] for one policy run, or `None` when
/// the scenario leaves the model's domain.
fn model_check(
    scenario: &FaultScenario,
    policy: &RecoveryPolicy,
    healthy: &SimMetrics,
    faulted: &SimMetrics,
) -> Option<FaultModelCheck> {
    let offload = scenario.base.offload.as_ref()?;
    if !scenario.plan.degradation.is_empty()
        || policy.shed_backlog_cycles.is_some()
        || healthy.throughput_per_gcycle <= 0.0
    {
        return None;
    }
    let workload = &scenario.base.workload;
    // Fold expected spike latency into the interface term; the model
    // has no notion of a latency *distribution*, only its mean.
    let spike_latency = scenario.plan.spike_probability * scenario.plan.spike_cycles;
    let params = accelerometer::ModelParams::builder()
        .host_cycles(workload.mean_request_cycles())
        .kernel_fraction(workload.expected_alpha())
        .offloads(workload.kernels_per_request as f64)
        .setup_cycles(offload.setup_cycles)
        .interface_cycles(offload.interface_latency + spike_latency)
        .thread_switch_cycles(scenario.base.context_switch_cycles)
        .peak_speedup(offload.peak_speedup)
        .build()
        .ok()?;
    let load = accelerometer::queueing::fault_load(
        scenario.plan.failure_probability,
        policy.max_retries,
        policy.fallback_to_host,
    )
    .ok()?;
    let healthy_est =
        accelerometer::estimate(&params, offload.design, offload.strategy, offload.driver);
    let faulted_est = accelerometer::estimate_with_faults(
        &params,
        offload.design,
        offload.strategy,
        offload.driver,
        &load,
    );
    let predicted = faulted_est.throughput_speedup / healthy_est.throughput_speedup;
    let simulated = faulted.throughput_per_gcycle / healthy.throughput_per_gcycle;
    Some(FaultModelCheck {
        predicted_throughput_ratio: predicted,
        simulated_throughput_ratio: simulated,
        error_points: (predicted - simulated).abs() * 100.0,
    })
}

/// The full report: the healthy reference plus one outcome per policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepReport {
    /// The seed every run used.
    pub seed: u64,
    /// The scenario's SLO threshold, echoed for the reader.
    pub slo_min_p99_ratio: f64,
    /// The fault-free reference run.
    pub healthy: SimMetrics,
    /// Per-policy outcomes, in scenario order.
    pub outcomes: Vec<PolicyOutcome>,
}

/// Runs the sweep on the process-wide default pool.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the base
/// configuration, the plan, any policy, or the SLO ratio is invalid.
pub fn run_fault_sweep(scenario: &FaultScenario) -> Result<FaultSweepReport> {
    run_fault_sweep_with(&ExecPool::default(), scenario)
}

/// [`run_fault_sweep`] with an explicit worker pool. Each run is an
/// independent seeded simulation and results are assembled in input
/// order, so the report is identical at any pool width.
///
/// # Errors
///
/// Returns [`crate::SimError::InvalidConfig`] when the base
/// configuration, the plan, any policy, or the SLO ratio is invalid.
pub fn run_fault_sweep_with(pool: &ExecPool, scenario: &FaultScenario) -> Result<FaultSweepReport> {
    ensure(
        scenario.slo_min_p99_ratio.is_finite() && scenario.slo_min_p99_ratio > 0.0,
        "slo_min_p99_ratio",
        scenario.slo_min_p99_ratio,
        "SLO ratio must be finite and positive",
    )?;
    let slo = LatencySlo::at_least(scenario.slo_min_p99_ratio).expect("validated above");

    // Index 0 is the healthy reference; one faulted run per policy.
    let mut configs = Vec::with_capacity(scenario.policies.len() + 1);
    let mut healthy = scenario.base.clone();
    healthy.fault = FaultPlan::none();
    healthy.recovery = RecoveryPolicy::none();
    configs.push(healthy);
    for named in &scenario.policies {
        let mut cfg = scenario.base.clone();
        cfg.fault = scenario.plan.clone();
        cfg.recovery = named.policy;
        configs.push(cfg);
    }
    // Validate everything up front so a bad policy cannot panic a
    // worker thread mid-sweep.
    for cfg in &configs {
        cfg.validate()?;
    }

    // Every run shares the base seed and workload — faults and recovery
    // policies draw from a separate derived RNG stream — so the whole
    // sweep samples its workload trace once.
    let traces = TraceStore::for_sweep();
    if let Some(store) = &traces {
        store.prewarm(&configs[0]);
    }
    let mut results = pool.map_init(&configs, || None, |slot, _, cfg| {
        run_point(slot, cfg, traces.as_ref())
    });
    let healthy = results.remove(0);
    let outcomes = scenario
        .policies
        .iter()
        .zip(results)
        .map(|(named, metrics)| {
            let p99 = metrics.latency.p99;
            let ratio = if p99 > 0.0 { healthy.latency.p99 / p99 } else { 0.0 };
            let goodput = if metrics.faults.active {
                metrics.faults.goodput_per_gcycle
            } else {
                metrics.throughput_per_gcycle
            };
            PolicyOutcome {
                policy: named.name.clone(),
                goodput_per_gcycle: goodput,
                p99_latency: p99,
                p99_ratio_vs_healthy: ratio,
                slo_met: slo.is_met_by_ratio(ratio),
                model_check: model_check(scenario, &named.policy, &healthy, &metrics),
                metrics,
            }
        })
        .collect();
    Ok(FaultSweepReport {
        seed: scenario.base.seed,
        slo_min_p99_ratio: scenario.slo_min_p99_ratio,
        healthy,
        outcomes,
    })
}

/// The built-in demonstration scenario (also shipped as
/// `configs/faults-degradation.json` and pinned by the CLI's golden
/// fixture): a shared remote accelerator that suffers a 3M-cycle full
/// outage, sporadic failures, and interface-latency spikes, swept across
/// five recovery disciplines from "do nothing" to the full stack.
#[must_use]
pub fn demo_scenario(seed: u64) -> FaultScenario {
    use accelerometer::units::cycles_per_byte;
    use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};

    use crate::device::DeviceKind;
    use crate::workload::WorkloadSpec;

    let base = SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 400.0,
        horizon: 2.5e7,
        seed,
        workload: WorkloadSpec {
            non_kernel_cycles: 4_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)])
                .expect("static CDF is valid"),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: Some(OffloadConfig {
            design: ThreadingDesign::AsyncSameThread,
            strategy: AccelerationStrategy::Remote,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 4 },
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault: FaultPlan::none(),
        recovery: RecoveryPolicy::none(),
    };
    let plan = FaultPlan {
        seed: 7,
        failure_probability: 0.01,
        spike_probability: 0.005,
        spike_cycles: 25_000.0,
        degradation: vec![DegradationWindow::downtime(8.0e6, 1.1e7)],
    };
    let retrying = RecoveryPolicy {
        max_retries: 3,
        backoff_base_cycles: 2_000.0,
        ..RecoveryPolicy::none()
    };
    let policies = vec![
        NamedPolicy {
            name: "no-recovery".to_owned(),
            policy: RecoveryPolicy::none(),
        },
        NamedPolicy {
            name: "retry".to_owned(),
            policy: retrying,
        },
        NamedPolicy {
            name: "retry-fallback".to_owned(),
            policy: RecoveryPolicy {
                timeout_cycles: Some(30_000.0),
                fallback_to_host: true,
                ..retrying
            },
        },
        NamedPolicy {
            name: "admission".to_owned(),
            policy: RecoveryPolicy {
                shed_backlog_cycles: Some(15_000.0),
                ..RecoveryPolicy::none()
            },
        },
        NamedPolicy {
            name: "full".to_owned(),
            policy: RecoveryPolicy {
                timeout_cycles: Some(30_000.0),
                fallback_to_host: true,
                shed_backlog_cycles: Some(15_000.0),
                ..retrying
            },
        },
    ];
    FaultScenario {
        base,
        plan,
        policies,
        slo_min_p99_ratio: 0.5,
    }
}

/// One row of the fallback-capacity validation table (Table-6 style:
/// model estimate vs simulated A/B measurement, error in points).
///
/// Each row fixes a failure probability and measures the offload's
/// throughput gain over the unaccelerated host twice: once with
/// [`accelerometer::estimate_with_faults`] and once as a simulated A/B
/// experiment in which every exhausted offload's host re-execution is a
/// real, scheduled slice. The two must agree — that agreement is what
/// certifies the engine charges fallback work as genuine core capacity
/// rather than phantom accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FallbackValidationRow {
    /// Per-attempt failure probability `p`.
    pub failure_probability: f64,
    /// The model's expected attempts per offload, `E[a]`.
    pub expected_attempts: f64,
    /// The model's host-fallback probability, `p^(r+1)`.
    pub fallback_probability: f64,
    /// Model-predicted throughput gain over the host, in percent.
    pub model_gain_percent: f64,
    /// Simulated A/B throughput gain over the host, in percent.
    pub simulated_gain_percent: f64,
    /// Fallback slices the treatment run actually scheduled.
    pub fallbacks: u64,
    /// Treatment-run core utilization (must stay ≤ 1: fallback work is
    /// real capacity, not an overdraft).
    pub core_utilization: f64,
}

impl FallbackValidationRow {
    /// |model − simulated| in percentage points.
    #[must_use]
    pub fn model_vs_simulated_points(&self) -> f64 {
        (self.model_gain_percent - self.simulated_gain_percent).abs()
    }
}

/// The failure probabilities [`validate_fallback`] sweeps.
pub const FALLBACK_VALIDATION_PROBABILITIES: [f64; 4] = [0.0, 0.2, 0.5, 0.8];

fn fallback_validation_row(seed: u64, p: f64) -> FallbackValidationRow {
    use accelerometer::units::cycles_per_byte;
    use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};

    use crate::abtest::run_ab;
    use crate::device::DeviceKind;
    use crate::workload::WorkloadSpec;

    // A scenario built to isolate the fallback-load term: an
    // asynchronous design keeps device time off the throughput path,
    // the unlimited device keeps Q = 0, and zero setup/pollution/
    // context-switch cycles null the overhead terms. What remains is
    // the model's `cs = 1 − α + p_fb·α` against the engine's scheduled
    // fallback slices. Kernel: 1,500 B at 2 c/B = 3,000 cycles against
    // 7,000 non-kernel cycles, so α = 0.3 exactly.
    let workload = WorkloadSpec {
        non_kernel_cycles: 7_000.0,
        kernels_per_request: 1,
        granularity: GranularityCdf::from_points(vec![(1_500.0, 1.0)])
            .expect("static CDF is valid"),
        cycles_per_byte: cycles_per_byte(2.0),
    };
    let control = SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 0.0,
        horizon: 4.0e7,
        seed,
        workload: workload.clone(),
        offload: None,
        fault: FaultPlan {
            seed: 13,
            failure_probability: p,
            ..FaultPlan::none()
        },
        recovery: RecoveryPolicy {
            max_retries: 1,
            backoff_base_cycles: 0.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        },
    };
    let offload = OffloadConfig {
        design: ThreadingDesign::AsyncSameThread,
        strategy: AccelerationStrategy::Remote,
        driver: DriverMode::Posted,
        device: DeviceKind::Unlimited,
        peak_speedup: 4.0,
        interface_latency: 2_000.0,
        setup_cycles: 0.0,
        dispatch_pollution: 0.0,
        min_offload_bytes: None,
    };

    let load = accelerometer::queueing::fault_load(p, 1, true)
        .expect("static probabilities are valid");
    let params = accelerometer::ModelParams::builder()
        .host_cycles(workload.mean_request_cycles())
        .kernel_fraction(workload.expected_alpha())
        .offloads(1.0)
        .setup_cycles(0.0)
        .interface_cycles(offload.interface_latency)
        .peak_speedup(offload.peak_speedup)
        .build()
        .expect("static parameters are valid");
    let est = accelerometer::estimate_with_faults(
        &params,
        offload.design,
        offload.strategy,
        offload.driver,
        &load,
    );
    let ab = run_ab(&control, offload);
    FallbackValidationRow {
        failure_probability: p,
        expected_attempts: load.expected_attempts,
        fallback_probability: load.host_fallback_probability(),
        model_gain_percent: est.throughput_gain_percent(),
        simulated_gain_percent: ab.speedup_percent(),
        fallbacks: ab.treatment.faults.fallbacks,
        core_utilization: ab.treatment.core_utilization,
    }
}

/// Runs the fallback-capacity validation (Table-6 style) on the
/// process-wide default pool: one row per probability in
/// [`FALLBACK_VALIDATION_PROBABILITIES`].
#[must_use]
pub fn validate_fallback(seed: u64) -> Vec<FallbackValidationRow> {
    validate_fallback_with(&ExecPool::default(), seed)
}

/// [`validate_fallback`] with an explicit worker pool. Each row is an
/// independent seeded A/B experiment, so results are identical at any
/// pool width and always come back in probability order.
#[must_use]
pub fn validate_fallback_with(pool: &ExecPool, seed: u64) -> Vec<FallbackValidationRow> {
    pool.map(&FALLBACK_VALIDATION_PROBABILITIES, |_, p| {
        fallback_validation_row(seed, *p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome<'a>(report: &'a FaultSweepReport, name: &str) -> &'a PolicyOutcome {
        report
            .outcomes
            .iter()
            .find(|o| o.policy == name)
            .expect("policy present")
    }

    #[test]
    fn recovery_beats_no_recovery_under_degradation() {
        let report = run_fault_sweep(&demo_scenario(20_260_806)).expect("valid scenario");
        let none = outcome(&report, "no-recovery");
        let retry = outcome(&report, "retry");
        let recovered = outcome(&report, "retry-fallback");
        // The acceptance properties the golden fixture pins. Retries
        // convert transient failures into successes without consuming
        // host capacity: a strict goodput win.
        assert!(
            retry.goodput_per_gcycle > none.goodput_per_gcycle,
            "goodput {:.2} vs {:.2}",
            retry.goodput_per_gcycle,
            none.goodput_per_gcycle
        );
        // Fallback additionally eliminates failures and collapses the
        // outage tail by an order of magnitude...
        assert_eq!(recovered.metrics.faults.failed_requests, 0);
        assert!(
            recovered.p99_latency * 10.0 < none.p99_latency,
            "p99 {:.0} vs {:.0}",
            recovered.p99_latency,
            none.p99_latency
        );
        // ...but the host re-executions occupy real scheduler slices
        // now, so during a full outage (where unprotected requests are
        // merely late, not lost) that protection costs a few percent of
        // goodput. The old phantom `core_busy +=` accounting made this
        // look free — and pushed core_utilization past 1.
        assert!(
            recovered.goodput_per_gcycle > 0.95 * none.goodput_per_gcycle,
            "goodput {:.2} vs {:.2}",
            recovered.goodput_per_gcycle,
            none.goodput_per_gcycle
        );
        // The outage inflates the unprotected tail past the SLO.
        assert!(!none.slo_met);
        assert!(report.healthy.latency.p99 > 0.0);
    }

    #[test]
    fn model_check_tracks_simulation_without_degradation() {
        // Strip the outage window and raise the failure rate so the
        // fault terms actually bite; the scenario is now squarely in the
        // model's domain and every non-shedding policy gets a check.
        let mut scenario = demo_scenario(20_260_807);
        scenario.plan.degradation.clear();
        scenario.plan.failure_probability = 0.35;
        let report = run_fault_sweep(&scenario).expect("valid scenario");
        for name in ["no-recovery", "retry", "retry-fallback"] {
            let check = outcome(&report, name)
                .model_check
                .unwrap_or_else(|| panic!("{name} must carry a model check"));
            assert!(
                check.error_points < 2.5,
                "{name}: predicted {:.4} vs simulated {:.4} ({:.2} pts)",
                check.predicted_throughput_ratio,
                check.simulated_throughput_ratio,
                check.error_points
            );
        }
        // Admission shedding consumes host cycles the fault terms don't
        // describe — no check rather than a wrong one.
        assert!(outcome(&report, "admission").model_check.is_none());
        assert!(outcome(&report, "full").model_check.is_none());
        // The demo's outage window, by contrast, gates every check off.
        let windowed = run_fault_sweep(&demo_scenario(20_260_807)).expect("valid scenario");
        assert!(windowed.outcomes.iter().all(|o| o.model_check.is_none()));
    }

    #[test]
    fn fallback_validation_matches_model_within_tolerance() {
        let rows = validate_fallback(20_260_807);
        assert_eq!(rows.len(), FALLBACK_VALIDATION_PROBABILITIES.len());
        for row in &rows {
            assert!(
                row.model_vs_simulated_points() <= 2.0,
                "p = {}: model {:.2}% vs simulated {:.2}%",
                row.failure_probability,
                row.model_gain_percent,
                row.simulated_gain_percent
            );
            // Fallback slices are scheduled work: capacity is conserved.
            assert!(row.core_utilization <= 1.0 + 1e-9);
        }
        // The fallback load term must actually degrade the gain row over
        // row, in both the model and the measurement.
        for pair in rows.windows(2) {
            assert!(pair[1].model_gain_percent < pair[0].model_gain_percent);
            assert!(pair[1].simulated_gain_percent < pair[0].simulated_gain_percent);
        }
        // The healthy row is fault-free; the p = 0.8 row re-executes a
        // large fraction of its kernels on the host.
        assert_eq!(rows[0].fallbacks, 0);
        assert!(rows[3].fallbacks > 1_000, "fallbacks {}", rows[3].fallbacks);
        // Deterministic at any pool width.
        let wide = validate_fallback_with(&ExecPool::new(8), 20_260_807);
        assert_eq!(rows, wide);
    }

    #[test]
    fn report_is_pool_width_invariant() {
        let scenario = demo_scenario(11);
        let seq = run_fault_sweep_with(&ExecPool::new(1), &scenario).unwrap();
        let par = run_fault_sweep_with(&ExecPool::new(8), &scenario).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn invalid_scenarios_are_rejected_up_front() {
        let mut scenario = demo_scenario(1);
        scenario.slo_min_p99_ratio = 0.0;
        assert!(run_fault_sweep(&scenario).is_err());

        let mut scenario = demo_scenario(1);
        scenario.plan.failure_probability = 7.0;
        assert!(run_fault_sweep(&scenario).is_err());

        let mut scenario = demo_scenario(1);
        scenario.policies[0].policy.timeout_cycles = Some(f64::NAN);
        assert!(run_fault_sweep(&scenario).is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = demo_scenario(20_260_806);
        let json = serde_json::to_string_pretty(&scenario).expect("serialize");
        let parsed: FaultScenario = serde_json::from_str(&json).expect("scenario round trip");
        assert_eq!(parsed, scenario);
    }
}
