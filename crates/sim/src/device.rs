//! Accelerator device models: where an offload executes and how it
//! queues.
//!
//! The strategy determines the sharing discipline: an on-chip
//! optimization (AES-NI, AVX) is replicated per core, so offloads never
//! queue across cores; an off-chip device (PCIe ASIC) is a shared
//! single- or multi-server FIFO where queueing delay *emerges* from
//! load; a remote accelerator (a pool of remote CPUs) is effectively
//! unlimited and contributes only its service latency.
//!
//! The fault path ([`Device::dispatch_faulty`]) generalizes dispatch
//! with two perturbations — extra interface latency (a spike) and
//! [`DegradationWindow`]s that stretch or defer service — and the
//! healthy path delegates to it with both disabled, so the two can
//! never drift apart.

use accelerometer::AccelerationStrategy;
use serde::{Deserialize, Serialize};

use crate::fault::DegradationWindow;
use crate::time::SimTime;

/// The sharing discipline of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DeviceKind {
    /// One private device per core (on-chip): never queues.
    PerCore,
    /// A shared FIFO device with `servers` parallel service units.
    Shared {
        /// Number of parallel service units.
        servers: usize,
    },
    /// Unlimited parallel servers (a remote pool).
    Unlimited,
}

impl DeviceKind {
    /// The paper's default discipline for a strategy.
    #[must_use]
    pub fn default_for(strategy: AccelerationStrategy) -> Self {
        match strategy {
            AccelerationStrategy::OnChip => DeviceKind::PerCore,
            AccelerationStrategy::OffChip => DeviceKind::Shared { servers: 1 },
            AccelerationStrategy::Remote => DeviceKind::Unlimited,
        }
    }
}

/// A dispatch outcome: when the offload's service starts and completes,
/// and how long it queued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// When the offload arrived at the device (after the interface hop).
    pub arrival: SimTime,
    /// When service began.
    pub service_start: SimTime,
    /// When service completed.
    pub done: SimTime,
    /// Queueing delay in cycles (`service_start − arrival`), including
    /// any deferral by a downtime window.
    pub queue_delay: f64,
    /// Whether a fault perturbed this dispatch (latency spike or a
    /// degradation window).
    pub degraded: bool,
}

/// A simulated accelerator device.
#[derive(Debug, Clone)]
pub struct Device {
    kind: DeviceKind,
    /// One-way interface latency in cycles (`L`).
    interface_latency: f64,
    /// `next_free[i]` for each server (PerCore: indexed by core).
    next_free: Vec<SimTime>,
    /// Service cycles rendered *within the horizon* (service running
    /// past the horizon does not count as utilization inside it).
    busy_cycles: f64,
    offloads: u64,
    queue_delay_total: f64,
    /// The run's horizon, for busy-time clamping.
    horizon: f64,
    /// Service cycles dispatched since the last [`take_epoch_service`]
    /// drain — the sharded engine's per-epoch demand exchange.
    epoch_service: f64,
}

impl Device {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `interface_latency` is negative, the horizon is not
    /// positive, or a shared device has zero servers.
    #[must_use]
    pub fn new(kind: DeviceKind, interface_latency: f64, cores: usize, horizon: f64) -> Self {
        assert!(interface_latency >= 0.0, "negative interface latency");
        assert!(horizon > 0.0, "horizon must be positive");
        let servers = match kind {
            DeviceKind::PerCore => cores,
            DeviceKind::Shared { servers } => {
                assert!(servers > 0, "shared device needs at least one server");
                servers
            }
            DeviceKind::Unlimited => 0,
        };
        Self {
            kind,
            interface_latency,
            next_free: vec![SimTime::ZERO; servers],
            busy_cycles: 0.0,
            offloads: 0,
            queue_delay_total: 0.0,
            horizon,
            epoch_service: 0.0,
        }
    }

    /// The sharing discipline.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Dispatches an offload issued at `now` from `core`, with the given
    /// device service time in cycles. FIFO within each server; shared
    /// devices pick the earliest-free server.
    pub fn dispatch(&mut self, now: SimTime, core: usize, service_cycles: f64) -> Dispatch {
        self.dispatch_faulty(now, core, service_cycles, 0.0, &[])
    }

    /// [`dispatch`](Self::dispatch) under fault injection: the interface
    /// hop is stretched by `extra_latency` (a spike) and service that
    /// would start inside a [`DegradationWindow`] is slowed by its
    /// multiplier or, for a downtime window, deferred to the window's
    /// end. With `extra_latency == 0` and no windows this is bit-exact
    /// to the healthy path.
    pub fn dispatch_faulty(
        &mut self,
        now: SimTime,
        core: usize,
        service_cycles: f64,
        extra_latency: f64,
        windows: &[DegradationWindow],
    ) -> Dispatch {
        let arrival = now + (self.interface_latency + extra_latency);
        let server = match self.kind {
            DeviceKind::PerCore => Some(core),
            DeviceKind::Shared { .. } => Some(earliest_free(&self.next_free)),
            DeviceKind::Unlimited => None,
        };
        let queued_start = server.map_or(arrival, |s| arrival.max(self.next_free[s]));
        let (service_start, multiplier, windowed) = apply_windows(queued_start, windows);
        let service = service_cycles * multiplier;
        let done = service_start + service;
        if let Some(s) = server {
            self.next_free[s] = done;
        }
        // Clamp busy-time accounting to the horizon: only the portion of
        // service rendered before the horizon is utilization within it.
        // The non-crossing case adds the unmodified service time so
        // healthy in-horizon dispatches stay bit-exact.
        if done.cycles() <= self.horizon {
            self.busy_cycles += service;
        } else {
            self.busy_cycles += (self.horizon - service_start.cycles().min(self.horizon)).max(0.0);
        }
        self.offloads += 1;
        self.queue_delay_total += service_start - arrival;
        self.epoch_service += service;
        Dispatch {
            arrival,
            service_start,
            done,
            queue_delay: service_start - arrival,
            degraded: windowed || extra_latency > 0.0,
        }
    }

    /// The queueing delay an offload issued at `now` from `core` would
    /// experience, from the device's current backlog (degradation
    /// windows excluded — this is the admission controller's cheap
    /// estimate, not a full dispatch).
    #[must_use]
    pub fn predicted_queue_delay(&self, now: SimTime, core: usize) -> f64 {
        let arrival = now + self.interface_latency;
        let free = match self.kind {
            DeviceKind::PerCore => self.next_free[core],
            DeviceKind::Shared { .. } => self.next_free[earliest_free(&self.next_free)],
            DeviceKind::Unlimited => return 0.0,
        };
        (free - arrival).max(0.0)
    }

    /// Total offloads dispatched.
    #[must_use]
    pub fn offloads(&self) -> u64 {
        self.offloads
    }

    /// Drains and returns the service cycles dispatched since the last
    /// drain. The sharded engine publishes this at each epoch boundary
    /// so sibling shards can account for demand they didn't dispatch
    /// themselves.
    pub(crate) fn take_epoch_service(&mut self) -> f64 {
        std::mem::take(&mut self.epoch_service)
    }

    /// Pushes every server's next-free time forward by `cycles` — the
    /// sharded engine's model of occupancy generated by sibling shards
    /// on the same physical device. A no-op for unlimited devices (no
    /// servers to occupy).
    ///
    /// The advance applies from each server's *current* next-free time,
    /// so backlog carried into the epoch and foreign demand compose
    /// additively, in the deterministic shard fold order.
    pub(crate) fn defer_by(&mut self, cycles: f64) {
        if cycles <= 0.0 {
            return;
        }
        for t in &mut self.next_free {
            *t += cycles;
        }
    }

    /// Cumulative in-horizon busy cycles (for shard merging).
    pub(crate) fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Cumulative queueing delay in cycles (for shard merging).
    pub(crate) fn queue_delay_total(&self) -> f64 {
        self.queue_delay_total
    }

    /// Number of service units (0 for unlimited devices).
    pub(crate) fn servers(&self) -> usize {
        self.next_free.len()
    }

    /// Mean queueing delay per offload (the model's empirical `Q`).
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.offloads == 0 {
            0.0
        } else {
            self.queue_delay_total / self.offloads as f64
        }
    }

    /// Device utilization over the run's horizon. Busy time is clamped
    /// to the horizon at dispatch, so this is at most 1.0 even at
    /// saturation.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = match self.kind {
            DeviceKind::Unlimited => return 0.0,
            DeviceKind::PerCore | DeviceKind::Shared { .. } => {
                self.next_free.len() as f64 * self.horizon
            }
        };
        self.busy_cycles / capacity
    }
}

/// Index of the earliest-free server (first of equal minima, matching
/// the original `min_by_key` tie-break).
fn earliest_free(next_free: &[SimTime]) -> usize {
    let mut best = 0;
    for (i, t) in next_free.iter().enumerate().skip(1) {
        if *t < next_free[best] {
            best = i;
        }
    }
    best
}

/// Applies degradation windows to a tentative service start: a downtime
/// window defers the start to its end (repeatedly, if the deferral lands
/// inside another window — each deferral is strictly forward, so this
/// terminates), a slowdown window returns its service multiplier. The
/// first matching window in plan order wins.
fn apply_windows(base: SimTime, windows: &[DegradationWindow]) -> (SimTime, f64, bool) {
    if windows.is_empty() {
        return (base, 1.0, false);
    }
    let mut start = base;
    let mut hit = false;
    'defer: loop {
        for w in windows {
            if w.contains(start.cycles()) {
                hit = true;
                if w.down {
                    start = SimTime::new(w.end);
                    continue 'defer;
                }
                return (start, w.multiplier, true);
            }
        }
        return (start, 1.0, hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disciplines_match_strategies() {
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::OnChip),
            DeviceKind::PerCore
        );
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::OffChip),
            DeviceKind::Shared { servers: 1 }
        );
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::Remote),
            DeviceKind::Unlimited
        );
    }

    #[test]
    fn per_core_devices_never_queue_across_cores() {
        let mut d = Device::new(DeviceKind::PerCore, 10.0, 2, 1e9);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(0.0), 1, 100.0);
        assert_eq!(a.queue_delay, 0.0);
        assert_eq!(b.queue_delay, 0.0);
        assert_eq!(a.done.cycles(), 110.0);
        // Same core back-to-back does queue behind itself.
        let c = d.dispatch(SimTime::new(0.0), 0, 100.0);
        assert!(c.queue_delay > 0.0);
    }

    #[test]
    fn shared_device_queues_fifo() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 4, 1e9);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(10.0), 1, 100.0);
        assert_eq!(a.done.cycles(), 100.0);
        assert_eq!(b.service_start.cycles(), 100.0);
        assert_eq!(b.queue_delay, 90.0);
        assert_eq!(b.done.cycles(), 200.0);
        assert!((d.mean_queue_delay() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_shared_device_parallelizes() {
        let mut d = Device::new(DeviceKind::Shared { servers: 2 }, 0.0, 4, 1e9);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(0.0), 1, 100.0);
        assert_eq!(a.queue_delay, 0.0);
        assert_eq!(b.queue_delay, 0.0);
        let c = d.dispatch(SimTime::new(0.0), 2, 100.0);
        assert_eq!(c.queue_delay, 100.0);
    }

    #[test]
    fn unlimited_devices_never_queue() {
        let mut d = Device::new(DeviceKind::Unlimited, 1_000.0, 1, 1e6);
        for i in 0..100 {
            let dispatch = d.dispatch(SimTime::new(f64::from(i)), 0, 50_000.0);
            assert_eq!(dispatch.queue_delay, 0.0);
            assert_eq!(dispatch.arrival.cycles(), f64::from(i) + 1_000.0);
        }
        assert_eq!(d.utilization(), 0.0);
    }

    #[test]
    fn interface_latency_delays_arrival() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 2_300.0, 1, 1e9);
        let dispatch = d.dispatch(SimTime::new(100.0), 0, 50.0);
        assert_eq!(dispatch.arrival.cycles(), 2_400.0);
        assert_eq!(dispatch.done.cycles(), 2_450.0);
        assert!(!dispatch.degraded);
    }

    #[test]
    fn utilization_accounting() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 1, 1_000.0);
        d.dispatch(SimTime::new(0.0), 0, 400.0);
        assert!((d.utilization() - 0.4).abs() < 1e-12);
        assert_eq!(d.offloads(), 1);
    }

    /// Regression: service completing past the horizon used to count its
    /// full interval into busy time, pushing utilization above 1.0 at
    /// saturation. Busy time is now clamped to the horizon.
    #[test]
    fn utilization_is_clamped_at_the_horizon_boundary() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 1, 1_000.0);
        // Three back-to-back services: [0,400), [400,800), [800,1200).
        for _ in 0..3 {
            d.dispatch(SimTime::new(0.0), 0, 400.0);
        }
        // Unclamped accounting would report 1200/1000 = 1.2.
        assert!((d.utilization() - 1.0).abs() < 1e-12);
        // A dispatch entirely past the horizon adds nothing.
        d.dispatch(SimTime::new(999.0), 0, 400.0);
        assert!((d.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn downtime_window_defers_service_to_window_end() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 1, 1e9);
        let windows = [DegradationWindow::downtime(100.0, 5_000.0)];
        let a = d.dispatch_faulty(SimTime::new(200.0), 0, 50.0, 0.0, &windows);
        assert!(a.degraded);
        assert_eq!(a.service_start.cycles(), 5_000.0);
        assert_eq!(a.done.cycles(), 5_050.0);
        assert_eq!(a.queue_delay, 4_800.0);
    }

    #[test]
    fn slowdown_window_stretches_service() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 1, 1e9);
        let windows = [DegradationWindow::slowdown(0.0, 1_000.0, 8.0)];
        let a = d.dispatch_faulty(SimTime::new(10.0), 0, 50.0, 0.0, &windows);
        assert!(a.degraded);
        assert_eq!(a.done.cycles(), 10.0 + 400.0);
        // Outside the window, service is unperturbed.
        let b = d.dispatch_faulty(SimTime::new(2_000.0), 0, 50.0, 0.0, &windows);
        assert!(!b.degraded);
        assert_eq!(b.done.cycles(), 2_050.0);
    }

    #[test]
    fn chained_downtime_windows_defer_transitively() {
        let mut d = Device::new(DeviceKind::Unlimited, 0.0, 1, 1e9);
        let windows = [
            DegradationWindow::downtime(0.0, 100.0),
            DegradationWindow::downtime(100.0, 300.0),
        ];
        let a = d.dispatch_faulty(SimTime::new(50.0), 0, 10.0, 0.0, &windows);
        assert_eq!(a.service_start.cycles(), 300.0);
    }

    #[test]
    fn latency_spike_delays_arrival_and_marks_degraded() {
        let mut d = Device::new(DeviceKind::Unlimited, 100.0, 1, 1e9);
        let a = d.dispatch_faulty(SimTime::new(0.0), 0, 10.0, 900.0, &[]);
        assert!(a.degraded);
        assert_eq!(a.arrival.cycles(), 1_000.0);
    }

    #[test]
    fn faulty_path_with_no_faults_matches_healthy_path() {
        let mut healthy = Device::new(DeviceKind::Shared { servers: 2 }, 123.0, 4, 1e6);
        let mut faulty = healthy.clone();
        for i in 0..200 {
            let now = SimTime::new(f64::from(i) * 37.5);
            let service = 40.0 + f64::from(i % 7);
            let a = healthy.dispatch(now, (i as usize) % 4, service);
            let b = faulty.dispatch_faulty(now, (i as usize) % 4, service, 0.0, &[]);
            assert_eq!(a, b);
        }
        assert_eq!(healthy.utilization().to_bits(), faulty.utilization().to_bits());
        assert_eq!(healthy.mean_queue_delay(), faulty.mean_queue_delay());
    }

    #[test]
    fn predicted_queue_delay_tracks_backlog() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 100.0, 1, 1e9);
        assert_eq!(d.predicted_queue_delay(SimTime::new(0.0), 0), 0.0);
        d.dispatch(SimTime::new(0.0), 0, 5_000.0);
        // Server busy until 5100; an offload issued at 500 arrives at 600
        // and waits 4500.
        assert_eq!(d.predicted_queue_delay(SimTime::new(500.0), 0), 4_500.0);
        // Unlimited devices never backlog.
        let u = Device::new(DeviceKind::Unlimited, 100.0, 1, 1e9);
        assert_eq!(u.predicted_queue_delay(SimTime::new(0.0), 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_shared_rejected() {
        let _ = Device::new(DeviceKind::Shared { servers: 0 }, 0.0, 1, 1e9);
    }
}
