//! Accelerator device models: where an offload executes and how it
//! queues.
//!
//! The strategy determines the sharing discipline: an on-chip
//! optimization (AES-NI, AVX) is replicated per core, so offloads never
//! queue across cores; an off-chip device (PCIe ASIC) is a shared
//! single- or multi-server FIFO where queueing delay *emerges* from
//! load; a remote accelerator (a pool of remote CPUs) is effectively
//! unlimited and contributes only its service latency.

use accelerometer::AccelerationStrategy;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The sharing discipline of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DeviceKind {
    /// One private device per core (on-chip): never queues.
    PerCore,
    /// A shared FIFO device with `servers` parallel service units.
    Shared {
        /// Number of parallel service units.
        servers: usize,
    },
    /// Unlimited parallel servers (a remote pool).
    Unlimited,
}

impl DeviceKind {
    /// The paper's default discipline for a strategy.
    #[must_use]
    pub fn default_for(strategy: AccelerationStrategy) -> Self {
        match strategy {
            AccelerationStrategy::OnChip => DeviceKind::PerCore,
            AccelerationStrategy::OffChip => DeviceKind::Shared { servers: 1 },
            AccelerationStrategy::Remote => DeviceKind::Unlimited,
        }
    }
}

/// A dispatch outcome: when the offload's service starts and completes,
/// and how long it queued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// When the offload arrived at the device (after the interface hop).
    pub arrival: SimTime,
    /// When service began.
    pub service_start: SimTime,
    /// When service completed.
    pub done: SimTime,
    /// Queueing delay in cycles (`service_start − arrival`).
    pub queue_delay: f64,
}

/// A simulated accelerator device.
#[derive(Debug, Clone)]
pub struct Device {
    kind: DeviceKind,
    /// One-way interface latency in cycles (`L`).
    interface_latency: f64,
    /// `next_free[i]` for each server (PerCore: indexed by core).
    next_free: Vec<SimTime>,
    busy_cycles: f64,
    offloads: u64,
    queue_delay_total: f64,
}

impl Device {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `interface_latency` is negative or a shared device has
    /// zero servers.
    #[must_use]
    pub fn new(kind: DeviceKind, interface_latency: f64, cores: usize) -> Self {
        assert!(interface_latency >= 0.0, "negative interface latency");
        let servers = match kind {
            DeviceKind::PerCore => cores,
            DeviceKind::Shared { servers } => {
                assert!(servers > 0, "shared device needs at least one server");
                servers
            }
            DeviceKind::Unlimited => 0,
        };
        Self {
            kind,
            interface_latency,
            next_free: vec![SimTime::ZERO; servers],
            busy_cycles: 0.0,
            offloads: 0,
            queue_delay_total: 0.0,
        }
    }

    /// The sharing discipline.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Dispatches an offload issued at `now` from `core`, with the given
    /// device service time in cycles. FIFO within each server; shared
    /// devices pick the earliest-free server.
    pub fn dispatch(&mut self, now: SimTime, core: usize, service_cycles: f64) -> Dispatch {
        let arrival = now + self.interface_latency;
        let service_start = match self.kind {
            DeviceKind::PerCore => {
                let slot = &mut self.next_free[core];
                let start = arrival.max(*slot);
                *slot = start + service_cycles;
                start
            }
            DeviceKind::Shared { .. } => {
                let slot = self
                    .next_free
                    .iter_mut()
                    .min_by_key(|t| **t)
                    .expect("shared device has servers");
                let start = arrival.max(*slot);
                *slot = start + service_cycles;
                start
            }
            DeviceKind::Unlimited => arrival,
        };
        let done = service_start + service_cycles;
        self.busy_cycles += service_cycles;
        self.offloads += 1;
        self.queue_delay_total += service_start - arrival;
        Dispatch {
            arrival,
            service_start,
            done,
            queue_delay: service_start - arrival,
        }
    }

    /// Total offloads dispatched.
    #[must_use]
    pub fn offloads(&self) -> u64 {
        self.offloads
    }

    /// Mean queueing delay per offload (the model's empirical `Q`).
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.offloads == 0 {
            0.0
        } else {
            self.queue_delay_total / self.offloads as f64
        }
    }

    /// Device utilization over a horizon of `horizon` cycles.
    #[must_use]
    pub fn utilization(&self, horizon: f64) -> f64 {
        let capacity = match self.kind {
            DeviceKind::Unlimited => return 0.0,
            DeviceKind::PerCore | DeviceKind::Shared { .. } => {
                self.next_free.len() as f64 * horizon
            }
        };
        self.busy_cycles / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disciplines_match_strategies() {
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::OnChip),
            DeviceKind::PerCore
        );
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::OffChip),
            DeviceKind::Shared { servers: 1 }
        );
        assert_eq!(
            DeviceKind::default_for(AccelerationStrategy::Remote),
            DeviceKind::Unlimited
        );
    }

    #[test]
    fn per_core_devices_never_queue_across_cores() {
        let mut d = Device::new(DeviceKind::PerCore, 10.0, 2);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(0.0), 1, 100.0);
        assert_eq!(a.queue_delay, 0.0);
        assert_eq!(b.queue_delay, 0.0);
        assert_eq!(a.done.cycles(), 110.0);
        // Same core back-to-back does queue behind itself.
        let c = d.dispatch(SimTime::new(0.0), 0, 100.0);
        assert!(c.queue_delay > 0.0);
    }

    #[test]
    fn shared_device_queues_fifo() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 4);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(10.0), 1, 100.0);
        assert_eq!(a.done.cycles(), 100.0);
        assert_eq!(b.service_start.cycles(), 100.0);
        assert_eq!(b.queue_delay, 90.0);
        assert_eq!(b.done.cycles(), 200.0);
        assert!((d.mean_queue_delay() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_shared_device_parallelizes() {
        let mut d = Device::new(DeviceKind::Shared { servers: 2 }, 0.0, 4);
        let a = d.dispatch(SimTime::new(0.0), 0, 100.0);
        let b = d.dispatch(SimTime::new(0.0), 1, 100.0);
        assert_eq!(a.queue_delay, 0.0);
        assert_eq!(b.queue_delay, 0.0);
        let c = d.dispatch(SimTime::new(0.0), 2, 100.0);
        assert_eq!(c.queue_delay, 100.0);
    }

    #[test]
    fn unlimited_devices_never_queue() {
        let mut d = Device::new(DeviceKind::Unlimited, 1_000.0, 1);
        for i in 0..100 {
            let dispatch = d.dispatch(SimTime::new(f64::from(i)), 0, 50_000.0);
            assert_eq!(dispatch.queue_delay, 0.0);
            assert_eq!(dispatch.arrival.cycles(), f64::from(i) + 1_000.0);
        }
        assert_eq!(d.utilization(1e6), 0.0);
    }

    #[test]
    fn interface_latency_delays_arrival() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 2_300.0, 1);
        let dispatch = d.dispatch(SimTime::new(100.0), 0, 50.0);
        assert_eq!(dispatch.arrival.cycles(), 2_400.0);
        assert_eq!(dispatch.done.cycles(), 2_450.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut d = Device::new(DeviceKind::Shared { servers: 1 }, 0.0, 1);
        d.dispatch(SimTime::new(0.0), 0, 400.0);
        assert!((d.utilization(1_000.0) - 0.4).abs() < 1e-12);
        assert_eq!(d.offloads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_shared_rejected() {
        let _ = Device::new(DeviceKind::Shared { servers: 0 }, 0.0, 1);
    }
}
