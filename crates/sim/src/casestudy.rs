//! The three §4 validation case studies, wired end to end: workload from
//! the Table 6 parameters, accelerator from the case study's hardware,
//! A/B measurement in the simulator, and comparison against both the
//! model estimate and the paper's production numbers.
//!
//! The simulator adds per-offload *dispatch pollution* — host cycles the
//! analytical model does not capture (cache/TLB pollution from the
//! offload path, completion interrupts, driver bookkeeping). The values
//! below are calibrated once per acceleration strategy so the simulated
//! "real" speedup lands where production did, and are documented in
//! `EXPERIMENTS.md`; everything else follows from the Table 6 parameters.
//!
//! ## The measured AES-NI ratio vs Table 6's `A = 6`
//!
//! This repository now measures the AES-NI acceleration factor on its
//! own host (`accelctl calibrate`, `BENCH_kernels.json`): scalar
//! AES-128-CTR vs the AES-NI dispatch path is ~9x at 64 B rising to
//! ~68x at 4 KiB (paired same-session medians). That is much larger
//! than the paper's `A = 6` for Cache1, and both numbers are right:
//! Table 6's baseline is production software AES — table-driven,
//! hand-tuned, already fast — while our scalar tier is a portable
//! constant-time reference implementation. `A` is always relative to
//! the software it replaces, which is why the case studies keep the
//! paper's fleet-measured `A = 6` (the model validation target) while
//! the calibration path reports what *this* host's hardware does to
//! *this* repo's scalar baseline. The gap itself reproduces a §4
//! observation: the win from acceleration depends as much on the
//! quality of the displaced software baseline as on the accelerator.

use accelerometer::{AccelerationStrategy, DriverMode, ThreadingDesign};
use accelerometer_fleet::{all_case_studies, CaseStudy};
use serde::{Deserialize, Serialize};

use crate::abtest::{run_ab, AbResult};
use crate::device::DeviceKind;
use crate::engine::{OffloadConfig, SimConfig};
use crate::error::{Result, SimError};
use crate::fault::{FaultPlan, RecoveryPolicy};
use crate::workload::workload_for_params;

/// The Table 6 case-study names, in row order — the valid arguments to
/// [`simulate`] and the CLI's `validate --case`.
pub const CASE_STUDY_NAMES: &[&str] = &["aes-ni", "encryption", "inference"];

/// Host-side per-offload cycles unmodeled by Accelerometer, calibrated
/// per case study (see module docs): AES-NI instruction-stream pollution.
pub const AES_NI_POLLUTION: f64 = 90.0;
/// PCIe doorbell/completion pollution for the off-chip encryption device.
pub const PCIE_POLLUTION: f64 = 220.0;
/// Per-batch response-handling overhead for remote inference, in the
/// scaled units below.
pub const REMOTE_POLLUTION: f64 = 319.0;

/// Case study 3 simulates at 1:10,000 scale (all per-offload cycle
/// quantities divided by this factor) so a batch-granularity workload
/// (10 offloads per second in production) yields statistically useful
/// request counts; every model ratio is scale-invariant.
pub const INFERENCE_SCALE: f64 = 1.0e4;

/// One validated case study: model estimate, simulated measurement, and
/// the paper's production numbers side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyValidation {
    /// Case study name (Table 6 row).
    pub name: String,
    /// Accelerometer's estimate (computed from the Table 6 scenario).
    pub model_estimate_percent: f64,
    /// The simulator's A/B-measured speedup.
    pub simulated_percent: f64,
    /// The estimate the paper reports.
    pub paper_estimated_percent: f64,
    /// The production speedup the paper reports.
    pub paper_real_percent: f64,
}

impl CaseStudyValidation {
    /// |model − simulated| in percentage points: the reproduction's
    /// analogue of the paper's ≤3.7-point model error.
    #[must_use]
    pub fn model_vs_simulated_points(&self) -> f64 {
        (self.model_estimate_percent - self.simulated_percent).abs()
    }

    /// |simulated − paper real| in percentage points.
    #[must_use]
    pub fn simulated_vs_paper_points(&self) -> f64 {
        (self.simulated_percent - self.paper_real_percent).abs()
    }
}

fn control_config(study: &CaseStudy, scale: f64, horizon: f64, seed: u64) -> SimConfig {
    let params = &study.scenario.params;
    let granularity = study
        .granularity
        .clone()
        .unwrap_or_else(|| {
            // Batch-granularity kernels: a single fixed "size" carrying
            // the whole per-offload cost.
            accelerometer::GranularityCdf::from_points(vec![(1_000.0, 1.0)])
                .expect("static CDF is valid")
        });
    let workload = workload_for_params(
        params.host_cycles().get() / scale,
        params.kernel_fraction(),
        params.offloads(),
        granularity,
    );
    SimConfig {
        cores: 4,
        threads: 4,
        context_switch_cycles: params.overheads().thread_switch.get() / scale,
        horizon,
        seed,
        workload,
        offload: None,
        fault: FaultPlan::none(),
        recovery: RecoveryPolicy::none(),
    }
}

fn offload_config(study: &CaseStudy, scale: f64, pollution: f64) -> OffloadConfig {
    let scenario = &study.scenario;
    let ovh = scenario.params.overheads();
    OffloadConfig {
        design: scenario.design,
        strategy: scenario.strategy,
        driver: scenario.driver,
        device: DeviceKind::default_for(scenario.strategy),
        peak_speedup: scenario.params.peak_speedup(),
        interface_latency: ovh.interface.get() / scale,
        setup_cycles: ovh.setup.get() / scale,
        dispatch_pollution: pollution,
        // All three case studies offload every invocation (§4: AES-NI's
        // break-even is ≥1 B so everything qualifies; Cache3 cannot
        // select; Ads1 pre-batches).
        min_offload_bytes: None,
    }
}

/// Runs one case study's A/B experiment in the simulator.
///
/// # Errors
///
/// Returns [`SimError::UnknownCaseStudy`] (listing the valid names) for
/// a study whose name is not a Table 6 row. This used to be a `panic!`
/// reachable from the CLI.
pub fn simulate(study: &CaseStudy, seed: u64) -> Result<(CaseStudyValidation, AbResult)> {
    let (scale, pollution, horizon) = match study.name.as_str() {
        "aes-ni" => (1.0, AES_NI_POLLUTION, 2.5e8),
        "encryption" => (1.0, PCIE_POLLUTION, 8.0e8),
        "inference" => (INFERENCE_SCALE, REMOTE_POLLUTION, 1.2e9),
        other => {
            return Err(SimError::UnknownCaseStudy {
                name: other.to_owned(),
                valid: CASE_STUDY_NAMES,
            })
        }
    };
    let control = control_config(study, scale, horizon, seed);
    let offload = offload_config(study, scale, pollution);
    let ab = run_ab(&control, offload);
    let validation = CaseStudyValidation {
        name: study.name.clone(),
        model_estimate_percent: study.scenario.estimate().throughput_gain_percent(),
        simulated_percent: ab.speedup_percent(),
        paper_estimated_percent: study.paper_estimated_percent,
        paper_real_percent: study.paper_real_percent,
    };
    Ok((validation, ab))
}

/// Runs all three case studies (Table 6), fanning the independent A/B
/// experiments over the process-wide default pool.
#[must_use]
pub fn validate_all(seed: u64) -> Vec<CaseStudyValidation> {
    validate_all_with(&crate::parallel::ExecPool::default(), seed)
}

/// [`validate_all`] with an explicit worker pool. Each case study is an
/// independent seeded A/B experiment, so results are identical at any
/// pool width and always come back in Table 6 row order.
#[must_use]
pub fn validate_all_with(
    pool: &crate::parallel::ExecPool,
    seed: u64,
) -> Vec<CaseStudyValidation> {
    let studies = all_case_studies();
    pool.map(&studies, |_, study| {
        simulate(study, seed)
            .expect("all_case_studies yields only known names")
            .0
    })
}

/// Sanity mapping used by the tests: each case study exercises a distinct
/// design/strategy pair (§4 validates all three threading scenarios).
#[must_use]
pub fn expected_design(name: &str) -> Option<(ThreadingDesign, AccelerationStrategy, DriverMode)> {
    match name {
        "aes-ni" => Some((
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
        )),
        "encryption" => Some((
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        )),
        "inference" => Some((
            ThreadingDesign::AsyncDistinctThread,
            AccelerationStrategy::Remote,
            DriverMode::Posted,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer_fleet::params::aes_ni_cache1;

    #[test]
    fn case_study_designs_match_table6() {
        for study in all_case_studies() {
            let (design, strategy, driver) =
                expected_design(&study.name).expect("known case study");
            assert_eq!(study.scenario.design, design, "{}", study.name);
            assert_eq!(study.scenario.strategy, strategy, "{}", study.name);
            assert_eq!(study.scenario.driver, driver, "{}", study.name);
        }
        assert!(expected_design("bogus").is_none());
    }

    #[test]
    fn unknown_case_study_is_a_structured_error() {
        // Regression: this used to be `panic!("unknown case study …")`
        // reachable straight from the CLI.
        let mut study = aes_ni_cache1();
        study.name = "bogus".to_owned();
        let err = simulate(&study, 42).unwrap_err();
        match &err {
            SimError::UnknownCaseStudy { name, valid } => {
                assert_eq!(name, "bogus");
                assert_eq!(*valid, CASE_STUDY_NAMES);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("bogus"), "{msg}");
        assert!(msg.contains("aes-ni, encryption, inference"), "{msg}");
    }

    #[test]
    fn aes_ni_simulation_lands_near_production() {
        let (validation, ab) = simulate(&aes_ni_cache1(), 42).expect("known case study");
        // Model estimate ≈ 15.7%.
        assert!((validation.model_estimate_percent - 15.7).abs() < 0.1);
        // Simulated "real" speedup within a point of the paper's 14%.
        assert!(
            (validation.simulated_percent - 14.0).abs() < 1.0,
            "simulated {:.2}%",
            validation.simulated_percent
        );
        // Throughput improved and every encryption offloaded.
        assert!(ab.treatment.offloads_dispatched > 0);
        assert_eq!(ab.treatment.offloads_suppressed, 0);
        // On-chip per-core device: no cross-core queueing at one kernel
        // per request.
        assert_eq!(ab.treatment.mean_queue_delay, 0.0);
    }
}
