//! Simulation time, measured in host clock cycles.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in host cycles since simulation start.
///
/// Stored as `f64` because offload costs (`Cb·g/A`) are fractional;
/// ordering uses total ordering and construction rejects NaN.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is NaN or negative.
    #[must_use]
    pub fn new(cycles: f64) -> Self {
        assert!(!cycles.is_nan() && cycles >= 0.0, "invalid sim time {cycles}");
        Self(cycles)
    }

    /// Constructs a time point from a value already known to be valid
    /// (non-NaN, non-negative), checking only in debug builds.
    ///
    /// The engine's event loop performs millions of time constructions
    /// per run from values whose invariants are established once — at
    /// configuration validation and at heap-key packing — so the release
    /// build skips the per-operation assert.
    #[inline]
    #[must_use]
    pub(crate) fn from_raw(cycles: f64) -> Self {
        debug_assert!(
            !cycles.is_nan() && cycles >= 0.0,
            "invalid sim time {cycles}"
        );
        Self(cycles)
    }

    /// The raw cycle count.
    #[must_use]
    pub fn cycles(self) -> f64 {
        self.0
    }

    /// The later of two time points.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    /// Advances the time point by `rhs` cycles.
    ///
    /// All engine-side durations are validated non-negative up front
    /// (`SimConfig::validate`), so the sum cannot leave the valid range;
    /// the check runs in debug builds only. [`SimTime::new`] remains the
    /// asserting entry point for unvalidated values.
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_raw(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    /// Elapsed cycles between two time points.
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(100.0);
        let b = a + 50.0;
        assert!(b > a);
        assert_eq!(b - a, 50.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.cycles(), 0.0);
        let mut c = a;
        c += 1.0;
        assert_eq!(c.cycles(), 101.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_negative() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(42.4).to_string(), "42 cyc");
    }
}
