//! The engine's event queue: a flat 4-ary min-heap over *packed*
//! entries.
//!
//! The previous queue was a `BinaryHeap<Reverse<EventEntry>>` whose
//! ordering ran through a `PartialOrd`/`Ord` comparator chain
//! (`SimTime::total_cmp`, then a sequence-number tie-break). This one
//! packs the `(time, seq)` pair into a single `u128` key whose unsigned
//! ordering is *exactly* the old comparator's ordering, so one integer
//! compare replaces the chain and the event payload rides inline next to
//! its key:
//!
//! * [`SimTime`] guarantees a non-negative, non-NaN `f64`, and for such
//!   floats `f64::to_bits` is strictly monotone with numeric order
//!   (IEEE-754 orders same-sign floats like their bit patterns), so the
//!   high 64 bits sort by time;
//! * the low 64 bits carry the scheduling sequence number, breaking
//!   time ties in insertion order exactly as before.
//!
//! Keys are unique (the engine's `seq` is strictly increasing), so *any*
//! correct min-heap pops the same total order the old comparator
//! produced — the property test below drives this queue and the retained
//! reference `BinaryHeap` through random schedules and asserts the pop
//! sequences are identical.
//!
//! The heap is 4-ary rather than binary: event queues here are shallow
//! (O(threads + in-flight offloads) entries), and a branching factor of
//! 4 halves the depth while keeping the child scan in one cache line's
//! worth of keys.

use crate::time::SimTime;

const ARITY: usize = 4;

/// One packed heap entry: the sortable key plus the payload.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    // Monotone for the non-negative, non-NaN times `SimTime` admits.
    (u128::from(time.cycles().to_bits()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    // Exact inverse of `pack`'s time half; the bits are untouched.
    SimTime::new(f64::from_bits((key >> 64) as u64))
}

/// A min-heap of `(time, seq)`-keyed events, popped in exactly the order
/// the engine's old `BinaryHeap<Reverse<EventEntry>>` produced.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: Vec<Entry<E>>,
}

impl<E: Copy> EventQueue<E> {
    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
        }
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at `time` with tie-break sequence `seq`.
    ///
    /// `seq` must be unique across the queue's lifetime (the engine
    /// passes a strictly increasing counter); equal times then pop in
    /// insertion order.
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let entry = Entry {
            key: pack(time, seq),
            event,
        };
        // Sift up with a hole: move parents down until the new key fits.
        let mut hole = self.heap.len();
        self.heap.push(entry);
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if self.heap[parent].key <= entry.key {
                break;
            }
            self.heap[hole] = self.heap[parent];
            hole = parent;
        }
        self.heap[hole] = entry;
    }

    /// Removes and returns the earliest event (smallest time, then
    /// smallest sequence number).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap has a last entry");
        if !self.heap.is_empty() {
            // Sift the displaced last entry down from the root hole.
            let mut hole = 0;
            let len = self.heap.len();
            loop {
                let first_child = hole * ARITY + 1;
                if first_child >= len {
                    break;
                }
                let mut min_child = first_child;
                let mut min_key = self.heap[first_child].key;
                let end = (first_child + ARITY).min(len);
                for child in first_child + 1..end {
                    let key = self.heap[child].key;
                    if key < min_key {
                        min_child = child;
                        min_key = key;
                    }
                }
                if min_key >= last.key {
                    break;
                }
                self.heap[hole] = self.heap[min_child];
                hole = min_child;
            }
            self.heap[hole] = last;
        }
        Some((unpack_time(top.key), top.event))
    }
}

/// The retained reference implementation: the engine's original
/// `BinaryHeap<Reverse<_>>` queue with the explicit comparator chain.
/// Kept compiled under `cfg(test)` so the property test can assert the
/// packed heap pops random schedules in the identical order.
#[cfg(test)]
mod reference {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    #[derive(Debug)]
    struct EventEntry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for EventEntry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for EventEntry<E> {}
    impl<E> PartialOrd for EventEntry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for EventEntry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
        }
    }

    /// The original queue, verbatim modulo the generic payload.
    #[derive(Debug, Default)]
    pub struct ReferenceQueue<E> {
        events: BinaryHeap<Reverse<EventEntry<E>>>,
    }

    impl<E> ReferenceQueue<E> {
        pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
            self.events.push(Reverse(EventEntry { time, seq, event }));
        }

        pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
            self.events
                .pop()
                .map(|Reverse(e)| (e.time, e.seq, e.event))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceQueue;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(SimTime::new(30.0), 1, "late");
        q.push(SimTime::new(10.0), 2, "early");
        q.push(SimTime::new(10.0), 3, "early-after");
        q.push(SimTime::new(20.0), 4, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "early-after", "middle", "late"]);
    }

    #[test]
    fn pop_reports_the_exact_time() {
        let mut q = EventQueue::with_capacity(1);
        let t = SimTime::new(123.456_789);
        q.push(t, 1, ());
        let (popped, ()) = q.pop().expect("one event");
        assert_eq!(popped, t);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_heap_property() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..100u64 {
            // Times decrease so every push lands at the root.
            q.push(SimTime::new(f64::from(200 - i as u32)), i + 1, i);
            if i % 3 == 0 {
                q.pop();
            }
        }
        let mut last = SimTime::ZERO;
        let mut remaining = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "heap order violated");
            last = t;
            remaining += 1;
        }
        assert!(remaining > 0);
        assert_eq!(q.len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random schedules — including deliberate time ties and
        /// fractional times — pop in identical order from the packed
        /// 4-ary heap and the retained `BinaryHeap` reference.
        #[test]
        fn matches_reference_binary_heap(
            times in prop::collection::vec(0u32..50, 1..200),
            fractional in prop::collection::vec(0.0..1.0f64, 1..200),
            pop_every in 1usize..5,
        ) {
            let mut packed = EventQueue::with_capacity(16);
            let mut reference = ReferenceQueue::default();
            let mut seq = 0u64;
            let n = times.len().min(fractional.len());
            for i in 0..n {
                // Coarse integer grid + occasional fractions: many exact
                // ties to exercise the seq tie-break.
                let time = SimTime::new(
                    f64::from(times[i]) + if i % 3 == 0 { fractional[i] } else { 0.0 },
                );
                seq += 1;
                packed.push(time, seq, seq);
                reference.push(time, seq, seq);
                if i % pop_every == 0 {
                    let got = packed.pop();
                    let want = reference.pop().map(|(t, _, e)| (t, e));
                    prop_assert_eq!(got, want);
                }
            }
            loop {
                let got = packed.pop();
                let want = reference.pop().map(|(t, _, e)| (t, e));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
