//! The engine's event queue: a flat 4-ary min-heap over *packed*
//! entries.
//!
//! The previous queue was a `BinaryHeap<Reverse<EventEntry>>` whose
//! ordering ran through a `PartialOrd`/`Ord` comparator chain
//! (`SimTime::total_cmp`, then a sequence-number tie-break). This one
//! packs the `(time, seq)` pair into a single `u128` key whose unsigned
//! ordering is *exactly* the old comparator's ordering, so one integer
//! compare replaces the chain and the event payload rides inline next to
//! its key:
//!
//! * [`SimTime`] guarantees a non-negative, non-NaN `f64`, and for such
//!   floats `f64::to_bits` is strictly monotone with numeric order
//!   (IEEE-754 orders same-sign floats like their bit patterns), so the
//!   high 64 bits sort by time;
//! * the low 64 bits carry the scheduling sequence number, breaking
//!   time ties in insertion order exactly as before.
//!
//! Keys are unique (the engine's `seq` is strictly increasing), so *any*
//! correct min-heap pops the same total order the old comparator
//! produced — the property test below drives this queue and the retained
//! reference `BinaryHeap` through random schedules and asserts the pop
//! sequences are identical.
//!
//! The heap is 4-ary rather than binary: event queues here are shallow
//! (O(threads + in-flight offloads) entries), and a branching factor of
//! 4 halves the depth while keeping the child scan in one cache line's
//! worth of keys.

use crate::time::SimTime;

const ARITY: usize = 4;

/// One packed heap entry: the sortable key plus the payload.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
pub(crate) fn pack(time: SimTime, seq: u64) -> u128 {
    // Monotone for the non-negative, non-NaN times `SimTime` admits.
    (u128::from(time.cycles().to_bits()) << 64) | u128::from(seq)
}

#[inline]
pub(crate) fn unpack_time(key: u128) -> SimTime {
    // Exact inverse of `pack`'s time half; the bits are untouched, and
    // they came from a validated `SimTime`, so the debug-checked
    // constructor suffices.
    SimTime::from_raw(f64::from_bits((key >> 64) as u64))
}

/// The largest key an inclusive time bound admits: an event is due at
/// `time <= until` exactly when its key is `<= bound_key(until)`. Sound
/// for the same reason `pack` is monotone — non-negative times order by
/// bit pattern — while `u64::MAX` in the low half admits every sequence
/// number at the bound itself. This turns the engine's per-event
/// "unpack, then compare times as floats" into one integer compare.
#[inline]
pub(crate) fn bound_key(until: f64) -> u128 {
    (u128::from(until.to_bits()) << 64) | u128::from(u64::MAX)
}

/// A min-heap of `(time, seq)`-keyed events, popped in exactly the order
/// the engine's old `BinaryHeap<Reverse<EventEntry>>` produced.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    /// Entry moves performed by `push` sift-ups (instrumentation).
    sift_ups: u64,
    /// Entry moves performed by `pop` sift-downs (instrumentation).
    sift_downs: u64,
}

impl<E: Copy> EventQueue<E> {
    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            sift_ups: 0,
            sift_downs: 0,
        }
    }

    /// Drops all pending events and zeroes the sift counters, keeping
    /// the heap's allocation for the next run — a cleared queue is
    /// indistinguishable from a freshly built one.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.sift_ups = 0;
        self.sift_downs = 0;
    }

    /// Entry moves performed by sift-ups since construction.
    pub fn sift_ups(&self) -> u64 {
        self.sift_ups
    }

    /// Entry moves performed by sift-downs since construction.
    pub fn sift_downs(&self) -> u64 {
        self.sift_downs
    }

    /// The earliest pending time, without removing anything.
    #[cfg(test)]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| unpack_time(e.key))
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The smallest pending key, or `u128::MAX` on an empty queue. The
    /// sentinel's time half is the all-ones (NaN) bit pattern, which no
    /// valid [`SimTime`] produces, so it can never falsely tie a real
    /// event's timestamp.
    #[inline]
    pub fn min_key(&self) -> u128 {
        self.heap.first().map_or(u128::MAX, |e| e.key)
    }

    /// Schedules `event` at `time` with tie-break sequence `seq`.
    ///
    /// `seq` must be unique across the queue's lifetime (the engine
    /// passes a strictly increasing counter); equal times then pop in
    /// insertion order. The engine itself packs keys up front (its
    /// bypass slot compares them before any heap traffic) and pushes
    /// through [`push_key`](Self::push_key); this form remains for the
    /// queue's own tests.
    #[cfg(test)]
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.push_key(pack(time, seq), event);
    }

    /// [`push`](Self::push) with a pre-packed key — the engine's bypass
    /// slot holds packed keys and re-inserts displaced ones directly.
    #[inline]
    pub fn push_key(&mut self, key: u128, event: E) {
        let entry = Entry { key, event };
        // Sift up with a hole: move parents down until the new key fits.
        let mut hole = self.heap.len();
        self.heap.push(entry);
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if self.heap[parent].key <= entry.key {
                break;
            }
            self.heap[hole] = self.heap[parent];
            self.sift_ups += 1;
            hole = parent;
        }
        self.heap[hole] = entry;
    }

    /// Removes and returns the earliest event (smallest time, then
    /// smallest sequence number). The engine pops through
    /// [`pop_bounded`](Self::pop_bounded) instead, which folds the
    /// horizon check in; the unbounded form remains the test-side
    /// reference primitive.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let top = *self.heap.first()?;
        self.remove_top();
        Some((unpack_time(top.key), top.event))
    }

    /// Removes and returns the earliest event if it is due within a
    /// [`bound_key`] bound, plus whether the *next* pending event shares
    /// this one's exact timestamp — i.e. whether a same-timestamp run
    /// continues. One call replaces the engine's old peek / bounds-check
    /// / pop sequence; the run flag costs a single extra compare against
    /// the root the sift-down just wrote and drives the engine's run
    /// accounting for free.
    #[inline]
    pub fn pop_bounded(&mut self, bound: u128) -> Option<(SimTime, E, bool)> {
        let top = *self.heap.first()?;
        if top.key > bound {
            return None;
        }
        self.remove_top();
        let tied = match self.heap.first() {
            Some(next) => next.key >> 64 == top.key >> 64,
            None => false,
        };
        Some((unpack_time(top.key), top.event, tied))
    }

    /// Removes the root entry, sifting the displaced last entry down.
    /// The heap must be non-empty.
    #[inline]
    fn remove_top(&mut self) {
        let last = self.heap.pop().expect("non-empty heap has a last entry");
        if !self.heap.is_empty() {
            // Sift the displaced last entry down from the root hole.
            let mut hole = 0;
            let len = self.heap.len();
            loop {
                let first_child = hole * ARITY + 1;
                if first_child >= len {
                    break;
                }
                let mut min_child = first_child;
                let mut min_key = self.heap[first_child].key;
                let end = (first_child + ARITY).min(len);
                for child in first_child + 1..end {
                    let key = self.heap[child].key;
                    if key < min_key {
                        min_child = child;
                        min_key = key;
                    }
                }
                if min_key >= last.key {
                    break;
                }
                self.heap[hole] = self.heap[min_child];
                self.sift_downs += 1;
                hole = min_child;
            }
            self.heap[hole] = last;
        }
    }

    /// Removes the earliest event *and* every later event sharing its
    /// exact timestamp, appending their payloads to `out` (cleared
    /// first) in pop order. Returns the run's shared time.
    ///
    /// The run boundary compares raw time bits, so "same timestamp"
    /// means bit-identical `f64` — exactly the times that would pop
    /// back-to-back with only the sequence number breaking the tie.
    /// Because every buffered event carries a lower sequence number than
    /// anything pushed while the run is processed, handling the buffer
    /// before re-polling the heap preserves the global `(time, seq)`
    /// order exactly.
    ///
    /// The engine no longer calls this: its loop consumes runs through
    /// consecutive [`pop_bounded`](Self::pop_bounded) calls, which
    /// measured faster for the run length that dominates real schedules
    /// (two — e.g. Sync's `OffloadDone`/`SliceDone` pair). The batched
    /// drain survives under `cfg(test)` as the specification the
    /// property tests pin the heap's tie grouping against.
    #[cfg(test)]
    pub fn pop_run(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let first_key = self.heap.first()?.key;
        let time_bits = first_key >> 64;
        loop {
            let (_, event) = self.pop().expect("heap has the peeked entry");
            out.push(event);
            match self.heap.first() {
                Some(next) if next.key >> 64 == time_bits => {}
                _ => break,
            }
        }
        Some(unpack_time(first_key))
    }
}

/// The retained reference implementation: the engine's original
/// `BinaryHeap<Reverse<_>>` queue with the explicit comparator chain.
/// Kept compiled under `cfg(test)` so the property test can assert the
/// packed heap pops random schedules in the identical order.
#[cfg(test)]
mod reference {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    #[derive(Debug)]
    struct EventEntry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for EventEntry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for EventEntry<E> {}
    impl<E> PartialOrd for EventEntry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for EventEntry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
        }
    }

    /// The original queue, verbatim modulo the generic payload.
    #[derive(Debug, Default)]
    pub struct ReferenceQueue<E> {
        events: BinaryHeap<Reverse<EventEntry<E>>>,
    }

    impl<E> ReferenceQueue<E> {
        pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
            self.events.push(Reverse(EventEntry { time, seq, event }));
        }

        pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
            self.events
                .pop()
                .map(|Reverse(e)| (e.time, e.seq, e.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.events.peek().map(|Reverse(e)| e.time)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceQueue;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(SimTime::new(30.0), 1, "late");
        q.push(SimTime::new(10.0), 2, "early");
        q.push(SimTime::new(10.0), 3, "early-after");
        q.push(SimTime::new(20.0), 4, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "early-after", "middle", "late"]);
    }

    #[test]
    fn pop_reports_the_exact_time() {
        let mut q = EventQueue::with_capacity(1);
        let t = SimTime::new(123.456_789);
        q.push(t, 1, ());
        let (popped, ()) = q.pop().expect("one event");
        assert_eq!(popped, t);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_heap_property() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..100u64 {
            // Times decrease so every push lands at the root.
            q.push(SimTime::new(f64::from(200 - i as u32)), i + 1, i);
            if i % 3 == 0 {
                q.pop();
            }
        }
        let mut last = SimTime::ZERO;
        let mut remaining = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "heap order violated");
            last = t;
            remaining += 1;
        }
        assert!(remaining > 0);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_run_groups_exact_time_ties_in_seq_order() {
        let mut q = EventQueue::with_capacity(8);
        q.push(SimTime::new(10.0), 1, "a");
        q.push(SimTime::new(20.0), 2, "x");
        q.push(SimTime::new(10.0), 3, "b");
        q.push(SimTime::new(10.0), 4, "c");
        let mut run = Vec::new();
        let t = q.pop_run(&mut run).expect("events pending");
        assert_eq!(t, SimTime::new(10.0));
        assert_eq!(run, vec!["a", "b", "c"]);
        let t = q.pop_run(&mut run).expect("one event left");
        assert_eq!(t, SimTime::new(20.0));
        assert_eq!(run, vec!["x"]);
        assert!(q.pop_run(&mut run).is_none());
        assert!(run.is_empty());
    }

    #[test]
    fn clear_resets_to_a_fresh_queue() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..32u64 {
            q.push(SimTime::new(f64::from(64 - i as u32)), i + 1, i);
        }
        assert!(q.sift_ups() > 0);
        let _ = q.pop();
        assert!(q.sift_downs() > 0);
        assert_eq!(q.peek_time(), Some(SimTime::new(34.0)));
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.peek_time().is_none());
        assert!(q.pop().is_none());
        assert_eq!(q.sift_ups(), 0);
        assert_eq!(q.sift_downs(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random schedules — including deliberate time ties and
        /// fractional times — pop in identical order from the packed
        /// 4-ary heap and the retained `BinaryHeap` reference.
        #[test]
        fn matches_reference_binary_heap(
            times in prop::collection::vec(0u32..50, 1..200),
            fractional in prop::collection::vec(0.0..1.0f64, 1..200),
            pop_every in 1usize..5,
        ) {
            let mut packed = EventQueue::with_capacity(16);
            let mut reference = ReferenceQueue::default();
            let mut seq = 0u64;
            let n = times.len().min(fractional.len());
            for i in 0..n {
                // Coarse integer grid + occasional fractions: many exact
                // ties to exercise the seq tie-break.
                let time = SimTime::new(
                    f64::from(times[i]) + if i % 3 == 0 { fractional[i] } else { 0.0 },
                );
                seq += 1;
                packed.push(time, seq, seq);
                reference.push(time, seq, seq);
                if i % pop_every == 0 {
                    let got = packed.pop();
                    let want = reference.pop().map(|(t, _, e)| (t, e));
                    prop_assert_eq!(got, want);
                }
            }
            loop {
                let got = packed.pop();
                let want = reference.pop().map(|(t, _, e)| (t, e));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }

        /// Draining through `pop_run` yields the reference heap's exact
        /// pop sequence, and each run is a *maximal* group of one shared
        /// timestamp.
        #[test]
        fn pop_run_matches_reference_binary_heap(
            times in prop::collection::vec(0u32..20, 1..200),
            fractional in prop::collection::vec(0.0..1.0f64, 1..200),
        ) {
            let mut packed = EventQueue::with_capacity(16);
            let mut reference = ReferenceQueue::default();
            let n = times.len().min(fractional.len());
            for i in 0..n {
                // A coarse grid forces many multi-event runs.
                let time = SimTime::new(
                    f64::from(times[i]) + if i % 5 == 0 { fractional[i] } else { 0.0 },
                );
                let seq = i as u64 + 1;
                packed.push(time, seq, seq);
                reference.push(time, seq, seq);
            }
            let mut run = Vec::new();
            while let Some(run_time) = packed.pop_run(&mut run) {
                prop_assert!(!run.is_empty());
                for &event in &run {
                    let (want_time, _, want_event) =
                        reference.pop().expect("reference has the same events");
                    prop_assert_eq!(run_time, want_time);
                    prop_assert_eq!(event, want_event);
                }
                // Maximality: the next reference event (if any) has a
                // strictly later timestamp.
                prop_assert_eq!(packed.peek_time(), reference.peek_time());
                if let Some(next) = packed.peek_time() {
                    prop_assert!(next > run_time);
                }
            }
            prop_assert!(reference.pop().is_none());
        }
    }
}
