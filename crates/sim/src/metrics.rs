//! Simulation metrics: throughput, latency distribution, and utilization.

use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample, in cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests sampled.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// Median latency.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the SLO guardian's number.
    pub p99: f64,
    /// Maximum observed latency.
    pub max: f64,
}

impl LatencyStats {
    /// Computes summary statistics from raw samples.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::from_samples_owned(samples.to_vec())
    }

    /// [`from_samples`](Self::from_samples) without the defensive copy:
    /// takes ownership of the sample buffer (the engine hands over its
    /// latency vector at the end of a run).
    ///
    /// The statistics are *bit-identical* to the original
    /// clone-and-`sort_by(total_cmp)` implementation: samples are mapped
    /// through the monotone total-order bit transform (the same order
    /// `f64::total_cmp` defines) and the `u64` keys are sorted with the
    /// branchless integer `sort_unstable`, which measures 1.7–2× faster
    /// than both the comparison sort it replaced and an LSD radix sort
    /// at every realistic sample count (10k–1M). Producing the full
    /// ascending order — rather than `select_nth_unstable_by`
    /// partitions — matters for exactness: the mean is a sequential f64
    /// fold over the *sorted* sequence, and any other summation order
    /// could round differently in the last ulp, which the golden-output
    /// tests would flag as drift.
    #[must_use]
    pub fn from_samples_owned(samples: Vec<f64>) -> Self {
        let mut keys = Vec::new();
        let stats = Self::from_samples_scratch(&samples, &mut keys);
        drop(samples);
        stats
    }

    /// [`from_samples_owned`](Self::from_samples_owned) with a reusable
    /// key buffer: `keys` is cleared, refilled, and left allocated for
    /// the caller's next run. The engine's `reset` path threads one
    /// scratch vector through every sweep iteration so the percentile
    /// computation stops allocating per config point. Statistics are
    /// bit-identical to the owned path (same transform, same sort, same
    /// fold order).
    #[must_use]
    pub fn from_samples_scratch(samples: &[f64], keys: &mut Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len();
        keys.clear();
        keys.extend(samples.iter().map(|&x| total_order_key(x)));
        keys.sort_unstable();
        let mut sum = 0.0;
        for &k in keys.iter() {
            sum += key_to_f64(k);
        }
        let pick = |p: f64| key_to_f64(keys[((n - 1) as f64 * p).round() as usize]);
        Self {
            count: n,
            mean: sum / n as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: key_to_f64(*keys.last().expect("non-empty")),
        }
    }
}

/// Maps an `f64` to a `u64` whose unsigned order equals
/// [`f64::total_cmp`]'s total order (IEEE-754 totalOrder): negative
/// floats have all bits flipped, non-negative floats have the sign bit
/// set. Bijective, so [`key_to_f64`] recovers the exact input bits.
#[inline]
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Exact inverse of [`total_order_key`].
#[inline]
fn key_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// Fault-injection and recovery counters for one simulation run.
///
/// `active` records whether the run had fault injection or recovery
/// engaged at all; inactive counters are all zero and are omitted from
/// the serialized [`SimMetrics`] entirely, keeping fault-free output
/// byte-identical to a build without the subsystem.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Whether fault injection / recovery was engaged for the run.
    pub active: bool,
    /// Offload attempts that failed by injection.
    pub injected_failures: u64,
    /// Offload attempts whose interface hop suffered a latency spike.
    pub latency_spikes: u64,
    /// Offload attempts perturbed by a degradation window or spike.
    pub degraded_offloads: u64,
    /// Attempts the recovery policy timed out.
    pub timeouts: u64,
    /// Retries the recovery policy issued.
    pub retries: u64,
    /// Offloads that fell back to host execution after the retry budget.
    pub fallbacks: u64,
    /// Offloads shed to the host by admission control before dispatch.
    pub shed_offloads: u64,
    /// Offloads abandoned with no result (their requests fail).
    pub abandoned_offloads: u64,
    /// Completed requests that carried at least one abandoned offload.
    pub failed_requests: u64,
    /// Successfully completed (non-failed) requests per 10⁹ host cycles
    /// — throughput that actually counts under faults.
    pub goodput_per_gcycle: f64,
}

/// The result of one simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SimMetrics {
    /// Simulated horizon in cycles.
    pub horizon_cycles: f64,
    /// Requests completed within the horizon.
    pub completed_requests: u64,
    /// Throughput in requests per 10⁹ host cycles (∝ QPS at fixed clock).
    pub throughput_per_gcycle: f64,
    /// Per-request latency statistics.
    pub latency: LatencyStats,
    /// Fraction of core-cycles spent busy.
    pub core_utilization: f64,
    /// Kernel invocations dispatched to the accelerator.
    pub offloads_dispatched: u64,
    /// Kernel invocations kept on the host (below break-even).
    pub offloads_suppressed: u64,
    /// Mean accelerator queueing delay (cycles) — empirical `Q`.
    pub mean_queue_delay: f64,
    /// Accelerator utilization.
    pub device_utilization: f64,
    /// Offloads the device observed.
    pub device_offloads: u64,
    /// Thread switches the scheduler performed.
    pub thread_switches: u64,
    /// Fault-injection and recovery counters (all-zero and omitted from
    /// serialization when the run had no fault subsystem engaged).
    pub faults: FaultMetrics,
}

// `SimMetrics` serialization is written by hand (not derived) so the
// `faults` entry appears only when the subsystem was engaged: the
// golden-output fixtures pin the fault-free serialized form byte for
// byte, and a derive would emit the new field unconditionally.
impl Serialize for SimMetrics {
    fn to_json_value(&self) -> serde::Value {
        let mut entries = vec![
            ("horizon_cycles".to_owned(), self.horizon_cycles.to_json_value()),
            (
                "completed_requests".to_owned(),
                self.completed_requests.to_json_value(),
            ),
            (
                "throughput_per_gcycle".to_owned(),
                self.throughput_per_gcycle.to_json_value(),
            ),
            ("latency".to_owned(), self.latency.to_json_value()),
            (
                "core_utilization".to_owned(),
                self.core_utilization.to_json_value(),
            ),
            (
                "offloads_dispatched".to_owned(),
                self.offloads_dispatched.to_json_value(),
            ),
            (
                "offloads_suppressed".to_owned(),
                self.offloads_suppressed.to_json_value(),
            ),
            (
                "mean_queue_delay".to_owned(),
                self.mean_queue_delay.to_json_value(),
            ),
            (
                "device_utilization".to_owned(),
                self.device_utilization.to_json_value(),
            ),
            (
                "device_offloads".to_owned(),
                self.device_offloads.to_json_value(),
            ),
            (
                "thread_switches".to_owned(),
                self.thread_switches.to_json_value(),
            ),
        ];
        if self.faults.active {
            entries.push(("faults".to_owned(), self.faults.to_json_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for SimMetrics {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Object(entries) = v else {
            return Err(serde::DeError::new("SimMetrics: expected an object"));
        };
        fn field<T: Deserialize>(
            entries: &[(String, serde::Value)],
            key: &'static str,
        ) -> Result<T, serde::DeError> {
            match serde::__field(entries, key) {
                Some(value) => T::from_json_value(value),
                None => Err(serde::DeError::new(format!(
                    "SimMetrics: missing field `{key}`"
                ))),
            }
        }
        Ok(Self {
            horizon_cycles: field(entries, "horizon_cycles")?,
            completed_requests: field(entries, "completed_requests")?,
            throughput_per_gcycle: field(entries, "throughput_per_gcycle")?,
            latency: field(entries, "latency")?,
            core_utilization: field(entries, "core_utilization")?,
            offloads_dispatched: field(entries, "offloads_dispatched")?,
            offloads_suppressed: field(entries, "offloads_suppressed")?,
            mean_queue_delay: field(entries, "mean_queue_delay")?,
            device_utilization: field(entries, "device_utilization")?,
            device_offloads: field(entries, "device_offloads")?,
            thread_switches: field(entries, "thread_switches")?,
            faults: match serde::__field(entries, "faults") {
                Some(value) => FaultMetrics::from_json_value(value)?,
                None => FaultMetrics::default(),
            },
        })
    }
}

impl SimMetrics {
    /// Throughput speedup of this run relative to a baseline run.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimMetrics) -> f64 {
        self.throughput_per_gcycle / baseline.throughput_per_gcycle
    }

    /// Mean-latency reduction relative to a baseline run
    /// (`baseline / this`, mirroring the model's `C/CL`).
    #[must_use]
    pub fn latency_reduction_over(&self, baseline: &SimMetrics) -> f64 {
        baseline.latency.mean / self.latency.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_samples() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!(s.p99 >= 99.0);
        assert!(s.p95 >= 95.0 && s.p95 <= 96.0);
    }

    /// The reference implementation this module's key-sort path
    /// replaced: clone, comparison-sort by `total_cmp`, fold the sorted
    /// order.
    fn reference_stats(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        LatencyStats {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Pseudo-random but deterministic latency-like samples.
    fn lcg_samples(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                // Fractional cycle counts over several exponent decades.
                1e2 + (state >> 11) as f64 / (1u64 << 33) as f64 * 9e5
            })
            .collect()
    }

    #[test]
    fn key_sort_path_is_bit_identical_to_comparison_sort() {
        // A spread of sizes, plus duplicate-heavy and constant inputs.
        for &n in &[1usize, 2, 100, 2_047, 2_048, 2_049, 50_000] {
            let samples = lcg_samples(n, 0x5EED + n as u64);
            let expect = reference_stats(&samples);
            let got = LatencyStats::from_samples_owned(samples.clone());
            assert_eq!(got, expect, "n = {n}");
            assert_eq!(LatencyStats::from_samples(&samples), expect, "n = {n}");
        }
        let constant = vec![123.456_f64; 10_000];
        assert_eq!(
            LatencyStats::from_samples_owned(constant.clone()),
            reference_stats(&constant)
        );
    }

    #[test]
    fn total_order_key_round_trips_and_orders() {
        let values = [
            0.0_f64,
            -0.0,
            1.5,
            -1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &v in &values {
            assert_eq!(key_to_f64(total_order_key(v)).to_bits(), v.to_bits());
        }
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    total_order_key(a).cmp(&total_order_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn faults_entry_is_omitted_when_inactive_and_round_trips_when_active() {
        let inactive = SimMetrics::default();
        let serde::Value::Object(entries) = inactive.to_json_value() else {
            panic!("expected an object");
        };
        assert!(entries.iter().all(|(k, _)| k != "faults"));
        let back =
            SimMetrics::from_json_value(&serde::Value::Object(entries)).expect("round trip");
        assert_eq!(back, inactive);

        let mut active = SimMetrics::default();
        active.faults.active = true;
        active.faults.retries = 3;
        active.faults.goodput_per_gcycle = 12.5;
        let value = active.to_json_value();
        let serde::Value::Object(entries) = &value else {
            panic!("expected an object");
        };
        assert!(entries.iter().any(|(k, _)| k == "faults"));
        assert_eq!(
            SimMetrics::from_json_value(&value).expect("round trip"),
            active
        );
    }

    #[test]
    fn speedup_and_latency_ratios() {
        let base = SimMetrics {
            throughput_per_gcycle: 100.0,
            latency: LatencyStats {
                mean: 2_000.0,
                ..LatencyStats::default()
            },
            ..SimMetrics::default()
        };
        let accel = SimMetrics {
            throughput_per_gcycle: 115.0,
            latency: LatencyStats {
                mean: 1_800.0,
                ..LatencyStats::default()
            },
            ..SimMetrics::default()
        };
        assert!((accel.speedup_over(&base) - 1.15).abs() < 1e-12);
        assert!((accel.latency_reduction_over(&base) - 2_000.0 / 1_800.0).abs() < 1e-12);
    }
}
