//! Simulation metrics: throughput, latency distribution, and utilization.

use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample, in cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests sampled.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// Median latency.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the SLO guardian's number.
    pub p99: f64,
    /// Maximum observed latency.
    pub max: f64,
}

impl LatencyStats {
    /// Computes summary statistics from raw samples.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Self {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Simulated horizon in cycles.
    pub horizon_cycles: f64,
    /// Requests completed within the horizon.
    pub completed_requests: u64,
    /// Throughput in requests per 10⁹ host cycles (∝ QPS at fixed clock).
    pub throughput_per_gcycle: f64,
    /// Per-request latency statistics.
    pub latency: LatencyStats,
    /// Fraction of core-cycles spent busy.
    pub core_utilization: f64,
    /// Kernel invocations dispatched to the accelerator.
    pub offloads_dispatched: u64,
    /// Kernel invocations kept on the host (below break-even).
    pub offloads_suppressed: u64,
    /// Mean accelerator queueing delay (cycles) — empirical `Q`.
    pub mean_queue_delay: f64,
    /// Accelerator utilization.
    pub device_utilization: f64,
    /// Offloads the device observed.
    pub device_offloads: u64,
    /// Thread switches the scheduler performed.
    pub thread_switches: u64,
}

impl SimMetrics {
    /// Throughput speedup of this run relative to a baseline run.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimMetrics) -> f64 {
        self.throughput_per_gcycle / baseline.throughput_per_gcycle
    }

    /// Mean-latency reduction relative to a baseline run
    /// (`baseline / this`, mirroring the model's `C/CL`).
    #[must_use]
    pub fn latency_reduction_over(&self, baseline: &SimMetrics) -> f64 {
        baseline.latency.mean / self.latency.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_samples() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!(s.p99 >= 99.0);
        assert!(s.p95 >= 95.0 && s.p95 <= 96.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn speedup_and_latency_ratios() {
        let base = SimMetrics {
            throughput_per_gcycle: 100.0,
            latency: LatencyStats {
                mean: 2_000.0,
                ..LatencyStats::default()
            },
            ..SimMetrics::default()
        };
        let accel = SimMetrics {
            throughput_per_gcycle: 115.0,
            latency: LatencyStats {
                mean: 1_800.0,
                ..LatencyStats::default()
            },
            ..SimMetrics::default()
        };
        assert!((accel.speedup_over(&base) - 1.15).abs() < 1e-12);
        assert!((accel.latency_reduction_over(&base) - 2_000.0 / 1_800.0).abs() < 1e-12);
    }
}
