//! Workload specification: what one request costs the host.
//!
//! A request alternates host work with kernel invocations whose
//! granularity follows the service's measured CDF — the per-request view
//! of the aggregate `C`, `α`, and `n` parameters the analytical model
//! works with.

use accelerometer::units::CyclesPerByte;
use accelerometer::{GranularityCdf, GranularitySampler};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One unit of work inside a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkItem {
    /// Non-kernel host work, in cycles.
    Host(f64),
    /// A kernel invocation on `g` bytes (offloadable).
    Kernel {
        /// The invocation's granularity in bytes.
        bytes: f64,
    },
    /// Host re-execution of a failed offload (fallback-to-host). Never
    /// appears in sampled requests — the engine injects it at fault
    /// detection time so the re-execution competes for the core like any
    /// other host slice.
    Fallback {
        /// Slab index of the request being recovered.
        request: usize,
        /// Host cycles the re-execution costs.
        cycles: f64,
    },
}

/// The statistical shape of requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Mean non-kernel cycles per request (exponentially distributed).
    pub non_kernel_cycles: f64,
    /// Kernel invocations per request.
    pub kernels_per_request: usize,
    /// Kernel granularity distribution.
    pub granularity: GranularityCdf,
    /// Host cycles per kernel byte (`Cb`).
    pub cycles_per_byte: CyclesPerByte,
}

impl WorkloadSpec {
    /// Mean host cycles one request costs without acceleration.
    #[must_use]
    pub fn mean_request_cycles(&self) -> f64 {
        self.non_kernel_cycles
            + self.kernels_per_request as f64
                * self.cycles_per_byte.get()
                * self.granularity.mean_bytes().get()
    }

    /// The kernel's expected share of host cycles (the `α` this workload
    /// realizes).
    #[must_use]
    pub fn expected_alpha(&self) -> f64 {
        let kernel = self.kernels_per_request as f64
            * self.cycles_per_byte.get()
            * self.granularity.mean_bytes().get();
        kernel / (kernel + self.non_kernel_cycles)
    }

    /// Draws one request's work items. Host work is split around the
    /// kernel invocations so offloads interleave with useful work, which
    /// is what lets asynchronous designs overlap.
    ///
    /// Implemented on top of [`RequestSampler::draw_into`] (the
    /// inverse-CDF sampler is proven bit-identical to the linear-scan
    /// quantile), so there is exactly one copy of the host-cycles/`ln`
    /// draw logic. Convenient for one-off draws; repeated draws should
    /// build the sampler once via [`WorkloadSpec::sampler`].
    #[must_use]
    pub fn draw_request(&self, rng: &mut StdRng) -> Vec<WorkItem> {
        let mut items = Vec::with_capacity(2 * self.kernels_per_request + 1);
        self.sampler().draw_into(rng, &mut items);
        items
    }

    /// Builds a [`RequestSampler`] for repeated draws: the granularity
    /// inverse-CDF is precomputed once, and requests can be drawn into a
    /// reusable buffer instead of a fresh `Vec` each time.
    #[must_use]
    pub fn sampler(&self) -> RequestSampler {
        RequestSampler {
            non_kernel_cycles: self.non_kernel_cycles,
            kernels_per_request: self.kernels_per_request,
            quantile: self.granularity.sampler(),
        }
    }

    /// Host cycles to execute a kernel invocation locally.
    #[must_use]
    pub fn kernel_host_cycles(&self, bytes: f64) -> f64 {
        self.cycles_per_byte.get() * bytes
    }
}

/// A request generator precomputed from a [`WorkloadSpec`] for the
/// simulator's hot path.
///
/// Consumes the RNG in exactly the order [`WorkloadSpec::draw_request`]
/// does — one uniform for the request's host total, then one per kernel
/// granularity — so simulations driven through either path see the same
/// random stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSampler {
    non_kernel_cycles: f64,
    kernels_per_request: usize,
    quantile: GranularitySampler,
}

impl RequestSampler {
    /// Draws one request's work items into `out`, clearing it first.
    /// The buffer's allocation is reused across requests.
    pub fn draw_into(&self, rng: &mut StdRng, out: &mut Vec<WorkItem>) {
        out.clear();
        self.draw_append(rng, out);
    }

    /// Draws one request's work items, appending to `out` without
    /// clearing. This is the single copy of the draw logic: per request,
    /// one uniform for the exponential host total (split into
    /// `kernels_per_request + 1` chunks) followed by one uniform per
    /// kernel granularity. Trace banks use it to pack many requests into
    /// one flat buffer in a single tight loop.
    pub fn draw_append(&self, rng: &mut StdRng, out: &mut Vec<WorkItem>) {
        let start = out.len();
        let u: f64 = rng.gen_range(0.0..1.0);
        let host_total = -((1.0 - u).ln()) * self.non_kernel_cycles;
        let chunks = self.kernels_per_request + 1;
        let host_chunk = host_total / chunks as f64;
        for _ in 0..self.kernels_per_request {
            if host_chunk > 0.0 {
                out.push(WorkItem::Host(host_chunk));
            }
            let bytes = self.quantile.quantile(rng.gen_range(0.0..1.0)).get();
            out.push(WorkItem::Kernel { bytes });
        }
        if host_chunk > 0.0 {
            out.push(WorkItem::Host(host_chunk));
        }
        if out.len() == start {
            out.push(WorkItem::Host(1.0));
        }
    }
}

/// Builds a workload whose aggregate statistics realize the model
/// parameters (`C`, `α`, `n`) of a Table 6/7 row: `n` offloads and
/// `α·C` kernel cycles per `C` host cycles, one kernel per request.
///
/// # Panics
///
/// Panics if the parameters are inconsistent (`alpha >= 1` or
/// non-positive inputs).
#[must_use]
pub fn workload_for_params(
    host_cycles: f64,
    alpha: f64,
    offloads: f64,
    granularity: GranularityCdf,
) -> WorkloadSpec {
    assert!(host_cycles > 0.0 && offloads > 0.0 && alpha > 0.0 && alpha < 1.0);
    let kernel_cycles_per_offload = alpha * host_cycles / offloads;
    let mean_bytes = granularity.mean_bytes().get();
    let cycles_per_byte = CyclesPerByte::new(kernel_cycles_per_offload / mean_bytes);
    let non_kernel_cycles = (1.0 - alpha) * host_cycles / offloads;
    WorkloadSpec {
        non_kernel_cycles,
        kernels_per_request: 1,
        granularity,
        cycles_per_byte,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cdf() -> GranularityCdf {
        GranularityCdf::from_points(vec![(256.0, 0.5), (1024.0, 1.0)]).unwrap()
    }

    #[test]
    fn mean_and_alpha_are_consistent() {
        let spec = WorkloadSpec {
            non_kernel_cycles: 5_000.0,
            kernels_per_request: 2,
            granularity: cdf(),
            cycles_per_byte: CyclesPerByte::new(2.0),
        };
        let mean_kernel = 2.0 * 2.0 * spec.granularity.mean_bytes().get();
        assert!((spec.mean_request_cycles() - (5_000.0 + mean_kernel)).abs() < 1e-9);
        let alpha = spec.expected_alpha();
        assert!((alpha - mean_kernel / (5_000.0 + mean_kernel)).abs() < 1e-12);
    }

    #[test]
    fn draw_request_interleaves_kernels_with_host_work() {
        let spec = WorkloadSpec {
            non_kernel_cycles: 1_000.0,
            kernels_per_request: 3,
            granularity: cdf(),
            cycles_per_byte: CyclesPerByte::new(1.0),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let items = spec.draw_request(&mut rng);
        let kernels = items
            .iter()
            .filter(|i| matches!(i, WorkItem::Kernel { .. }))
            .count();
        assert_eq!(kernels, 3);
        // Host chunks surround the kernels.
        assert!(matches!(items[0], WorkItem::Host(_)));
        assert!(matches!(items.last().unwrap(), WorkItem::Host(_)));
    }

    #[test]
    fn drawn_statistics_converge() {
        let spec = WorkloadSpec {
            non_kernel_cycles: 2_000.0,
            kernels_per_request: 1,
            granularity: cdf(),
            cycles_per_byte: CyclesPerByte::new(1.5),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut host = 0.0;
        let mut kernel = 0.0;
        let draws = 40_000;
        for _ in 0..draws {
            for item in spec.draw_request(&mut rng) {
                match item {
                    WorkItem::Host(c) => host += c,
                    WorkItem::Kernel { bytes } => kernel += spec.kernel_host_cycles(bytes),
                    WorkItem::Fallback { .. } => {
                        unreachable!("fallback items are engine-injected, never sampled")
                    }
                }
            }
        }
        let alpha = kernel / (kernel + host);
        assert!(
            (alpha - spec.expected_alpha()).abs() < 0.01,
            "alpha {alpha} vs {}",
            spec.expected_alpha()
        );
        let mean = (host + kernel) / f64::from(draws);
        assert!((mean / spec.mean_request_cycles() - 1.0).abs() < 0.02);
    }

    #[test]
    fn workload_for_params_realizes_model_inputs() {
        // Feed1 compression: C = 2.3e9, α = 0.15, n = 15,008.
        let spec = workload_for_params(2.3e9, 0.15, 15_008.0, cdf());
        assert!((spec.expected_alpha() - 0.15).abs() < 1e-9);
        // Requests per C cycles = offloads (one kernel per request).
        let requests = 2.3e9 / spec.mean_request_cycles();
        assert!((requests - 15_008.0).abs() / 15_008.0 < 1e-9);
    }

    #[test]
    #[should_panic]
    fn workload_for_params_rejects_alpha_one() {
        let _ = workload_for_params(1e9, 1.0, 10.0, cdf());
    }

    #[test]
    fn zero_kernel_workload_still_produces_an_item() {
        let spec = WorkloadSpec {
            non_kernel_cycles: 0.0,
            kernels_per_request: 0,
            granularity: cdf(),
            cycles_per_byte: CyclesPerByte::new(1.0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!spec.draw_request(&mut rng).is_empty());
    }

    /// The historical allocating draw path, kept verbatim as the test
    /// reference: linear-scan CDF quantile, fresh `Vec` per request.
    /// `draw_request` is now a thin wrapper over the sampler, so this is
    /// what pins both paths to the original RNG consumption order.
    fn reference_draw(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<WorkItem> {
        let u: f64 = rng.gen_range(0.0..1.0);
        let host_total = -((1.0 - u).ln()) * spec.non_kernel_cycles;
        let chunks = spec.kernels_per_request + 1;
        let host_chunk = host_total / chunks as f64;
        let mut items = Vec::with_capacity(2 * spec.kernels_per_request + 1);
        for _ in 0..spec.kernels_per_request {
            if host_chunk > 0.0 {
                items.push(WorkItem::Host(host_chunk));
            }
            let bytes = spec.granularity.quantile(rng.gen_range(0.0..1.0)).get();
            items.push(WorkItem::Kernel { bytes });
        }
        if host_chunk > 0.0 {
            items.push(WorkItem::Host(host_chunk));
        }
        if items.is_empty() {
            items.push(WorkItem::Host(1.0));
        }
        items
    }

    #[test]
    fn sampler_draws_match_reference_bitwise() {
        // The reusable-buffer sampler and the allocating wrapper must
        // consume the RNG in the same order and produce the same items
        // as the historical linear-scan path, draw for draw, across many
        // consecutive requests.
        let spec = WorkloadSpec {
            non_kernel_cycles: 1_500.0,
            kernels_per_request: 2,
            granularity: cdf(),
            cycles_per_byte: CyclesPerByte::new(1.0),
        };
        let sampler = spec.sampler();
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let mut rng_c = StdRng::seed_from_u64(42);
        let mut buf = Vec::new();
        for _ in 0..5_000 {
            let reference = reference_draw(&spec, &mut rng_a);
            sampler.draw_into(&mut rng_b, &mut buf);
            assert_eq!(reference, buf);
            assert_eq!(reference, spec.draw_request(&mut rng_c));
        }
    }
}
