//! Load sweeps: throughput and tail latency as concurrency or device
//! capacity scales — the "projecting speedup based on accelerator load"
//! use the paper's `Q` term gestures at, measured instead of assumed.

use serde::{Deserialize, Serialize};

use crate::device::DeviceKind;
use crate::engine::SimConfig;
use crate::metrics::SimMetrics;
use crate::parallel::ExecPool;
use crate::shard::run_point;
use crate::trace::TraceStore;

/// One point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// The swept value (thread count or server count).
    pub x: usize,
    /// The run's metrics.
    pub metrics: SimMetrics,
}

/// A concurrency sweep's full outcome: the simulated points plus the
/// requested thread counts the engine could not run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencySweep {
    /// One point per runnable thread count, in input order.
    pub points: Vec<LoadPoint>,
    /// Requested thread counts below `base.cores`, which the engine
    /// rejects (every core needs a thread), in input order.
    pub skipped: Vec<usize>,
}

/// Sweeps worker-thread concurrency over a base configuration.
///
/// Invariant: the engine requires `threads >= cores`, so smaller
/// requested counts cannot be simulated. They are *not* silently
/// dropped — they come back in [`ConcurrencySweep::skipped`] so callers
/// can warn or fail. Points run on `pool` and preserve input order.
#[must_use]
pub fn concurrency_sweep_with(
    pool: &ExecPool,
    base: &SimConfig,
    thread_counts: &[usize],
) -> ConcurrencySweep {
    let (runnable, skipped): (Vec<usize>, Vec<usize>) =
        thread_counts.iter().partition(|&&t| t >= base.cores);
    // Every point shares the base seed and workload (only the thread
    // count varies), so one frozen trace serves the whole grid. Prewarm
    // it sized for the deepest pool so the trace length is deterministic
    // regardless of which worker reaches the store first.
    let traces = TraceStore::for_sweep();
    if let Some(store) = &traces {
        let mut probe = base.clone();
        probe.threads = runnable
            .iter()
            .copied()
            .max()
            .unwrap_or(base.threads)
            .max(base.threads);
        store.prewarm(&probe);
    }
    let points = pool.map_init(
        &runnable,
        || None,
        |slot, _, &threads| {
            let mut cfg = base.clone();
            cfg.threads = threads;
            LoadPoint {
                x: threads,
                metrics: run_point(slot, &cfg, traces.as_ref()),
            }
        },
    );
    ConcurrencySweep { points, skipped }
}

/// Sweeps worker-thread concurrency over a base configuration. Thread
/// counts below the core count are skipped (the engine requires full
/// coverage); use [`concurrency_sweep_with`] to see which, and to run
/// points on an explicit pool.
#[must_use]
pub fn concurrency_sweep(base: &SimConfig, thread_counts: &[usize]) -> Vec<LoadPoint> {
    concurrency_sweep_with(&ExecPool::default(), base, thread_counts).points
}

/// [`device_capacity_sweep`] with an explicit worker pool.
#[must_use]
pub fn device_capacity_sweep_with(
    pool: &ExecPool,
    base: &SimConfig,
    server_counts: &[usize],
) -> Vec<LoadPoint> {
    if base.offload.is_none() {
        return Vec::new();
    }
    let runnable: Vec<usize> = server_counts.iter().copied().filter(|&s| s > 0).collect();
    // Server count does not enter the trace key (seed, workload) or the
    // size estimate, so the base config prewarms a trace all points use.
    let traces = TraceStore::for_sweep();
    if let Some(store) = &traces {
        store.prewarm(base);
    }
    pool.map_init(
        &runnable,
        || None,
        |slot, _, &servers| {
            let mut cfg = base.clone();
            if let Some(offload) = cfg.offload.as_mut() {
                offload.device = DeviceKind::Shared { servers };
            }
            LoadPoint {
                x: servers,
                metrics: run_point(slot, &cfg, traces.as_ref()),
            }
        },
    )
}

/// Sweeps the shared accelerator's server count (device capacity) over a
/// base configuration that carries an offload. Configurations without an
/// offload return an empty sweep.
#[must_use]
pub fn device_capacity_sweep(base: &SimConfig, server_counts: &[usize]) -> Vec<LoadPoint> {
    device_capacity_sweep_with(&ExecPool::default(), base, server_counts)
}

/// The knee of a sweep: the smallest `x` achieving at least `fraction`
/// of the sweep's peak throughput. Returns `None` for an empty sweep.
#[must_use]
pub fn knee(points: &[LoadPoint], fraction: f64) -> Option<usize> {
    let peak = points
        .iter()
        .map(|p| p.metrics.throughput_per_gcycle)
        .fold(0.0_f64, f64::max);
    points
        .iter()
        .find(|p| p.metrics.throughput_per_gcycle >= peak * fraction)
        .map(|p| p.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OffloadConfig;
    use crate::workload::WorkloadSpec;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};

    fn base() -> SimConfig {
        SimConfig {
            cores: 2,
            threads: 2,
            context_switch_cycles: 400.0,
            horizon: 4e7,
            seed: 3,
            workload: WorkloadSpec {
                non_kernel_cycles: 4_000.0,
                kernels_per_request: 1,
                granularity: GranularityCdf::from_points(vec![(1_024.0, 1.0)]).unwrap(),
                cycles_per_byte: cycles_per_byte(2.0),
            },
            offload: Some(OffloadConfig {
                design: ThreadingDesign::SyncOs,
                strategy: AccelerationStrategy::OffChip,
                driver: DriverMode::Posted,
                device: DeviceKind::Shared { servers: 2 },
                peak_speedup: 4.0,
                interface_latency: 8_000.0,
                setup_cycles: 0.0,
                dispatch_pollution: 0.0,
                min_offload_bytes: None,
            }),
            fault: Default::default(),
            recovery: Default::default(),
        }
    }

    #[test]
    fn concurrency_sweep_finds_the_pool_depth_knee() {
        let points = concurrency_sweep(&base(), &[1, 2, 4, 8, 16, 32]);
        // The sub-core count is skipped.
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].x, 2);
        // Throughput grows with depth until the offload latency is hidden.
        let first = points[0].metrics.throughput_per_gcycle;
        let last = points.last().unwrap().metrics.throughput_per_gcycle;
        assert!(last > first * 1.5, "no concurrency benefit: {first} -> {last}");
        // A knee exists and sits strictly above the minimum depth.
        let knee_x = knee(&points, 0.95).unwrap();
        assert!(knee_x > 2, "knee at {knee_x}");
        assert!(knee_x <= 32);
    }

    #[test]
    fn device_capacity_sweep_relieves_queueing() {
        let mut cfg = base();
        // Make the device the bottleneck: slow it down and use Sync.
        if let Some(o) = cfg.offload.as_mut() {
            o.design = ThreadingDesign::Sync;
            o.peak_speedup = 1.5;
            o.interface_latency = 100.0;
        }
        cfg.threads = cfg.cores;
        let points = device_capacity_sweep(&cfg, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        // More servers → less queueing and at least as much throughput.
        assert!(points[0].metrics.mean_queue_delay > points[2].metrics.mean_queue_delay);
        assert!(
            points[2].metrics.throughput_per_gcycle
                >= points[0].metrics.throughput_per_gcycle - 1.0
        );
    }

    #[test]
    fn capacity_sweep_requires_an_offload() {
        let mut cfg = base();
        cfg.offload = None;
        assert!(device_capacity_sweep(&cfg, &[1, 2]).is_empty());
    }

    #[test]
    fn knee_of_empty_sweep_is_none() {
        assert!(knee(&[], 0.9).is_none());
    }

    #[test]
    fn sub_core_thread_counts_are_reported_not_dropped() {
        let mut cfg = base();
        cfg.horizon = 2e6;
        let sweep = concurrency_sweep_with(&ExecPool::new(1), &cfg, &[1, 2, 4, 1, 8]);
        assert_eq!(sweep.skipped, vec![1, 1]);
        let xs: Vec<usize> = sweep.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![2, 4, 8]);
        // The convenience wrapper keeps its historical skip-silently shape.
        assert_eq!(concurrency_sweep(&cfg, &[1, 2]).len(), 1);
    }

    #[test]
    fn sweeps_are_pool_width_invariant() {
        let mut cfg = base();
        cfg.horizon = 2e6;
        let counts = [2, 4, 8];
        let seq = concurrency_sweep_with(&ExecPool::new(1), &cfg, &counts);
        let par = concurrency_sweep_with(&ExecPool::new(8), &cfg, &counts);
        assert_eq!(seq, par);
        let servers = [1, 2, 4];
        let seq = device_capacity_sweep_with(&ExecPool::new(1), &cfg, &servers);
        let par = device_capacity_sweep_with(&ExecPool::new(8), &cfg, &servers);
        assert_eq!(seq, par);
    }
}
