//! The discrete-event engine: cores, an oversubscribed thread pool, a
//! scheduler with context-switch costs, and the offload state machines of
//! Figs. 12–14 executed at per-request granularity.
//!
//! Unlike the analytical model, the engine sees *distributions*: each
//! kernel invocation's granularity is drawn from the measured CDF, the
//! accelerator queue is a real FIFO whose delay emerges from load, and
//! thread switches happen when the scheduler actually switches threads.
//! Its measured A/B throughput therefore plays the role of the paper's
//! production measurements.

use std::collections::VecDeque;
use std::sync::Arc;

use accelerometer::{AccelerationStrategy, DriverMode, ThreadingDesign};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::device::{Device, DeviceKind};
use crate::equeue::{bound_key, pack, unpack_time, EventQueue};
use crate::error::{ensure, Result, SimError};
use crate::fault::{FaultPlan, FaultState, RecoveryPolicy};
use crate::metrics::{FaultMetrics, LatencyStats, SimMetrics};
use crate::parallel::derive_seed;
use crate::time::SimTime;
use crate::trace::{FrozenTrace, SampleBank};
use crate::workload::{RequestSampler, WorkItem, WorkloadSpec};

/// Accelerator-side configuration for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadConfig {
    /// Threading design used to offload.
    pub design: ThreadingDesign,
    /// Acceleration strategy (selects overhead routing).
    pub strategy: AccelerationStrategy,
    /// Driver acknowledgement behaviour.
    pub driver: DriverMode,
    /// Device sharing discipline.
    pub device: DeviceKind,
    /// `A`: the accelerator's peak speedup over host execution.
    pub peak_speedup: f64,
    /// `L`: one-way interface latency in cycles.
    pub interface_latency: f64,
    /// `o0`: host setup cycles per offload.
    pub setup_cycles: f64,
    /// Extra host cycles per offload from effects outside the analytical
    /// model (cache/TLB pollution, completion interrupts). This is the
    /// simulator's stand-in for the production effects that make real
    /// speedups land below the model's estimate (§4).
    pub dispatch_pollution: f64,
    /// Minimum granularity to offload; smaller kernels run on the host
    /// (`None` offloads everything, as Cache3 must).
    pub min_offload_bytes: Option<f64>,
}

impl OffloadConfig {
    /// A zero-overhead on-chip Sync configuration (useful baseline).
    #[must_use]
    pub fn on_chip_sync(peak_speedup: f64) -> Self {
        Self {
            design: ThreadingDesign::Sync,
            strategy: AccelerationStrategy::OnChip,
            driver: DriverMode::Posted,
            device: DeviceKind::PerCore,
            peak_speedup,
            interface_latency: 0.0,
            setup_cycles: 0.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of host cores.
    pub cores: usize,
    /// Number of worker threads (> cores = oversubscription).
    pub threads: usize,
    /// `o1`: cycles per thread switch (context switch + cache pollution).
    pub context_switch_cycles: f64,
    /// Simulated horizon in host cycles.
    pub horizon: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// The request workload.
    pub workload: WorkloadSpec,
    /// Accelerator configuration; `None` simulates the unaccelerated
    /// baseline (kernels execute on the host).
    pub offload: Option<OffloadConfig>,
    /// Fault-injection plan for the offload path. Defaults to
    /// [`FaultPlan::none`], which is provably zero-impact: the engine
    /// takes the identical code path, bit for bit.
    #[serde(default)]
    pub fault: FaultPlan,
    /// Recovery policy for faulted offloads. Defaults to
    /// [`RecoveryPolicy::none`] (no detection, no retries, no fallback).
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

impl SimConfig {
    /// Validates the configuration without building a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] for degenerate values
    /// that would otherwise panic deep in the engine or surface as NaN
    /// metrics (zero cores, fewer threads than cores, a zero or
    /// non-finite horizon, malformed fault plans or recovery policies).
    pub fn validate(&self) -> Result<()> {
        ensure(
            self.cores > 0,
            "cores",
            self.cores as f64,
            "need at least one core",
        )?;
        ensure(
            self.threads >= self.cores,
            "threads",
            self.threads as f64,
            "threads must cover cores",
        )?;
        ensure(
            self.horizon.is_finite() && self.horizon > 0.0,
            "horizon",
            self.horizon,
            "horizon must be positive",
        )?;
        ensure(
            self.context_switch_cycles.is_finite() && self.context_switch_cycles >= 0.0,
            "context_switch_cycles",
            self.context_switch_cycles,
            "context switch cost must be finite and non-negative",
        )?;
        if let Some(o) = &self.offload {
            ensure(
                o.peak_speedup.is_finite() && o.peak_speedup > 0.0,
                "peak_speedup",
                o.peak_speedup,
                "peak speedup must be positive",
            )?;
            ensure(
                o.interface_latency.is_finite() && o.interface_latency >= 0.0,
                "interface_latency",
                o.interface_latency,
                "interface latency must be finite and non-negative",
            )?;
            ensure(
                o.setup_cycles.is_finite() && o.setup_cycles >= 0.0,
                "setup_cycles",
                o.setup_cycles,
                "setup cost must be finite and non-negative",
            )?;
            ensure(
                o.dispatch_pollution.is_finite() && o.dispatch_pollution >= 0.0,
                "dispatch_pollution",
                o.dispatch_pollution,
                "dispatch pollution must be finite and non-negative",
            )?;
            if let Some(min) = o.min_offload_bytes {
                ensure(
                    min.is_finite() && min >= 0.0,
                    "min_offload_bytes",
                    min,
                    "offload threshold must be finite and non-negative",
                )?;
            }
        }
        self.fault.validate()?;
        self.recovery.validate()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(clippy::enum_variant_names)]
enum Event {
    /// A host slice finished; the thread continues on the same core.
    SliceDone { thread: usize, core: usize },
    /// A Sync-OS dispatch finished; the core frees and the thread blocks.
    DispatchDone { thread: usize, core: usize },
    /// An offload completed at the device.
    OffloadDone {
        thread: usize,
        request: usize,
        /// Whether a distinct response thread must pick up the result.
        pickup: bool,
        /// Whether the blocked thread should be woken (Sync-OS).
        wakes_thread: bool,
        /// Whether the offload was abandoned (fault injection): the
        /// request still completes but counts as failed.
        failed: bool,
    },
    /// A saga exhausted its retries and the recovery policy re-executes
    /// the kernel on the host (fault injection): queue the re-execution
    /// on the dispatching thread as a real slice that competes for a
    /// core. Only ever constructed on the `FAULTY = true` paths.
    FallbackDue {
        thread: usize,
        request: usize,
        /// Host cycles the re-execution costs.
        cycles: f64,
    },
}

#[derive(Debug, Default, Clone, Copy, PartialEq)]
enum ThreadState {
    #[default]
    Ready,
    Running,
    Blocked,
}

/// A thread's pending work items: a flat buffer with a consume cursor.
///
/// `RequestSampler::draw_into` refills `buf` in place (clearing without
/// shrinking) and the cursor walks forward, so the common case touches
/// no ring-buffer wrap arithmetic — `pop_front` is an indexed load plus
/// an increment. The only front insertion is the Sync-OS wake-up charge,
/// which lands after at least one item was consumed, so it reuses the
/// slot just vacated by the cursor instead of shifting the buffer.
#[derive(Debug, Default)]
struct WorkQueue {
    buf: Vec<WorkItem>,
    head: usize,
}

impl WorkQueue {
    #[inline]
    fn pop_front(&mut self) -> Option<WorkItem> {
        let item = self.buf.get(self.head).copied();
        self.head += usize::from(item.is_some());
        item
    }

    fn push_front(&mut self, item: WorkItem) {
        if self.head > 0 {
            self.head -= 1;
            self.buf[self.head] = item;
        } else {
            self.buf.insert(0, item);
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// One worker thread. Both queues retain their allocations for the
/// whole run: `items` is refilled in place by `RequestSampler::draw_into`
/// (which clears without shrinking), and `pickups` only ever pops what it
/// pushed — neither reallocates after warm-up.
#[derive(Debug)]
struct Thread {
    state: ThreadState,
    items: WorkQueue,
    request: usize,
    pickups: VecDeque<usize>,
}

impl Default for Thread {
    fn default() -> Self {
        Self {
            state: ThreadState::Ready,
            items: WorkQueue::default(),
            request: usize::MAX,
            pickups: VecDeque::new(),
        }
    }
}

/// Engine-internal counters returned by [`Simulator::run_instrumented`].
///
/// These are observability numbers for benchmarks and tests; they are
/// deliberately *not* part of [`SimMetrics`], whose serialized form is
/// pinned byte-for-byte by the golden-output tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Events popped and executed by the run loop.
    pub events_processed: u64,
    /// Events scheduled (some may remain unprocessed at the horizon).
    pub events_scheduled: u64,
    /// Peak number of live (incomplete) requests: the request slab's
    /// high-water mark, which stays O(in-flight) rather than growing
    /// with every request the horizon admits.
    pub peak_live_requests: usize,
    /// Timestamp runs executed by the batched loop (one per distinct
    /// event time that reached the loop).
    pub batch_runs: u64,
    /// Runs that carried more than one event — the batching win, since
    /// the loop's `now`/horizon bookkeeping is paid once per run.
    pub multi_event_batches: u64,
    /// Entry moves the event heap performed sifting pushes up.
    pub heap_sift_ups: u64,
    /// Entry moves the event heap performed sifting pops down.
    pub heap_sift_downs: u64,
    /// Sample-bank refills (blocks of requests pre-drawn from the
    /// engine RNG) — how many times the draw loop ran.
    pub bank_refills: u64,
    /// Requests replayed from an adopted frozen trace instead of drawn
    /// live; with cross-point reuse this is where sweep sampling cost
    /// goes.
    pub trace_requests_replayed: u64,
}

impl EngineStats {
    /// Fraction of runs that batched more than one event.
    #[must_use]
    pub fn batch_hit_rate(&self) -> f64 {
        if self.batch_runs == 0 {
            0.0
        } else {
            self.multi_event_batches as f64 / self.batch_runs as f64
        }
    }

    /// Mean events per timestamp run.
    #[must_use]
    pub fn mean_batch_len(&self) -> f64 {
        if self.batch_runs == 0 {
            0.0
        } else {
            self.events_processed as f64 / self.batch_runs as f64
        }
    }
}

/// Request-slot flag: the host side of the request has finished.
const HOST_DONE: u8 = 1;
/// Request-slot flag: some offload belonging to the request failed.
const FAILED: u8 = 2;

/// Per-request accounting in struct-of-arrays layout, held in a slab
/// slot only while the request is live. Completion retires the slot to a
/// free list for the next request to recycle, so long-horizon memory
/// stays O(in-flight) and the hot slots stay cache-resident.
///
/// The arrays are parallel, indexed by slab handle. The layout matters
/// because the hot operations touch different subsets: offload
/// completions hit `outstanding`/`flags`/`lower_bound`, the completion
/// check reads `flags` + `outstanding` and only reaches `start` for the
/// one request that actually retires — with per-field arrays those
/// accesses pack 8–16× more live requests per cache line than the old
/// array-of-structs slab.
#[derive(Debug, Default)]
struct RequestSlab {
    start: Vec<SimTime>,
    outstanding: Vec<u32>,
    /// Bit set per slot: [`HOST_DONE`] | [`FAILED`].
    flags: Vec<u8>,
    /// Completion cannot precede this time (latest offload completion
    /// or pickup seen so far).
    lower_bound: Vec<SimTime>,
    /// Retired slots awaiting reuse (LIFO keeps them cache-hot).
    free: Vec<usize>,
}

impl RequestSlab {
    fn with_capacity(n: usize) -> Self {
        Self {
            start: Vec::with_capacity(n),
            outstanding: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            lower_bound: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Claims a slot for a request starting at `start`, recycling the
    /// most recently retired slot when one exists.
    fn alloc(&mut self, start: SimTime) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.start[slot] = start;
                self.outstanding[slot] = 0;
                self.flags[slot] = 0;
                self.lower_bound[slot] = start;
                slot
            }
            None => {
                self.start.push(start);
                self.outstanding.push(0);
                self.flags.push(0);
                self.lower_bound.push(start);
                self.start.len() - 1
            }
        }
    }

    fn retire(&mut self, slot: usize) {
        self.free.push(slot);
    }

    /// Empties the slab without releasing any allocation.
    fn clear(&mut self) {
        self.start.clear();
        self.outstanding.clear();
        self.flags.clear();
        self.lower_bound.clear();
        self.free.clear();
    }
}

/// The simulator.
pub struct Simulator {
    cfg: SimConfig,
    /// Precomputed request generator (inverse-CDF lookup); draws are
    /// bit-identical to `cfg.workload.draw_request`.
    sampler: RequestSampler,
    rng: StdRng,
    /// Level-1 sampling: a bank of pre-drawn requests refilled in blocks
    /// so the event loop consumes plain data instead of interleaving
    /// RNG/`ln`/quantile calls with event handling. Bit-identical to
    /// per-request drawing at any block size.
    bank: SampleBank,
    /// Level-2 sampling: an adopted frozen trace (shared across sweep
    /// grid points) plus the index of the next request to take from it.
    /// When the prefix runs out, the engine switches `rng` to the
    /// trace's continuation state and falls back to the bank.
    trace: Option<(Arc<FrozenTrace>, usize)>,
    now: SimTime,
    seq: u64,
    events: EventQueue<Event>,
    /// One-slot heap bypass: an event scheduled with a packed key below
    /// everything pending (heap minimum and any previously held slot) is
    /// provably the next to fire — sequence numbers are strictly
    /// increasing, so no later push can order before it. The run loop
    /// drains this slot before polling the heap, which spares the
    /// majority of events a sift-up *and* a sift-down: a thread's next
    /// slice usually starts before any other pending event.
    next_event: Option<(u128, Event)>,
    threads: Vec<Thread>,
    ready: VecDeque<usize>,
    free_cores: Vec<usize>,
    core_last_thread: Vec<Option<usize>>,
    device: Option<Device>,
    /// Fault-injection state; `None` when both the plan and the policy
    /// are inactive, so the fault-free path stays bit-identical.
    fault: Option<FaultState>,
    /// Request slab: live request state in struct-of-arrays layout.
    slab: RequestSlab,
    completed: u64,
    completed_failed: u64,
    latencies: Vec<f64>,
    /// Scratch for the percentile sort, reused across `reset` cycles.
    lat_keys: Vec<u64>,
    core_busy: f64,
    offloads: u64,
    suppressed: u64,
    switches: u64,
    events_processed: u64,
    batch_runs: u64,
    multi_event_batches: u64,
    trace_replayed: u64,
    live_requests: usize,
    peak_live_requests: usize,
    /// Whether the initial thread-to-core assignment has been made;
    /// flips on the first [`run_until`](Self::run_until) call so a
    /// paused engine can resume without re-priming.
    primed: bool,
}

/// Validates a frozen trace against the config it is being installed
/// for, and normalizes empty traces to `None` (an empty prefix is a
/// no-op: the resume RNG equals the fresh seed state).
fn check_trace(
    cfg: &SimConfig,
    trace: Option<Arc<FrozenTrace>>,
) -> Result<Option<(Arc<FrozenTrace>, usize)>> {
    match trace {
        None => Ok(None),
        Some(t) => {
            if !t.matches(cfg) {
                return Err(SimError::InvalidConfig {
                    field: "trace",
                    value: t.seed() as f64,
                    reason: "frozen trace was drawn for a different seed or workload",
                });
            }
            Ok((!t.is_empty()).then_some((t, 0)))
        }
    }
}

impl Simulator {
    /// Builds a simulator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on a configuration [`try_new`](Self::try_new) rejects
    /// (zero cores, fewer threads than cores, zero horizon, …).
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(sim) => sim,
            Err(err) => panic!("{err}"),
        }
    }

    /// Builds a simulator, reporting degenerate configurations as a
    /// structured error instead of panicking (or worse, producing NaN
    /// metrics from a zero horizon or zero cores).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] when
    /// [`SimConfig::validate`] rejects the configuration.
    pub fn try_new(cfg: SimConfig) -> Result<Self> {
        Self::try_new_with_trace(cfg, None)
    }

    /// [`try_new`](Self::try_new) with a frozen trace to adopt: the
    /// engine serves request draws from the trace's pre-drawn prefix
    /// and continues live drawing from the trace's resume RNG state
    /// afterwards — bit-identical to `try_new(cfg)` for a trace drawn
    /// from `cfg`'s seed and workload (sweeps rely on this to sample
    /// once per seed instead of once per grid point).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] when the
    /// configuration is invalid or the trace was drawn for a different
    /// seed or workload.
    pub fn try_new_with_trace(
        cfg: SimConfig,
        trace: Option<Arc<FrozenTrace>>,
    ) -> Result<Self> {
        cfg.validate()?;
        let trace = check_trace(&cfg, trace)?;
        let device = cfg
            .offload
            .as_ref()
            .map(|o| Device::new(o.device, o.interface_latency, cfg.cores, cfg.horizon));
        // The fault subsystem only exists when it can change behaviour;
        // its RNG is derived from (run seed, plan seed) and is disjoint
        // from the workload stream, so a disabled plan is zero-impact.
        let fault = (cfg.fault.is_active() || cfg.recovery.is_active()).then(|| {
            FaultState::new(
                cfg.fault.clone(),
                cfg.recovery,
                derive_seed(cfg.seed, cfg.fault.seed),
            )
        });
        let threads = (0..cfg.threads).map(|_| Thread::default()).collect();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let sampler = cfg.workload.sampler();
        Ok(Self {
            sampler,
            ready: (0..cfg.threads).collect(),
            free_cores: (0..cfg.cores).rev().collect(),
            core_last_thread: vec![None; cfg.cores],
            threads,
            device,
            fault,
            // The slab only ever holds live requests, so sizing it to
            // the thread count (each thread drives one request, plus a
            // little slack for requests finishing asynchronously) avoids
            // regrowth for most runs.
            slab: RequestSlab::with_capacity(2 * cfg.threads),
            completed: 0,
            completed_failed: 0,
            latencies: Vec::new(),
            lat_keys: Vec::new(),
            core_busy: 0.0,
            offloads: 0,
            suppressed: 0,
            switches: 0,
            events_processed: 0,
            batch_runs: 0,
            multi_event_batches: 0,
            trace_replayed: 0,
            live_requests: 0,
            peak_live_requests: 0,
            now: SimTime::ZERO,
            seq: 0,
            // Pending events are bounded by threads plus in-flight
            // offload completions; 2×threads covers both in practice.
            events: EventQueue::with_capacity(2 * cfg.threads + 8),
            next_event: None,
            rng,
            bank: SampleBank::new(),
            trace,
            cfg,
            primed: false,
        })
    }

    /// Rebuilds the engine for `cfg` while keeping every heap
    /// allocation acquired so far — the request slab, thread work
    /// queues, event heap, latency samples, and percentile scratch are
    /// cleared in place rather than freed. Sweeps (`loadsweep`,
    /// `faultsweep`) and sharded runs drive many config points through
    /// one engine this way instead of rebuilding per point.
    ///
    /// The reset engine is observationally identical to
    /// `Simulator::try_new(cfg)` — same RNG stream, same event order,
    /// bit-identical metrics (pinned by a test below).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] when
    /// [`SimConfig::validate`] rejects the configuration; the engine is
    /// left untouched in that case.
    pub fn reset(&mut self, cfg: SimConfig) -> Result<()> {
        self.reset_with_trace(cfg, None)
    }

    /// [`reset`](Self::reset) that additionally adopts a frozen trace,
    /// exactly as [`try_new_with_trace`](Self::try_new_with_trace) does
    /// at construction. This is how sweep runners reuse one engine *and*
    /// one trace across grid points.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] when the
    /// configuration is invalid or the trace was drawn for a different
    /// seed or workload; the engine is left untouched in that case.
    pub fn reset_with_trace(
        &mut self,
        cfg: SimConfig,
        trace: Option<Arc<FrozenTrace>>,
    ) -> Result<()> {
        cfg.validate()?;
        self.trace = check_trace(&cfg, trace)?;
        self.bank.clear();
        self.device = cfg
            .offload
            .as_ref()
            .map(|o| Device::new(o.device, o.interface_latency, cfg.cores, cfg.horizon));
        self.fault = (cfg.fault.is_active() || cfg.recovery.is_active()).then(|| {
            FaultState::new(
                cfg.fault.clone(),
                cfg.recovery,
                derive_seed(cfg.seed, cfg.fault.seed),
            )
        });
        self.sampler = cfg.workload.sampler();
        self.rng = StdRng::seed_from_u64(cfg.seed);
        self.threads.truncate(cfg.threads);
        for t in &mut self.threads {
            t.state = ThreadState::Ready;
            t.items.clear();
            t.request = usize::MAX;
            t.pickups.clear();
        }
        self.threads
            .resize_with(cfg.threads, Thread::default);
        self.ready.clear();
        self.ready.extend(0..cfg.threads);
        self.free_cores.clear();
        self.free_cores.extend((0..cfg.cores).rev());
        self.core_last_thread.clear();
        self.core_last_thread.resize(cfg.cores, None);
        self.slab.clear();
        self.completed = 0;
        self.completed_failed = 0;
        self.latencies.clear();
        self.core_busy = 0.0;
        self.offloads = 0;
        self.suppressed = 0;
        self.switches = 0;
        self.events_processed = 0;
        self.batch_runs = 0;
        self.multi_event_batches = 0;
        self.trace_replayed = 0;
        self.live_requests = 0;
        self.peak_live_requests = 0;
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.events.clear();
        self.next_event = None;
        self.primed = false;
        self.cfg = cfg;
        Ok(())
    }

    /// Overrides the sample bank's refill block size (test hook).
    /// Every block size is bit-identical — size 1 degenerates to the
    /// historical draw-per-request path — which the trace proptests pin.
    #[doc(hidden)]
    pub fn set_bank_block(&mut self, block: usize) {
        self.bank.set_block(block);
    }

    /// Schedules `event` at `time`, routing it through the one-slot heap
    /// bypass when it is provably the next event to fire.
    ///
    /// Invariant: the held slot's key is strictly below every heap key.
    /// A new key below the held key therefore also undercuts the whole
    /// heap (it takes the slot, the displaced event re-enters the heap
    /// as its new minimum); a new key at or above the held key cannot be
    /// next, so it goes straight to the heap.
    fn push_event(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        let key = pack(time, self.seq);
        match self.next_event {
            None => {
                if key < self.events.min_key() {
                    self.next_event = Some((key, event));
                } else {
                    self.events.push_key(key, event);
                }
            }
            Some((held_key, held_event)) => {
                if key < held_key {
                    self.events.push_key(held_key, held_event);
                    self.next_event = Some((key, event));
                } else {
                    self.events.push_key(key, event);
                }
            }
        }
    }

    /// Runs the simulation to the horizon and returns the metrics.
    #[must_use]
    pub fn run(self) -> SimMetrics {
        self.run_instrumented().0
    }

    /// Runs the simulation and additionally returns engine-internal
    /// counters ([`EngineStats`]) that are not part of the serialized
    /// [`SimMetrics`] contract: benchmarks use the event count to report
    /// events/sec, and tests use the peak-live-request count to pin the
    /// O(in-flight) memory behaviour.
    #[must_use]
    pub fn run_instrumented(mut self) -> (SimMetrics, EngineStats) {
        self.run_instrumented_in_place()
    }

    /// [`run_instrumented`](Self::run_instrumented) without consuming
    /// the engine, so a caller holding a reusable simulator can
    /// [`reset`](Self::reset) it for the next config point. The engine
    /// must be reset before it is run again.
    pub fn run_instrumented_in_place(&mut self) -> (SimMetrics, EngineStats) {
        let horizon = self.cfg.horizon;
        self.run_until(horizon);
        self.finish()
    }

    /// Advances the simulation until the next pending event would be
    /// later than `until` (events at exactly `until` are processed).
    /// Idempotent once drained; callable repeatedly with increasing
    /// bounds — the sharded runner pauses shards at epoch boundaries
    /// this way.
    ///
    /// The four monomorphizations fix the two run-level branches the
    /// old loop re-tested per event — "is there an accelerator?" and
    /// "is fault injection live?" — so the overwhelmingly common
    /// healthy paths carry no fault bookkeeping at all.
    pub(crate) fn run_until(&mut self, until: f64) {
        match (self.cfg.offload.is_some(), self.fault.is_some()) {
            (false, false) => self.advance::<false, false>(until),
            (false, true) => self.advance::<false, true>(until),
            (true, false) => self.advance::<true, false>(until),
            (true, true) => self.advance::<true, true>(until),
        }
    }

    /// The event loop. Each iteration takes the next due event either
    /// from the bypass slot (no heap traffic at all) or from the heap
    /// with one integer key compare ([`bound_key`] folds the horizon
    /// check into the heap order); the pop also reports whether more
    /// events share this exact timestamp, which drives the run
    /// accounting ([`EngineStats::batch_runs`] and friends) for free.
    ///
    /// Same-timestamp runs are processed by consecutive plain pops, not
    /// by buffering the run up front: sequence numbers are strictly
    /// increasing, so anything a handler pushes orders *after* every
    /// event already pending at that timestamp and the pop sequence is
    /// the exact global `(time, seq)` order either way. (A buffered
    /// variant — `EventQueue::pop_run` — was measured slower: the
    /// dominant run length is 2, e.g. Sync's `OffloadDone`/`SliceDone`
    /// pair, and the buffer swap costs more than the second pop.)
    /// Bounded peeking leaves beyond-horizon events in the heap, which
    /// no observable state reads.
    fn advance<const OFFLOAD: bool, const FAULTY: bool>(&mut self, until: f64) {
        if !self.primed {
            self.primed = true;
            self.schedule::<OFFLOAD, FAULTY>();
        }
        let bound = bound_key(until);
        // True while the previously popped event reported a continuing
        // same-timestamp run. Runs never straddle `until` (the bound
        // admits a timestamp wholly or not at all), so this is loop-local.
        let mut run_continues = false;
        loop {
            // The bypass slot, when occupied, holds the globally next
            // event; only an empty slot falls through to the heap. A
            // slot beyond the bound implies the whole heap is too
            // (every heap key is larger), so the loop is done — the
            // slot is retained for the next `run_until` call.
            let (time, event, tied) = match self.next_event {
                Some((key, event)) => {
                    if key > bound {
                        break;
                    }
                    self.next_event = None;
                    let tied = self.events.min_key() >> 64 == key >> 64;
                    (unpack_time(key), event, tied)
                }
                None => match self.events.pop_bounded(bound) {
                    Some(popped) => popped,
                    None => break,
                },
            };
            self.now = time;
            self.events_processed += 1;
            if !tied {
                // This event ends its timestamp run (usually a run of
                // one: the singleton fast path).
                self.batch_runs += 1;
            } else if !run_continues {
                // First event of a multi-event run.
                self.multi_event_batches += 1;
            }
            run_continues = tied;
            self.handle_event::<OFFLOAD, FAULTY>(event, time);
        }
    }

    /// Dispatches one popped event. Split out of [`advance`](Self::advance)
    /// so the singleton and batched paths share it; forced inline — it
    /// IS the loop body, and an outlined call would spill the loop's
    /// live registers on every event.
    #[inline(always)]
    fn handle_event<const OFFLOAD: bool, const FAULTY: bool>(&mut self, event: Event, time: SimTime) {
        match event {
            Event::SliceDone { thread, core } => {
                self.step_thread::<OFFLOAD, FAULTY>(thread, core, time);
            }
            Event::DispatchDone { thread, core } => {
                debug_assert_eq!(self.threads[thread].state, ThreadState::Blocked);
                self.release_core(core, thread);
                self.schedule::<OFFLOAD, FAULTY>();
            }
            Event::OffloadDone {
                thread,
                request,
                pickup,
                wakes_thread,
                failed,
            } => {
                self.slab.outstanding[request] -= 1;
                self.slab.flags[request] |= u8::from(failed) * FAILED;
                self.slab.lower_bound[request] = self.slab.lower_bound[request].max(time);
                if pickup {
                    // A distinct response thread steals cycles from the
                    // worker's core: inject the o1 pickup work.
                    self.threads[thread].pickups.push_back(request);
                    self.slab.outstanding[request] += 1; // held by pickup
                } else {
                    self.try_complete(request, time);
                }
                if wakes_thread {
                    // Waking the blocked thread costs a second o1 on top
                    // of the scheduler's switch-in charge: the
                    // interrupt/wakeup path plus the cache state the
                    // resumed thread must refill (eqn 3's 2·o1).
                    if self.cfg.context_switch_cycles > 0.0 {
                        self.threads[thread]
                            .items
                            .push_front(WorkItem::Host(self.cfg.context_switch_cycles));
                    }
                    self.threads[thread].state = ThreadState::Ready;
                    self.ready.push_back(thread);
                    self.schedule::<OFFLOAD, FAULTY>();
                }
            }
            Event::FallbackDue {
                thread,
                request,
                cycles,
            } => {
                // The host re-execution became eligible: make it the
                // thread's next slice so it occupies a core for the full
                // host cost, delaying everything scheduled behind it —
                // the capacity the old phantom `core_busy +=` credit
                // never actually took from anyone.
                self.threads[thread]
                    .items
                    .push_front(WorkItem::Fallback { request, cycles });
                if self.threads[thread].state == ThreadState::Blocked {
                    // Sync-OS: the dispatching thread blocked on the
                    // saga, and this delivery is what wakes it (taking
                    // over `OffloadDone`'s role, including the 2·o1
                    // wake charge, which runs before the fallback
                    // slice).
                    if self.cfg.context_switch_cycles > 0.0 {
                        self.threads[thread]
                            .items
                            .push_front(WorkItem::Host(self.cfg.context_switch_cycles));
                    }
                    self.threads[thread].state = ThreadState::Ready;
                    self.ready.push_back(thread);
                    self.schedule::<OFFLOAD, FAULTY>();
                }
            }
        }
    }

    fn release_core(&mut self, core: usize, last_thread: usize) {
        self.core_last_thread[core] = Some(last_thread);
        self.free_cores.push(core);
    }

    /// Accrues core-busy time for a slice beginning at `start`, clamped
    /// at the horizon: the part of a slice that runs past the end of the
    /// measurement window contributes no measured busy time (the same
    /// rule `Device::utilization` applies to device busy time), keeping
    /// `core_utilization <= 1` exact. Only the accumulator clamps —
    /// event timing is untouched, and a slice that ends at or before
    /// the horizon charges bit-identically to the unclamped sum.
    #[inline]
    fn charge_busy(&mut self, start: SimTime, cycles: f64) {
        let room = (self.cfg.horizon - start.cycles()).max(0.0);
        self.core_busy += cycles.min(room);
    }

    /// Assign ready threads to free cores.
    fn schedule<const OFFLOAD: bool, const FAULTY: bool>(&mut self) {
        while let (Some(&core), Some(&thread)) = (self.free_cores.last(), self.ready.front()) {
            self.free_cores.pop();
            self.ready.pop_front();
            let mut start = self.now;
            if self.core_last_thread[core] != Some(thread) && self.core_last_thread[core].is_some()
            {
                // Context switch: restoring a different thread's state.
                self.charge_busy(start, self.cfg.context_switch_cycles);
                start += self.cfg.context_switch_cycles;
                self.switches += 1;
            }
            self.threads[thread].state = ThreadState::Running;
            self.step_thread::<OFFLOAD, FAULTY>(thread, core, start);
        }
    }

    /// Executes the thread's next action on `core` starting at `start`.
    fn step_thread<const OFFLOAD: bool, const FAULTY: bool>(
        &mut self,
        thread: usize,
        core: usize,
        start: SimTime,
    ) {
        // Pending response pickups run first (the distinct response
        // thread preempting the worker's core). Only `OffloadDone`
        // deliveries ever feed `pickups`, so the host-only
        // specialization drops the check entirely.
        if OFFLOAD {
            if let Some(request) = self.threads[thread].pickups.pop_front() {
                let end = start + self.cfg.context_switch_cycles;
                self.charge_busy(start, self.cfg.context_switch_cycles);
                self.slab.outstanding[request] -= 1;
                self.slab.lower_bound[request] = self.slab.lower_bound[request].max(end);
                self.try_complete(request, end);
                self.push_event(end, Event::SliceDone { thread, core });
                return;
            }
        }

        let item = loop {
            match self.threads[thread].items.pop_front() {
                Some(WorkItem::Host(c)) if c <= 0.0 => continue,
                Some(item) => break item,
                None => {
                    // Request (host side) finished; start the next one.
                    self.finish_host_side(thread, start);
                    self.begin_request(thread, start);
                    continue;
                }
            }
        };

        match item {
            WorkItem::Host(cycles) => {
                self.charge_busy(start, cycles);
                self.push_event(start + cycles, Event::SliceDone { thread, core });
            }
            WorkItem::Kernel { bytes } => {
                self.execute_kernel::<OFFLOAD, FAULTY>(thread, core, start, bytes);
            }
            WorkItem::Fallback { request, cycles } => {
                // Host re-execution of a failed offload: occupies this
                // core for the full host cost like any other slice. The
                // item carries its own request index — the thread may
                // already be several requests ahead by the time the
                // fallback runs (async designs keep working while the
                // saga plays out).
                let end = start + cycles;
                self.charge_busy(start, cycles);
                self.slab.outstanding[request] -= 1;
                self.slab.lower_bound[request] = self.slab.lower_bound[request].max(end);
                self.try_complete(request, end);
                self.push_event(end, Event::SliceDone { thread, core });
            }
        }
    }

    fn execute_kernel<const OFFLOAD: bool, const FAULTY: bool>(
        &mut self,
        thread: usize,
        core: usize,
        start: SimTime,
        bytes: f64,
    ) {
        let host_cycles = self.cfg.workload.kernel_host_cycles(bytes);
        if !OFFLOAD {
            self.charge_busy(start, host_cycles);
            self.push_event(start + host_cycles, Event::SliceDone { thread, core });
            return;
        }
        let offload = self.cfg.offload.expect("OFFLOAD implies a config");
        if let Some(min) = offload.min_offload_bytes {
            if bytes <= min {
                // Below break-even: execute locally.
                self.suppressed += 1;
                self.charge_busy(start, host_cycles);
                self.push_event(start + host_cycles, Event::SliceDone { thread, core });
                return;
            }
        }

        // Admission control (recovery policy): when the device's
        // predicted backlog exceeds the shed threshold, execute on the
        // host instead of joining a collapsing queue. Compiled out
        // entirely on the fault-free specialization.
        if FAULTY {
            if let (Some(device), Some(fault)) = (self.device.as_ref(), self.fault.as_mut()) {
                if let Some(limit) = fault.recovery.shed_backlog_cycles {
                    if device.predicted_queue_delay(start, core) > limit {
                        fault.metrics.shed_offloads += 1;
                        self.charge_busy(start, host_cycles);
                        self.push_event(start + host_cycles, Event::SliceDone { thread, core });
                        return;
                    }
                }
            }
        }

        // Dispatch to the accelerator.
        self.offloads += 1;
        let setup = offload.setup_cycles + offload.dispatch_pollution;
        let issue = start + setup;
        let service = host_cycles / offload.peak_speedup;
        let device = self
            .device
            .as_mut()
            .expect("offload config implies a device");
        // Under faults the single dispatch becomes a saga (retries,
        // backoff, timeout, fallback); `done` and `service_start` keep
        // their healthy-path meanings so the engagement rules below are
        // untouched. The fault-free arm is the exact original path, and
        // the `FAULTY = false` specialization contains only that arm.
        let (done, detect, service_start, failed, fallback_host_cycles) = if FAULTY {
            match self.fault.as_mut() {
                Some(fault) => {
                    let saga = fault.offload_saga(device, issue, core, service, host_cycles);
                    (
                        saga.done,
                        saga.detect,
                        saga.engaged_ref,
                        saga.abandoned,
                        saga.fallback_host_cycles,
                    )
                }
                None => {
                    let dispatch = device.dispatch(issue, core, service);
                    (dispatch.done, dispatch.done, dispatch.service_start, false, 0.0)
                }
            }
        } else {
            let dispatch = device.dispatch(issue, core, service);
            (dispatch.done, dispatch.done, dispatch.service_start, false, 0.0)
        };
        let request = self.threads[thread].request;
        // A saga that resolves by fallback schedules the host
        // re-execution as a real slice from the detection instant — it
        // must compete for a core, not be credited as phantom busy
        // time. Sync is the exception: its blocked round trip already
        // holds the core through `done`, which includes the
        // re-execution.
        let fell_back = FAULTY && fallback_host_cycles > 0.0;

        // Host-side engagement beyond setup: how long the core stays
        // occupied with this offload (the model's L+Q routing rules).
        let transfer_engaged = match (offload.design, offload.strategy, offload.driver) {
            (ThreadingDesign::Sync, _, _) => done, // blocked to completion
            (ThreadingDesign::SyncOs, AccelerationStrategy::Remote, _)
            | (ThreadingDesign::SyncOs, _, DriverMode::Posted) => issue,
            (ThreadingDesign::SyncOs, _, DriverMode::AwaitsAck) => service_start,
            (_, AccelerationStrategy::Remote, _) => issue,
            (_, _, _) => service_start,
        };

        match offload.design {
            ThreadingDesign::Sync => {
                // Core held for the whole round trip (Fig. 12) — under a
                // fallback `done` already includes the host
                // re-execution, charged here as held time.
                let held = done - start;
                self.charge_busy(start, held);
                self.slab.outstanding[request] += 1;
                self.push_event(
                    done,
                    Event::OffloadDone {
                        thread,
                        request,
                        pickup: false,
                        wakes_thread: false,
                        failed,
                    },
                );
                self.push_event(done, Event::SliceDone { thread, core });
            }
            ThreadingDesign::SyncOs => {
                // Core engaged through the ack, then switches away; the
                // thread blocks until the response (Fig. 13).
                let engaged_until = transfer_engaged.max(start);
                self.charge_busy(start, engaged_until - start);
                self.threads[thread].state = ThreadState::Blocked;
                self.slab.outstanding[request] += 1;
                self.push_event(engaged_until, Event::DispatchDone { thread, core });
                if fell_back {
                    // No response will arrive; the fallback delivery
                    // wakes the blocked thread (taking over
                    // `OffloadDone`'s role) and queues the re-execution
                    // as its next slice. Pushed after `DispatchDone` so
                    // a tie at `engaged_until` releases the core first.
                    self.push_event(
                        detect.max(engaged_until),
                        Event::FallbackDue {
                            thread,
                            request,
                            cycles: fallback_host_cycles,
                        },
                    );
                } else {
                    self.push_event(
                        done.max(engaged_until),
                        Event::OffloadDone {
                            thread,
                            request,
                            pickup: false,
                            wakes_thread: true,
                            failed,
                        },
                    );
                }
            }
            ThreadingDesign::AsyncSameThread
            | ThreadingDesign::AsyncDistinctThread
            | ThreadingDesign::AsyncNoResponse => {
                // Host engaged through dispatch, then keeps working
                // (Fig. 14).
                let engaged_until = transfer_engaged.max(start);
                self.charge_busy(start, engaged_until - start);
                self.slab.outstanding[request] += 1;
                if fell_back {
                    // The device never produced a result, so there is
                    // no response to deliver or pick up (even on
                    // DistinctThread, and even fire-and-forget Remote
                    // must re-execute to produce the effect): the
                    // re-execution is queued on the dispatching thread
                    // at detection time and holds the request open
                    // until it finishes on a core.
                    self.push_event(
                        detect.max(engaged_until),
                        Event::FallbackDue {
                            thread,
                            request,
                            cycles: fallback_host_cycles,
                        },
                    );
                } else {
                    let pickup = offload.design == ThreadingDesign::AsyncDistinctThread;
                    let track_completion = offload.design != ThreadingDesign::AsyncNoResponse
                        || offload.strategy != AccelerationStrategy::Remote;
                    if track_completion {
                        self.push_event(
                            done,
                            Event::OffloadDone {
                                thread,
                                request,
                                pickup,
                                wakes_thread: false,
                                failed,
                            },
                        );
                    } else {
                        // Remote fire-and-forget: the response never
                        // returns to this microservice, but an
                        // abandoned offload still fails the request.
                        self.slab.outstanding[request] -= 1;
                        self.slab.flags[request] |= u8::from(failed) * FAILED;
                    }
                }
                self.push_event(engaged_until, Event::SliceDone { thread, core });
            }
        }
    }

    fn begin_request(&mut self, thread: usize, start: SimTime) {
        let request = self.slab.alloc(start);
        self.live_requests += 1;
        self.peak_live_requests = self.peak_live_requests.max(self.live_requests);
        // Copy the next pre-drawn request into the thread's (drained)
        // item buffer so its allocation is reused request after request.
        // Disjoint field borrows keep the sampler, RNG, bank, and buffer
        // independent. Priority: adopted frozen trace, then the bank
        // (which refills itself from the RNG in blocks).
        let Self {
            ref sampler,
            ref mut rng,
            ref mut threads,
            ref mut bank,
            ref mut trace,
            ref mut trace_replayed,
            ..
        } = *self;
        let queue = &mut threads[thread].items;
        queue.head = 0;
        match trace {
            Some((frozen, next)) => {
                queue.buf.clear();
                queue.buf.extend_from_slice(frozen.request(*next));
                *next += 1;
                *trace_replayed += 1;
                // Prefix exhausted: continue live drawing from the RNG
                // state after the prefix — bit-identical to a run that
                // never had the trace (`check_trace` guarantees the
                // trace is non-empty, so `next` was in range).
                if *next == frozen.len() {
                    *rng = frozen.resume_rng().clone();
                    *trace = None;
                }
            }
            None => bank.pop_into(sampler, rng, &mut queue.buf),
        }
        threads[thread].request = request;
    }

    fn finish_host_side(&mut self, thread: usize, at: SimTime) {
        let request = self.threads[thread].request;
        if request == usize::MAX {
            return; // first request of this thread
        }
        self.slab.flags[request] |= HOST_DONE;
        self.slab.lower_bound[request] = self.slab.lower_bound[request].max(at);
        self.try_complete(request, at);
    }

    fn try_complete(&mut self, request: usize, at: SimTime) {
        if self.slab.flags[request] & HOST_DONE == 0 || self.slab.outstanding[request] > 0 {
            return;
        }
        // A request completes exactly once: every caller either just
        // decremented `outstanding` (impossible once it reached zero
        // here) or just set `host_done` (set once per request), so no
        // call can observe this state again before the slot is reused.
        let end = self.slab.lower_bound[request].max(at);
        self.completed += 1;
        self.completed_failed += u64::from(self.slab.flags[request] & FAILED != 0);
        self.live_requests -= 1;
        self.latencies.push(end - self.slab.start[request]);
        self.slab.retire(request);
    }

    fn finish(&mut self) -> (SimMetrics, EngineStats) {
        let horizon = self.cfg.horizon;
        let (mean_queue_delay, device_utilization, device_offloads) = self
            .device
            .as_ref()
            .map_or((0.0, 0.0, 0), |d| {
                (d.mean_queue_delay(), d.utilization(), d.offloads())
            });
        let faults = self.fault.as_ref().map_or_else(FaultMetrics::default, |f| {
            let mut m = f.metrics;
            m.failed_requests = self.completed_failed;
            m.goodput_per_gcycle = (self.completed - self.completed_failed) as f64 / horizon * 1e9;
            m
        });
        let metrics = SimMetrics {
            horizon_cycles: horizon,
            completed_requests: self.completed,
            throughput_per_gcycle: self.completed as f64 / horizon * 1e9,
            latency: LatencyStats::from_samples_scratch(&self.latencies, &mut self.lat_keys),
            core_utilization: self.core_busy / (self.cfg.cores as f64 * horizon),
            offloads_dispatched: self.offloads,
            offloads_suppressed: self.suppressed,
            mean_queue_delay,
            device_utilization,
            device_offloads,
            thread_switches: self.switches,
            faults,
        };
        let stats = EngineStats {
            events_processed: self.events_processed,
            events_scheduled: self.seq,
            peak_live_requests: self.peak_live_requests,
            batch_runs: self.batch_runs,
            multi_event_batches: self.multi_event_batches,
            heap_sift_ups: self.events.sift_ups(),
            heap_sift_downs: self.events.sift_downs(),
            bank_refills: self.bank.refills(),
            trace_requests_replayed: self.trace_replayed,
        };
        (metrics, stats)
    }

    /// Drains the service demand the device accumulated since the last
    /// drain (0 without a device) — the sharded runner's per-epoch
    /// exchange payload.
    pub(crate) fn take_epoch_service(&mut self) -> f64 {
        self.device.as_mut().map_or(0.0, Device::take_epoch_service)
    }

    /// Occupies the device with `cycles` of foreign demand (demand
    /// dispatched by sibling shards on the same physical device).
    pub(crate) fn defer_device(&mut self, cycles: f64) {
        if let Some(d) = &mut self.device {
            d.defer_by(cycles);
        }
    }

    /// Number of device service units this engine models (0 without a
    /// device, or for an unlimited one).
    pub(crate) fn device_servers(&self) -> usize {
        self.device.as_ref().map_or(0, Device::servers)
    }

    /// Tears the engine down into the raw accumulators a shard merge
    /// needs. Only meaningful after the run reached the horizon.
    pub(crate) fn into_shard_output(self) -> ShardOutput {
        let stats = EngineStats {
            events_processed: self.events_processed,
            events_scheduled: self.seq,
            peak_live_requests: self.peak_live_requests,
            batch_runs: self.batch_runs,
            multi_event_batches: self.multi_event_batches,
            heap_sift_ups: self.events.sift_ups(),
            heap_sift_downs: self.events.sift_downs(),
            bank_refills: self.bank.refills(),
            trace_requests_replayed: self.trace_replayed,
        };
        let (device_busy, device_queue_delay_total, device_offloads, device_servers) = self
            .device
            .as_ref()
            .map_or((0.0, 0.0, 0, 0), |d| {
                (
                    d.busy_cycles(),
                    d.queue_delay_total(),
                    d.offloads(),
                    d.servers(),
                )
            });
        ShardOutput {
            completed: self.completed,
            completed_failed: self.completed_failed,
            latencies: self.latencies,
            core_busy: self.core_busy,
            offloads: self.offloads,
            suppressed: self.suppressed,
            switches: self.switches,
            stats,
            device_busy,
            device_queue_delay_total,
            device_offloads,
            device_servers,
            faults: self.fault.map(|f| f.metrics),
        }
    }
}

/// One shard's raw accumulators, before any cross-shard folding — the
/// sharded runner merges these in shard-index order so the result is
/// independent of worker-pool width.
#[derive(Debug)]
pub(crate) struct ShardOutput {
    pub completed: u64,
    pub completed_failed: u64,
    pub latencies: Vec<f64>,
    pub core_busy: f64,
    pub offloads: u64,
    pub suppressed: u64,
    pub switches: u64,
    pub stats: EngineStats,
    pub device_busy: f64,
    pub device_queue_delay_total: f64,
    pub device_offloads: u64,
    pub device_servers: usize,
    pub faults: Option<FaultMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer::units::cycles_per_byte;
    use accelerometer::GranularityCdf;

    fn workload() -> WorkloadSpec {
        WorkloadSpec {
            non_kernel_cycles: 5_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.5), (1024.0, 1.0)]).unwrap(),
            cycles_per_byte: cycles_per_byte(2.0),
        }
    }

    fn base_config() -> SimConfig {
        SimConfig {
            cores: 4,
            threads: 4,
            context_switch_cycles: 0.0,
            horizon: 5e7,
            seed: 1,
            workload: workload(),
            offload: None,
            fault: FaultPlan::none(),
            recovery: RecoveryPolicy::none(),
        }
    }

    #[test]
    fn baseline_throughput_matches_mean_cost() {
        let metrics = Simulator::new(base_config()).run();
        // Expected: cores / mean_request_cycles per cycle.
        let expected = 4.0 / workload().mean_request_cycles() * 1e9;
        let got = metrics.throughput_per_gcycle;
        assert!(
            (got / expected - 1.0).abs() < 0.02,
            "throughput {got:.1} vs expected {expected:.1}"
        );
        // Saturated closed loop: cores ~always busy.
        assert!(metrics.core_utilization > 0.99);
        assert_eq!(metrics.offloads_dispatched, 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulator::new(base_config()).run();
        let b = Simulator::new(base_config()).run();
        assert_eq!(a.completed_requests, b.completed_requests);
        assert_eq!(a.throughput_per_gcycle, b.throughput_per_gcycle);
        let mut cfg = base_config();
        cfg.seed = 2;
        let c = Simulator::new(cfg).run();
        assert_ne!(a.completed_requests, c.completed_requests);
    }

    #[test]
    fn on_chip_sync_acceleration_approaches_amdahl() {
        let mut cfg = base_config();
        cfg.offload = Some(OffloadConfig::on_chip_sync(4.0));
        let accel = Simulator::new(cfg).run();
        let base = Simulator::new(base_config()).run();
        let speedup = accel.throughput_per_gcycle / base.throughput_per_gcycle;
        let alpha = workload().expected_alpha();
        let amdahl = 1.0 / ((1.0 - alpha) + alpha / 4.0);
        assert!(
            (speedup / amdahl - 1.0).abs() < 0.03,
            "speedup {speedup:.4} vs Amdahl {amdahl:.4}"
        );
        assert!(accel.offloads_dispatched > 0);
        assert_eq!(accel.offloads_suppressed, 0);
    }

    #[test]
    fn selective_offload_suppresses_small_kernels() {
        let mut cfg = base_config();
        cfg.offload = Some(OffloadConfig {
            min_offload_bytes: Some(500.0),
            ..OffloadConfig::on_chip_sync(4.0)
        });
        let metrics = Simulator::new(cfg).run();
        assert!(metrics.offloads_suppressed > 0);
        assert!(metrics.offloads_dispatched > 0);
        // CDF: ~62% of kernels are <= 500 B.
        let total = metrics.offloads_dispatched + metrics.offloads_suppressed;
        let suppressed_fraction = metrics.offloads_suppressed as f64 / total as f64;
        assert!(
            (suppressed_fraction - 0.62).abs() < 0.05,
            "suppressed {suppressed_fraction}"
        );
    }

    #[test]
    fn shared_off_chip_device_exhibits_queueing() {
        let mut cfg = base_config();
        cfg.offload = Some(OffloadConfig {
            strategy: AccelerationStrategy::OffChip,
            device: DeviceKind::Shared { servers: 1 },
            driver: DriverMode::AwaitsAck,
            peak_speedup: 1.2, // slow device serving 4 cores → contention
            interface_latency: 100.0,
            ..OffloadConfig::on_chip_sync(1.2)
        });
        let metrics = Simulator::new(cfg).run();
        assert!(
            metrics.mean_queue_delay > 0.0,
            "no queueing despite contention"
        );
        // Sync blocking throttles the arrival rate (closed-loop
        // feedback), so utilization settles below the open-loop estimate
        // but the device must still be the visible bottleneck resource.
        assert!(
            metrics.device_utilization > 0.3,
            "device utilization {}",
            metrics.device_utilization
        );
    }

    #[test]
    fn sync_os_oversubscription_overlaps_offload_time() {
        // A slow shared device with Sync threading stalls cores; Sync-OS
        // with 2× threads should recover throughput.
        let offload = |design| OffloadConfig {
            design,
            strategy: AccelerationStrategy::OffChip,
            device: DeviceKind::Shared { servers: 4 },
            driver: DriverMode::Posted,
            peak_speedup: 2.0,
            interface_latency: 3_000.0,
            setup_cycles: 0.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        };
        let mut sync_cfg = base_config();
        sync_cfg.offload = Some(offload(ThreadingDesign::Sync));
        let sync = Simulator::new(sync_cfg).run();

        let mut os_cfg = base_config();
        os_cfg.threads = 16;
        os_cfg.context_switch_cycles = 200.0;
        os_cfg.offload = Some(offload(ThreadingDesign::SyncOs));
        let sync_os = Simulator::new(os_cfg).run();

        assert!(
            sync_os.throughput_per_gcycle > sync.throughput_per_gcycle,
            "Sync-OS {:.1} should beat Sync {:.1} under long offload latency",
            sync_os.throughput_per_gcycle,
            sync.throughput_per_gcycle
        );
        assert!(sync_os.thread_switches > 0);
        assert_eq!(sync.thread_switches, 0);
    }

    #[test]
    fn async_overlap_beats_sync_blocking() {
        let offload = |design| OffloadConfig {
            design,
            strategy: AccelerationStrategy::OffChip,
            device: DeviceKind::Shared { servers: 8 },
            driver: DriverMode::Posted,
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        };
        let mut sync_cfg = base_config();
        sync_cfg.offload = Some(offload(ThreadingDesign::Sync));
        let sync = Simulator::new(sync_cfg).run();

        let mut async_cfg = base_config();
        async_cfg.offload = Some(offload(ThreadingDesign::AsyncSameThread));
        let asynchronous = Simulator::new(async_cfg).run();

        assert!(
            asynchronous.throughput_per_gcycle > sync.throughput_per_gcycle,
            "async {:.1} vs sync {:.1}",
            asynchronous.throughput_per_gcycle,
            sync.throughput_per_gcycle
        );
        // But async latency still includes the accelerator time: the
        // latency distribution must reflect offload completion.
        assert!(asynchronous.latency.mean > 0.0);
    }

    #[test]
    fn remote_no_response_excludes_offload_from_latency() {
        let offload = |design, strategy| OffloadConfig {
            design,
            strategy,
            device: DeviceKind::Unlimited,
            driver: DriverMode::Posted,
            peak_speedup: 1.0,
            interface_latency: 500_000.0, // huge network hop
            setup_cycles: 100.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        };
        let mut remote_cfg = base_config();
        remote_cfg.offload = Some(offload(
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::Remote,
        ));
        let remote = Simulator::new(remote_cfg).run();

        let mut off_chip_cfg = base_config();
        off_chip_cfg.offload = Some(offload(
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
        ));
        let off_chip = Simulator::new(off_chip_cfg).run();

        // Remote fire-and-forget latency excludes the 500k-cycle hop;
        // off-chip latency includes it (eqn 8 vs eqn 6).
        assert!(
            remote.latency.mean < off_chip.latency.mean / 2.0,
            "remote {:.0} vs off-chip {:.0}",
            remote.latency.mean,
            off_chip.latency.mean
        );
    }

    #[test]
    fn distinct_thread_pickups_consume_core_cycles() {
        let mut cfg = base_config();
        cfg.context_switch_cycles = 1_000.0;
        cfg.offload = Some(OffloadConfig {
            design: ThreadingDesign::AsyncDistinctThread,
            strategy: AccelerationStrategy::Remote,
            device: DeviceKind::Unlimited,
            driver: DriverMode::Posted,
            peak_speedup: 1.0,
            interface_latency: 10_000.0,
            setup_cycles: 0.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        });
        let with_pickup = Simulator::new(cfg.clone()).run();

        cfg.offload.as_mut().unwrap().design = ThreadingDesign::AsyncNoResponse;
        cfg.offload.as_mut().unwrap().strategy = AccelerationStrategy::Remote;
        let no_pickup = Simulator::new(cfg).run();

        // The o1-per-response pickup cost must reduce throughput.
        assert!(
            with_pickup.throughput_per_gcycle < no_pickup.throughput_per_gcycle,
            "pickup {:.1} vs none {:.1}",
            with_pickup.throughput_per_gcycle,
            no_pickup.throughput_per_gcycle
        );
    }

    #[test]
    #[should_panic(expected = "threads must cover cores")]
    fn rejects_fewer_threads_than_cores() {
        let mut cfg = base_config();
        cfg.threads = 2;
        let _ = Simulator::new(cfg);
    }

    fn expect_invalid(cfg: SimConfig) -> crate::error::SimError {
        match Simulator::try_new(cfg) {
            Err(err) => err,
            Ok(_) => panic!("expected an invalid-config error"),
        }
    }

    #[test]
    fn degenerate_configs_error_instead_of_nan() {
        // Regression: horizon == 0 used to reach Engine::finish and
        // divide by zero (NaN throughput/utilization in serialized JSON);
        // cores == 0 used to panic deep in the scheduler.
        let mut cfg = base_config();
        cfg.horizon = 0.0;
        let err = expect_invalid(cfg);
        assert!(err.to_string().contains("horizon must be positive"), "{err}");

        let mut cfg = base_config();
        cfg.cores = 0;
        cfg.threads = 0;
        let err = expect_invalid(cfg);
        assert!(err.to_string().contains("need at least one core"), "{err}");

        let mut cfg = base_config();
        cfg.horizon = f64::NAN;
        assert!(Simulator::try_new(cfg).is_err());

        let mut cfg = base_config();
        cfg.fault.failure_probability = 2.0;
        assert!(Simulator::try_new(cfg).is_err());
    }

    fn faulty_offload() -> OffloadConfig {
        OffloadConfig {
            design: ThreadingDesign::AsyncSameThread,
            strategy: AccelerationStrategy::OffChip,
            device: DeviceKind::Shared { servers: 4 },
            driver: DriverMode::Posted,
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }
    }

    #[test]
    fn disabled_fault_plan_is_bit_identical() {
        let mut cfg = base_config();
        cfg.offload = Some(faulty_offload());
        let clean = Simulator::new(cfg.clone()).run();
        // Explicitly-none plan and policy (the serde defaults) must take
        // the identical code path: every metric matches bit for bit.
        cfg.fault = FaultPlan::none();
        cfg.recovery = RecoveryPolicy::none();
        let with_subsystem = Simulator::new(cfg).run();
        assert_eq!(clean, with_subsystem);
        assert!(!with_subsystem.faults.active);
    }

    #[test]
    fn injected_failures_without_recovery_cost_goodput() {
        let mut cfg = base_config();
        cfg.offload = Some(faulty_offload());
        cfg.fault = FaultPlan {
            failure_probability: 0.05,
            ..FaultPlan::none()
        };
        let m = Simulator::new(cfg).run();
        assert!(m.faults.active);
        assert!(m.faults.injected_failures > 0);
        assert_eq!(m.faults.abandoned_offloads, m.faults.injected_failures);
        assert!(m.faults.failed_requests > 0);
        assert!(m.faults.goodput_per_gcycle < m.throughput_per_gcycle);
    }

    #[test]
    fn retry_and_fallback_recover_goodput() {
        let mut cfg = base_config();
        cfg.offload = Some(faulty_offload());
        cfg.fault = FaultPlan {
            failure_probability: 0.05,
            ..FaultPlan::none()
        };
        let unprotected = Simulator::new(cfg.clone()).run();
        cfg.recovery = RecoveryPolicy {
            max_retries: 3,
            backoff_base_cycles: 1_000.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let protected = Simulator::new(cfg).run();
        assert!(protected.faults.retries > 0);
        assert_eq!(protected.faults.failed_requests, 0);
        assert!(
            protected.faults.goodput_per_gcycle > unprotected.faults.goodput_per_gcycle,
            "recovered {:.1} vs unprotected {:.1}",
            protected.faults.goodput_per_gcycle,
            unprotected.faults.goodput_per_gcycle
        );
    }

    #[test]
    fn fallback_slices_delay_co_scheduled_threads() {
        // One core, two Sync-OS threads: while one thread's fallback
        // re-execution occupies the core, the other thread must wait.
        // With every offload failing and zero retries, the fallback run
        // does the whole kernel on the host per request; the abandon run
        // skips that work entirely. Under the old phantom accounting
        // (`core_busy += fallback_host_cycles`, no scheduler slice) both
        // runs completed the *same* number of requests — the fallback
        // cycles delayed nobody. With real slices the shared core is the
        // bottleneck and the fallback run demonstrably completes fewer.
        let mut cfg = base_config();
        cfg.cores = 1;
        cfg.threads = 2;
        cfg.context_switch_cycles = 400.0;
        cfg.offload = Some(OffloadConfig {
            design: ThreadingDesign::SyncOs,
            ..faulty_offload()
        });
        cfg.fault = FaultPlan {
            failure_probability: 1.0,
            ..FaultPlan::none()
        };
        let abandoned = Simulator::new(cfg.clone()).run();
        cfg.recovery = RecoveryPolicy {
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let fallback = Simulator::new(cfg).run();

        assert!(fallback.faults.fallbacks > 0);
        assert_eq!(fallback.faults.failed_requests, 0);
        // Every request failed without recovery, so goodput is zero
        // there and positive with fallback.
        assert_eq!(abandoned.faults.goodput_per_gcycle, 0.0);
        assert!(fallback.faults.goodput_per_gcycle > 0.0);
        // The real cost: the re-execution slices displace fresh work on
        // the only core. Materially fewer requests finish.
        assert!(
            (abandoned.completed_requests as f64) > 1.05 * fallback.completed_requests as f64,
            "abandon completed {} vs fallback {}",
            abandoned.completed_requests,
            fallback.completed_requests
        );
        // And the capacity books stay honest on both sides.
        assert!(abandoned.core_utilization <= 1.0 + 1e-9);
        assert!(fallback.core_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn downtime_window_inflates_tail_latency() {
        let mut cfg = base_config();
        // Remote keeps the host dispatching during the outage (engaged
        // only through issue), so the backlog — and the tail — builds.
        cfg.offload = Some(OffloadConfig {
            strategy: AccelerationStrategy::Remote,
            ..faulty_offload()
        });
        let healthy = Simulator::new(cfg.clone()).run();
        cfg.fault = FaultPlan {
            degradation: vec![crate::fault::DegradationWindow::downtime(1e7, 2e7)],
            ..FaultPlan::none()
        };
        let degraded = Simulator::new(cfg).run();
        assert!(degraded.faults.degraded_offloads > 0);
        assert!(
            degraded.latency.p99 > 2.0 * healthy.latency.p99,
            "downtime p99 {:.0} vs healthy {:.0}",
            degraded.latency.p99,
            healthy.latency.p99
        );
    }

    #[test]
    fn reset_engine_is_bit_identical_to_fresh() {
        // Drive one engine through several dissimilar config points
        // (baseline → faulty offload → different shape) and compare
        // every run against a fresh simulator: the reset path must
        // reproduce the fresh path bit for bit, including the fault
        // RNG stream and the EngineStats counters.
        let mut faulty = base_config();
        faulty.offload = Some(faulty_offload());
        faulty.context_switch_cycles = 400.0;
        faulty.fault = FaultPlan {
            failure_probability: 0.02,
            ..FaultPlan::none()
        };
        faulty.recovery = RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 1_000.0,
            fallback_to_host: true,
            ..RecoveryPolicy::none()
        };
        let mut reshaped = base_config();
        reshaped.cores = 2;
        reshaped.threads = 6;
        reshaped.seed = 99;
        reshaped.offload = Some(OffloadConfig {
            design: ThreadingDesign::SyncOs,
            ..faulty_offload()
        });
        reshaped.context_switch_cycles = 250.0;

        let mut engine = Simulator::new(base_config());
        for cfg in [base_config(), faulty, reshaped, base_config()] {
            engine.reset(cfg.clone()).expect("valid config");
            let (metrics, stats) = engine.run_instrumented_in_place();
            let (fresh_metrics, fresh_stats) = Simulator::new(cfg).run_instrumented();
            assert_eq!(metrics, fresh_metrics);
            assert_eq!(stats, fresh_stats);
        }
    }

    #[test]
    fn run_until_pauses_and_resumes_bit_exactly() {
        let mut cfg = base_config();
        cfg.offload = Some(faulty_offload());
        cfg.fault = FaultPlan {
            failure_probability: 0.03,
            ..FaultPlan::none()
        };
        let one_shot = Simulator::new(cfg.clone()).run_instrumented();
        let mut paused = Simulator::new(cfg.clone());
        // Resume across many arbitrary epoch boundaries, including
        // repeats (idempotent once drained up to the bound).
        let h = cfg.horizon;
        for bound in [0.1, 0.25, 0.25, 0.5, 0.8, 0.99, 1.0] {
            paused.run_until(h * bound);
        }
        let split = paused.run_instrumented_in_place();
        assert_eq!(one_shot, split);
    }

    #[test]
    fn batching_stats_are_reported() {
        let mut cfg = base_config();
        cfg.offload = Some(faulty_offload());
        let (_, stats) = Simulator::new(cfg).run_instrumented();
        assert!(stats.batch_runs > 0);
        assert!(stats.batch_runs <= stats.events_processed);
        assert!(stats.mean_batch_len() >= 1.0);
        assert!(stats.heap_sift_ups + stats.heap_sift_downs > 0);
        assert!((0.0..=1.0).contains(&stats.batch_hit_rate()));
        // Sync completions schedule OffloadDone and SliceDone at the
        // same instant, so this workload must actually batch.
        let mut sync_cfg = base_config();
        sync_cfg.offload = Some(OffloadConfig::on_chip_sync(4.0));
        let (_, sync_stats) = Simulator::new(sync_cfg).run_instrumented();
        assert!(sync_stats.multi_event_batches > 0);
        assert!(sync_stats.mean_batch_len() > 1.0);
    }

    #[test]
    fn sampling_stats_attribute_requests_to_bank_or_trace() {
        let cfg = base_config();
        // Without a trace every request comes from the bank.
        let (metrics, stats) = Simulator::new(cfg.clone()).run_instrumented();
        assert!(stats.bank_refills > 0);
        assert_eq!(stats.trace_requests_replayed, 0);
        // A full-length frozen trace absorbs every draw: no refills, and
        // the replay counter covers the completed requests.
        let trace = Arc::new(FrozenTrace::for_config(&cfg));
        let engine = Simulator::try_new_with_trace(cfg, Some(trace)).expect("trace matches");
        let (traced_metrics, traced_stats) = engine.run_instrumented();
        assert_eq!(metrics, traced_metrics);
        assert_eq!(traced_stats.bank_refills, 0);
        assert!(traced_stats.trace_requests_replayed >= traced_metrics.completed_requests);
    }

    #[test]
    fn degenerate_offload_configs_are_rejected() {
        // With `SimTime` arithmetic checks compiled out of release
        // builds, negative durations must be rejected at validation.
        type Poison = fn(&mut OffloadConfig);
        let cases: [(&str, Poison); 5] = [
            ("peak speedup", |o| o.peak_speedup = 0.0),
            ("interface latency", |o| o.interface_latency = -1.0),
            ("setup cost", |o| o.setup_cycles = f64::NAN),
            ("dispatch pollution", |o| o.dispatch_pollution = -0.5),
            ("offload threshold", |o| {
                o.min_offload_bytes = Some(f64::INFINITY);
            }),
        ];
        for (what, poison) in cases {
            let mut cfg = base_config();
            let mut offload = faulty_offload();
            poison(&mut offload);
            cfg.offload = Some(offload);
            let err = expect_invalid(cfg);
            assert!(err.to_string().contains(what), "{what}: {err}");
        }
    }

    #[test]
    fn admission_control_sheds_backlog_to_host() {
        let mut cfg = base_config();
        cfg.offload = Some(OffloadConfig {
            device: DeviceKind::Shared { servers: 1 },
            peak_speedup: 1.2,
            ..faulty_offload()
        });
        cfg.fault = FaultPlan {
            degradation: vec![crate::fault::DegradationWindow::downtime(1e7, 2e7)],
            ..FaultPlan::none()
        };
        let waiting = Simulator::new(cfg.clone()).run();
        cfg.recovery = RecoveryPolicy {
            shed_backlog_cycles: Some(20_000.0),
            ..RecoveryPolicy::none()
        };
        let shedding = Simulator::new(cfg).run();
        assert!(shedding.faults.shed_offloads > 0);
        assert!(
            shedding.latency.p99 < waiting.latency.p99,
            "shed p99 {:.0} vs waiting p99 {:.0}",
            shedding.latency.p99,
            waiting.latency.p99
        );
    }
}
