//! Kernel-cost calibration: measure this host's actual per-byte kernel
//! costs with the batched harness and feed them into simulator
//! workloads.
//!
//! §4 derives each case study's host cost `α·C` from micro-benchmarks
//! on production hardware; this module is the reproduction's equivalent
//! call site. Each case-study kernel (AES-CTR encryption, LZ
//! compression, SHA-256 hashing, batched MLP inference) is run through
//! [`Harness::measure_batched`] using its allocation-free scratch-reuse
//! path, so the measured cycles are the kernel's — not the allocator's
//! or the timer's. The result plugs straight into a
//! [`WorkloadSpec`](crate::workload::WorkloadSpec)'s `cycles_per_byte`.
//!
//! Since the kernels crate grew runtime ISA dispatch, the default
//! calibration measures what the host hardware actually runs (AES-NI,
//! SHA-NI, AVX2 where present). The [`PairedKernel`] API measures the
//! same kernel through its public `*_scalar` entry point in the same
//! session, yielding an honestly *measured* acceleration factor `A` —
//! the quantity the paper's AES-NI case study models — instead of an
//! assumed one. Both tiers produce bit-identical outputs, so the pair
//! differs only in wall-clock.

use accelerometer::units::CyclesPerByte;
use accelerometer::KernelCost;
use accelerometer_kernels::aes::Aes128;
use accelerometer_kernels::harness::{BatchedMeasurement, Harness};
use accelerometer_kernels::hash::Sha256;
use accelerometer_kernels::lz::{self, LzScratch};
use accelerometer_kernels::mlp::{Mlp, MlpScratch};

use crate::workload::WorkloadSpec;

/// One calibrated kernel: the measured per-call, per-batch, and
/// per-byte costs from a batched run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedKernel {
    /// Kernel name (matches the case-study kernel it calibrates).
    pub name: &'static str,
    /// Bytes each invocation processed.
    pub bytes_per_call: u64,
    /// The raw batched measurement.
    pub measurement: BatchedMeasurement,
}

impl CalibratedKernel {
    /// Measured host cycles per byte (`Cb`).
    #[must_use]
    pub fn cycles_per_byte(&self) -> CyclesPerByte {
        self.measurement.per_call().cycles_per_byte()
    }

    /// Measured host cycles per kernel invocation (`α·C` for one call).
    #[must_use]
    pub fn cycles_per_call(&self) -> f64 {
        self.measurement.cycles_per_call()
    }

    /// Measured host cycles per batch — the granularity a batching
    /// offload (Fig. 14) dispatches at.
    #[must_use]
    pub fn cycles_per_batch(&self) -> f64 {
        self.measurement.cycles_per_batch()
    }

    /// The measurement as a linear [`KernelCost`] for break-even
    /// analysis.
    #[must_use]
    pub fn kernel_cost(&self) -> KernelCost {
        self.measurement.per_call().kernel_cost()
    }

    /// Returns `spec` with its assumed `cycles_per_byte` replaced by
    /// this kernel's measured value — the calibration call site for a
    /// simulated case study.
    #[must_use]
    pub fn apply_to(&self, mut spec: WorkloadSpec) -> WorkloadSpec {
        spec.cycles_per_byte = self.cycles_per_byte();
        spec
    }
}

/// One kernel measured on both ISA tiers in the same session: the
/// dispatched path (whatever the host exposes) and the scalar reference
/// path, via the kernels' public `*_scalar` entry points. The ratio is
/// the *measured* acceleration factor `A` of the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedKernel {
    /// Measured through the default (dispatched) entry point.
    pub dispatched: CalibratedKernel,
    /// Measured through the scalar reference entry point.
    pub scalar: CalibratedKernel,
}

impl PairedKernel {
    /// Measured acceleration factor: scalar `Cb` over dispatched `Cb`.
    /// Greater than 1 when the hardware path wins; honestly below 1
    /// when it loses (both happen — see EXPERIMENTS.md).
    #[must_use]
    pub fn acceleration_factor(&self) -> f64 {
        self.scalar.cycles_per_byte().get() / self.dispatched.cycles_per_byte().get()
    }
}

/// Runs the case-study kernels through the batched harness.
#[derive(Debug, Clone, Copy)]
pub struct Calibrator {
    harness: Harness,
    /// Timer reads per kernel.
    batches: u64,
    /// Kernel invocations per timer read.
    batch_size: u64,
}

impl Calibrator {
    /// Creates a calibrator timing at `clock_hz` with the given batch
    /// shape. Larger `batch_size` amortizes the timer read further;
    /// larger `batches` averages over more scheduler noise.
    ///
    /// # Panics
    ///
    /// Panics unless `clock_hz` is positive and finite (see
    /// [`Harness::new`]).
    #[must_use]
    pub fn new(clock_hz: f64, batches: u64, batch_size: u64) -> Self {
        Self {
            harness: Harness::new(clock_hz),
            batches,
            batch_size,
        }
    }

    /// AES-128-CTR over a `payload_bytes` message: the encryption
    /// kernel of case studies 1 and 2 (AES-NI, PCIe crypto).
    #[must_use]
    pub fn encryption(&self, payload_bytes: usize) -> CalibratedKernel {
        let cipher = Aes128::new(&[0x42u8; 16]);
        let mut buf = vec![0xA5u8; payload_bytes];
        let measurement = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || cipher.ctr_apply(&[7u8; 16], &mut buf),
        );
        CalibratedKernel {
            name: "encryption",
            bytes_per_call: payload_bytes as u64,
            measurement,
        }
    }

    /// LZ compression of a mildly compressible `payload_bytes` message
    /// through the scratch-reuse path: the compression kernel.
    #[must_use]
    pub fn compression(&self, payload_bytes: usize) -> CalibratedKernel {
        let input: Vec<u8> = (0..payload_bytes)
            .map(|i| match i % 16 {
                0..=7 => b'a' + (i % 8) as u8,
                8..=11 => (i / 16 % 251) as u8,
                _ => 0,
            })
            .collect();
        let mut scratch = LzScratch::new();
        let mut out = Vec::new();
        let measurement = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || lz::compress_into(&input, &mut scratch, &mut out),
        );
        CalibratedKernel {
            name: "compression",
            bytes_per_call: payload_bytes as u64,
            measurement,
        }
    }

    /// Streaming SHA-256 over a `payload_bytes` message: the hashing
    /// kernel (Table 2's SHA family).
    #[must_use]
    pub fn hashing(&self, payload_bytes: usize) -> CalibratedKernel {
        let input = vec![0x5Au8; payload_bytes];
        let measurement = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || {
                let mut hasher = Sha256::new();
                hasher.update(&input);
                hasher.finalize()
            },
        );
        CalibratedKernel {
            name: "hashing",
            bytes_per_call: payload_bytes as u64,
            measurement,
        }
    }

    /// Batched MLP inference at batch size `b` on a Feed-shaped ranker:
    /// the remote-inference kernel of case study 3. One harness
    /// invocation is one *batch* of `b` inputs (the unit Ads1
    /// dispatches); bytes are the batch's feature payload.
    #[must_use]
    pub fn inference(&self, mlp: &Mlp, b: usize) -> CalibratedKernel {
        let width = mlp.input_width();
        let batch: Vec<Vec<f32>> = (0..b)
            .map(|i| (0..width).map(|j| (i * width + j) as f32 / 8192.0).collect())
            .collect();
        let bytes_per_call = (b * width * std::mem::size_of::<f32>()) as u64;
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        let measurement =
            self.harness
                .measure_batched(self.batches, self.batch_size, bytes_per_call, || {
                    mlp.forward_batch(&batch, &mut scratch, &mut out)
                        .expect("widths match")
                });
        CalibratedKernel {
            name: "inference",
            bytes_per_call,
            measurement,
        }
    }

    /// Calibrates all three case-study kernel families at representative
    /// sizes: 4 KiB payloads for encryption and compression, a
    /// 512×256×64×1 ranker at B=16 for inference.
    #[must_use]
    pub fn case_studies(&self) -> Vec<CalibratedKernel> {
        let mlp = Mlp::seeded_ranker(&[512, 256, 64, 1], 42);
        vec![
            self.encryption(4096),
            self.compression(4096),
            self.inference(&mlp, 16),
        ]
    }

    /// [`Calibrator::encryption`] on both tiers: `ctr_apply` vs
    /// `ctr_apply_scalar`, same buffer and driver. The dispatched side
    /// is AES-NI where the host has it — the measured version of the
    /// paper's AES-NI case-study `A`.
    #[must_use]
    pub fn encryption_paired(&self, payload_bytes: usize) -> PairedKernel {
        let cipher = Aes128::new(&[0x42u8; 16]);
        let mut buf = vec![0xA5u8; payload_bytes];
        let dispatched = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || cipher.ctr_apply(&[7u8; 16], &mut buf),
        );
        let scalar = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || cipher.ctr_apply_scalar(&[7u8; 16], &mut buf),
        );
        PairedKernel {
            dispatched: CalibratedKernel {
                name: "encryption",
                bytes_per_call: payload_bytes as u64,
                measurement: dispatched,
            },
            scalar: CalibratedKernel {
                name: "encryption",
                bytes_per_call: payload_bytes as u64,
                measurement: scalar,
            },
        }
    }

    /// [`Calibrator::hashing`] on both tiers (one-shot drivers on each
    /// side): SHA-NI where the host has it.
    #[must_use]
    pub fn hashing_paired(&self, payload_bytes: usize) -> PairedKernel {
        use accelerometer_kernels::hash;
        let input = vec![0x5Au8; payload_bytes];
        let dispatched = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || hash::sha256(&input),
        );
        let scalar = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || hash::sha256_scalar(&input),
        );
        PairedKernel {
            dispatched: CalibratedKernel {
                name: "hashing",
                bytes_per_call: payload_bytes as u64,
                measurement: dispatched,
            },
            scalar: CalibratedKernel {
                name: "hashing",
                bytes_per_call: payload_bytes as u64,
                measurement: scalar,
            },
        }
    }

    /// [`Calibrator::compression`] on both tiers through the identical
    /// scratch-reuse driver (`compress_into` vs `compress_into_scalar`),
    /// so the pair differs only in the match kernel.
    #[must_use]
    pub fn compression_paired(&self, payload_bytes: usize) -> PairedKernel {
        let input: Vec<u8> = (0..payload_bytes)
            .map(|i| match i % 16 {
                0..=7 => b'a' + (i % 8) as u8,
                8..=11 => (i / 16 % 251) as u8,
                _ => 0,
            })
            .collect();
        let mut scratch = LzScratch::new();
        let mut out = Vec::new();
        let dispatched = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || lz::compress_into(&input, &mut scratch, &mut out),
        );
        let scalar = self.harness.measure_batched(
            self.batches,
            self.batch_size,
            payload_bytes as u64,
            || lz::compress_into_scalar(&input, &mut scratch, &mut out),
        );
        PairedKernel {
            dispatched: CalibratedKernel {
                name: "compression",
                bytes_per_call: payload_bytes as u64,
                measurement: dispatched,
            },
            scalar: CalibratedKernel {
                name: "compression",
                bytes_per_call: payload_bytes as u64,
                measurement: scalar,
            },
        }
    }

    /// [`Calibrator::inference`] on both tiers (`forward_batch` vs
    /// `forward_batch_scalar`, same batch and scratch).
    #[must_use]
    pub fn inference_paired(&self, mlp: &Mlp, b: usize) -> PairedKernel {
        let width = mlp.input_width();
        let batch: Vec<Vec<f32>> = (0..b)
            .map(|i| (0..width).map(|j| (i * width + j) as f32 / 8192.0).collect())
            .collect();
        let bytes_per_call = (b * width * std::mem::size_of::<f32>()) as u64;
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        let dispatched =
            self.harness
                .measure_batched(self.batches, self.batch_size, bytes_per_call, || {
                    mlp.forward_batch(&batch, &mut scratch, &mut out)
                        .expect("widths match")
                });
        let scalar =
            self.harness
                .measure_batched(self.batches, self.batch_size, bytes_per_call, || {
                    mlp.forward_batch_scalar(&batch, &mut scratch, &mut out)
                        .expect("widths match")
                });
        PairedKernel {
            dispatched: CalibratedKernel {
                name: "inference",
                bytes_per_call,
                measurement: dispatched,
            },
            scalar: CalibratedKernel {
                name: "inference",
                bytes_per_call,
                measurement: scalar,
            },
        }
    }

    /// The paired (dispatched vs scalar) version of
    /// [`Calibrator::case_studies`]: measured acceleration factors for
    /// every case-study kernel family in one session.
    #[must_use]
    pub fn paired_case_studies(&self) -> Vec<PairedKernel> {
        let mlp = Mlp::seeded_ranker(&[512, 256, 64, 1], 42);
        vec![
            self.encryption_paired(4096),
            self.compression_paired(4096),
            self.hashing_paired(4096),
            self.inference_paired(&mlp, 16),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerometer::units::bytes;

    fn quick() -> Calibrator {
        // Tiny batch shape: correctness of the plumbing, not statistics.
        Calibrator::new(2.0e9, 2, 3)
    }

    #[test]
    fn all_case_study_kernels_calibrate() {
        for k in quick().case_studies() {
            assert!(k.cycles_per_byte().get() > 0.0, "{}", k.name);
            assert!(k.cycles_per_call() > 0.0, "{}", k.name);
            assert!(
                (k.cycles_per_batch() - 3.0 * k.cycles_per_call()).abs()
                    < 1e-6 * k.cycles_per_batch(),
                "{}",
                k.name
            );
            assert_eq!(k.measurement.batches, 2);
            assert_eq!(k.measurement.batch_size, 3);
        }
    }

    #[test]
    fn hashing_calibration_is_positive() {
        let k = quick().hashing(2048);
        assert_eq!(k.bytes_per_call, 2048);
        assert!(k.cycles_per_byte().get() > 0.0);
        let cost = k.kernel_cost();
        assert!(cost.host_cycles(bytes(1024.0)).get() > 0.0);
    }

    #[test]
    fn paired_calibration_measures_both_tiers() {
        // Plumbing, not statistics: both sides measured, factor finite
        // and positive. Whether it exceeds 1 is timing-dependent at
        // this tiny batch shape, so no threshold is asserted here —
        // BENCH_kernels.json records the real paired medians.
        for pair in quick().paired_case_studies() {
            assert_eq!(pair.dispatched.name, pair.scalar.name);
            assert_eq!(pair.dispatched.bytes_per_call, pair.scalar.bytes_per_call);
            assert!(pair.dispatched.cycles_per_byte().get() > 0.0, "{}", pair.dispatched.name);
            assert!(pair.scalar.cycles_per_byte().get() > 0.0, "{}", pair.scalar.name);
            let a = pair.acceleration_factor();
            assert!(a.is_finite() && a > 0.0, "{}: A = {a}", pair.dispatched.name);
        }
    }

    #[test]
    fn measured_cb_feeds_a_workload() {
        let k = quick().encryption(1024);
        let spec = crate::workload::workload_for_params(
            10_000.0,
            0.3,
            1.0,
            accelerometer::GranularityCdf::from_points(vec![(1024.0, 1.0)]).expect("valid"),
        );
        let calibrated = k.apply_to(spec.clone());
        assert_eq!(calibrated.cycles_per_byte, k.cycles_per_byte());
        // Only the per-byte cost changes; the shape is untouched.
        assert_eq!(calibrated.kernels_per_request, spec.kernels_per_request);
        assert!(calibrated.kernel_host_cycles(1024.0) > 0.0);
    }
}
