//! # accelerometer-sim
//!
//! A discrete-event microservice simulator providing the *measurement*
//! substrate for the Accelerometer reproduction: where the paper A/B
//! tests accelerators on production servers (§4), this crate A/B tests
//! them on a simulated host — cores, an oversubscribed thread pool, a
//! scheduler that charges real context-switch cycles, and accelerator
//! devices (per-core, shared-FIFO, or remote-unlimited) whose queueing
//! emerges from load.
//!
//! The simulator executes the offload state machines of Figs. 12–14 at
//! per-request granularity with kernel sizes drawn from measured CDFs,
//! so its A/B throughput ratio plays the role of the paper's "real
//! speedup" when validating the analytical model.
//!
//! ```
//! use accelerometer_sim::{run_ab, OffloadConfig, SimConfig};
//! use accelerometer_sim::workload::WorkloadSpec;
//! use accelerometer::units::cycles_per_byte;
//! use accelerometer::GranularityCdf;
//!
//! let control = SimConfig {
//!     cores: 2,
//!     threads: 2,
//!     context_switch_cycles: 0.0,
//!     horizon: 1e7,
//!     seed: 1,
//!     workload: WorkloadSpec {
//!         non_kernel_cycles: 4_000.0,
//!         kernels_per_request: 1,
//!         granularity: GranularityCdf::from_points(vec![(512.0, 1.0)])?,
//!         cycles_per_byte: cycles_per_byte(4.0),
//!     },
//!     offload: None,
//!     fault: Default::default(),
//!     recovery: Default::default(),
//! };
//! let result = run_ab(&control, OffloadConfig::on_chip_sync(8.0));
//! assert!(result.speedup() > 1.0);
//! # Ok::<(), accelerometer::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abtest;
pub mod calibrate;
pub mod casestudy;
pub mod device;
pub mod engine;
mod equeue;
pub mod error;
pub mod fault;
pub mod faultsweep;
pub mod loadsweep;
pub mod metrics;
pub mod parallel;
pub mod shard;
pub mod time;
pub mod trace;
pub mod workload;

pub use abtest::{run_ab, AbResult};
pub use calibrate::{CalibratedKernel, Calibrator, PairedKernel};
pub use casestudy::{
    simulate, validate_all, validate_all_with, CaseStudyValidation, CASE_STUDY_NAMES,
};
pub use device::{Device, DeviceKind};
pub use error::SimError;
pub use fault::{DegradationWindow, FaultPlan, RecoveryPolicy};
pub use faultsweep::{
    run_fault_sweep, run_fault_sweep_with, validate_fallback, validate_fallback_with,
    FallbackValidationRow, FaultModelCheck, FaultScenario, FaultSweepReport, NamedPolicy,
    PolicyOutcome, FALLBACK_VALIDATION_PROBABILITIES,
};
pub use loadsweep::{
    concurrency_sweep, concurrency_sweep_with, device_capacity_sweep, device_capacity_sweep_with,
    ConcurrencySweep, LoadPoint,
};
pub use engine::{EngineStats, OffloadConfig, SimConfig, Simulator};
pub use metrics::{FaultMetrics, LatencyStats, SimMetrics};
pub use parallel::{derive_seed, run_batch, run_replicas, ExecPool};
pub use shard::{
    default_shards, run_sharded, run_sharded_instrumented, run_sharded_traced,
    set_default_shards, ShardPlan, ShardStats,
};
pub use time::SimTime;
pub use trace::{set_trace_reuse, trace_reuse_enabled, FrozenTrace, TraceStore};
