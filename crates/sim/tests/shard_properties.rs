//! Property-based tests of the sharded runner's determinism contract:
//! for any configuration — including active fault plans — the merged
//! output is byte-identical at every worker-pool width, and a
//! single-shard plan reproduces the monolithic engine exactly.

use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    run_sharded, run_sharded_instrumented, DeviceKind, ExecPool, FaultPlan, OffloadConfig,
    RecoveryPolicy, ShardPlan, SimConfig, Simulator,
};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        500.0..10_000.0_f64, // non-kernel cycles
        1usize..3,           // kernels per request
        64.0..2_048.0_f64,   // granularity scale
        0.5..8.0_f64,        // Cb
    )
        .prop_map(|(non_kernel, kernels, scale, cb)| WorkloadSpec {
            non_kernel_cycles: non_kernel,
            kernels_per_request: kernels,
            granularity: GranularityCdf::from_points(vec![
                (scale, 0.5),
                (scale * 4.0, 0.9),
                (scale * 16.0, 1.0),
            ])
            .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(cb),
        })
}

fn fault_strategy() -> impl Strategy<Value = (FaultPlan, RecoveryPolicy)> {
    (
        any::<bool>(),
        0.0..0.05_f64,  // failure probability
        0.0..0.02_f64,  // spike probability
        0u32..3,        // retries
        any::<bool>(), // fallback
    )
        .prop_map(|(active, fail, spike, retries, fallback)| {
            if !active {
                return (FaultPlan::none(), RecoveryPolicy::none());
            }
            (
                FaultPlan {
                    failure_probability: fail,
                    spike_probability: spike,
                    spike_cycles: 15_000.0,
                    ..FaultPlan::none()
                },
                RecoveryPolicy {
                    max_retries: retries,
                    backoff_base_cycles: 800.0,
                    fallback_to_host: fallback,
                    ..RecoveryPolicy::none()
                },
            )
        })
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        workload_strategy(),
        prop::sample::select(ThreadingDesign::ALL.to_vec()),
        prop::sample::select(AccelerationStrategy::ALL.to_vec()),
        prop::sample::select(vec![(2usize, 4usize), (4, 8), (4, 12), (3, 7)]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        fault_strategy(),
        1.5..16.0_f64,
        0u64..1_000,
    )
        .prop_map(
            |(workload, design, strategy, (cores, threads), servers, (fault, recovery), a, seed)| {
                let horizon = workload.mean_request_cycles() * 4_000.0;
                SimConfig {
                    cores,
                    threads,
                    context_switch_cycles: 300.0,
                    horizon,
                    seed,
                    workload,
                    offload: Some(OffloadConfig {
                        design,
                        strategy,
                        driver: DriverMode::Posted,
                        device: DeviceKind::Shared { servers },
                        peak_speedup: a,
                        interface_latency: 1_500.0,
                        setup_cycles: 40.0,
                        dispatch_pollution: 0.0,
                        min_offload_bytes: None,
                    }),
                    fault,
                    recovery,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `--shards k` produces output byte-identical to `--shards 1` for
    /// random configurations, designs, and fault plans: the shard plan
    /// depends only on the configuration, so the worker width can only
    /// change wall-clock time — never a single serialized byte.
    #[test]
    fn sharded_output_is_width_invariant(cfg in config_strategy()) {
        let (reference, ref_stats) =
            run_sharded_instrumented(&ExecPool::new(1), &cfg).expect("valid config");
        let reference_bytes =
            serde_json::to_string(&reference).expect("metrics serialize");
        for width in [2usize, 5] {
            let (got, got_stats) =
                run_sharded_instrumented(&ExecPool::new(width), &cfg).expect("valid config");
            let got_bytes = serde_json::to_string(&got).expect("metrics serialize");
            prop_assert_eq!(&reference_bytes, &got_bytes, "width {} diverged", width);
            prop_assert_eq!(&ref_stats, &got_stats, "stats diverged at width {}", width);
        }
        prop_assert_eq!(ref_stats.plan, ShardPlan::for_config(&cfg));
        prop_assert_eq!(
            ref_stats.per_shard_events.iter().sum::<u64>(),
            ref_stats.engine.events_processed
        );
    }

    /// When the plan degenerates to one shard, the sharded runner is a
    /// bit-exact wrapper around the classic engine — same bytes out.
    #[test]
    fn single_shard_plans_match_the_classic_engine(cfg in config_strategy()) {
        let mut cfg = cfg;
        cfg.cores = 3;
        cfg.threads = 7; // coprime: forces a single-shard plan
        prop_assert_eq!(ShardPlan::for_config(&cfg).shards, 1);
        let classic = Simulator::new(cfg.clone()).run();
        let sharded = run_sharded(&ExecPool::new(4), &cfg).expect("valid config");
        prop_assert_eq!(
            serde_json::to_string(&classic).expect("metrics serialize"),
            serde_json::to_string(&sharded).expect("metrics serialize")
        );
    }
}
