//! End-to-end Table 6 validation: for each case study, the analytical
//! model's estimate and the simulator's A/B-measured "real" speedup must
//! reproduce the paper's numbers — including its headline claim that the
//! model estimates the real speedup with ≤3.7% error.

use accelerometer_sim::validate_all;

#[test]
fn table6_reproduction() {
    let results = validate_all(20_260_706);
    assert_eq!(results.len(), 3);

    for v in &results {
        // The model reproduces the paper's estimates exactly.
        assert!(
            (v.model_estimate_percent - v.paper_estimated_percent).abs() < 0.1,
            "{}: model {:.2}% vs paper estimate {:.2}%",
            v.name,
            v.model_estimate_percent,
            v.paper_estimated_percent
        );
        // The simulated production measurement lands within 1.5 points of
        // the paper's A/B measurement.
        assert!(
            v.simulated_vs_paper_points() < 1.5,
            "{}: simulated {:.2}% vs paper real {:.2}%",
            v.name,
            v.simulated_percent,
            v.paper_real_percent
        );
        // And the reproduction's own model-vs-measured error respects the
        // paper's ≤3.7-point bound (plus a small simulation-noise
        // allowance).
        assert!(
            v.model_vs_simulated_points() <= 4.3,
            "{}: model {:.2}% vs simulated {:.2}%",
            v.name,
            v.model_estimate_percent,
            v.simulated_percent
        );
        // The model over-estimates, as it did in all three paper studies.
        assert!(
            v.model_estimate_percent > v.simulated_percent,
            "{}: expected the model to over-estimate",
            v.name
        );
    }
}

#[test]
fn validation_is_seed_stable() {
    // Two different seeds must agree to within half a point: the
    // simulated measurement is a statistic, not noise.
    let a = validate_all(1);
    let b = validate_all(2);
    for (x, y) in a.iter().zip(&b) {
        assert!(
            (x.simulated_percent - y.simulated_percent).abs() < 0.75,
            "{}: {:.2}% vs {:.2}% across seeds",
            x.name,
            x.simulated_percent,
            y.simulated_percent
        );
    }
}
