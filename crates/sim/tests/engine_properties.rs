//! Property-based tests of the discrete-event engine's invariants over
//! randomized workloads and accelerator configurations.

use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{DeviceKind, OffloadConfig, SimConfig, Simulator};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        500.0..20_000.0_f64, // non-kernel cycles
        1usize..3,           // kernels per request
        64.0..4_096.0_f64,   // granularity scale
        0.5..8.0_f64,        // Cb
    )
        .prop_map(|(non_kernel, kernels, scale, cb)| WorkloadSpec {
            non_kernel_cycles: non_kernel,
            kernels_per_request: kernels,
            granularity: GranularityCdf::from_points(vec![
                (scale, 0.5),
                (scale * 4.0, 0.9),
                (scale * 16.0, 1.0),
            ])
            .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(cb),
        })
}

fn design_strategy() -> impl Strategy<Value = (ThreadingDesign, AccelerationStrategy)> {
    (
        prop::sample::select(ThreadingDesign::ALL.to_vec()),
        prop::sample::select(AccelerationStrategy::ALL.to_vec()),
    )
}

fn config(workload: WorkloadSpec, seed: u64, threads_factor: usize) -> SimConfig {
    // Scale the horizon to the workload so every configuration completes
    // a comparable request count (small-sample noise would otherwise
    // dominate heavy-kernel workloads).
    let horizon = workload.mean_request_cycles() * 15_000.0;
    SimConfig {
        cores: 2,
        threads: 2 * threads_factor,
        context_switch_cycles: 300.0,
        horizon,
        seed,
        workload,
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical configurations produce identical metrics (full
    /// determinism), and the metrics satisfy basic conservation laws.
    #[test]
    fn determinism_and_conservation(
        workload in workload_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = Simulator::new(config(workload.clone(), seed, 1)).run();
        let b = Simulator::new(config(workload, seed, 1)).run();
        prop_assert_eq!(a, b);

        // Conservation: busy cycles never exceed capacity — the slice a
        // core has in flight at the horizon is clamped at the boundary;
        // percentiles are ordered; completions are consistent with
        // samples.
        prop_assert!(a.core_utilization <= 1.0 + 1e-9);
        prop_assert!(a.core_utilization > 0.9, "saturated closed loop idles");
        prop_assert!(a.latency.p50 <= a.latency.p95 + 1e-9);
        prop_assert!(a.latency.p95 <= a.latency.p99 + 1e-9);
        prop_assert!(a.latency.p99 <= a.latency.max + 1e-9);
        prop_assert_eq!(a.latency.count as u64, a.completed_requests);
        prop_assert_eq!(a.offloads_dispatched, 0);
    }

    /// The baseline throughput equals cores / E[request cycles] within
    /// sampling error, for any workload shape.
    #[test]
    fn baseline_throughput_matches_expectation(
        workload in workload_strategy(),
        seed in 0u64..1_000,
    ) {
        let metrics = Simulator::new(config(workload.clone(), seed, 1)).run();
        let expected = 2.0 / workload.mean_request_cycles() * 1e9;
        let ratio = metrics.throughput_per_gcycle / expected;
        prop_assert!((ratio - 1.0).abs() < 0.05, "ratio {}", ratio);
    }

    /// Acceleration with zero overheads never slows the service, never
    /// exceeds the ideal bound, and suppressed+dispatched offloads
    /// account for every kernel of every completed request (up to
    /// in-flight work at the horizon).
    #[test]
    fn accelerated_run_respects_bounds(
        workload in workload_strategy(),
        (design, strategy) in design_strategy(),
        a in 1.5..32.0_f64,
        seed in 0u64..1_000,
    ) {
        let threads_factor = if design == ThreadingDesign::SyncOs { 4 } else { 1 };
        let base_cfg = config(workload.clone(), seed, threads_factor);
        let baseline = Simulator::new(base_cfg.clone()).run();

        let mut accel_cfg = base_cfg;
        accel_cfg.offload = Some(OffloadConfig {
            design,
            strategy,
            driver: DriverMode::Posted,
            device: match strategy {
                AccelerationStrategy::OnChip => DeviceKind::PerCore,
                AccelerationStrategy::OffChip => DeviceKind::Shared { servers: 8 },
                AccelerationStrategy::Remote => DeviceKind::Unlimited,
            },
            peak_speedup: a,
            interface_latency: 0.0,
            setup_cycles: 0.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        });
        let accel = Simulator::new(accel_cfg).run();

        let speedup = accel.speedup_over(&baseline);
        let alpha = workload.expected_alpha();
        let ideal = 1.0 / (1.0 - alpha);
        prop_assert!(speedup > 0.95, "zero-overhead offload slowed: {}", speedup);
        prop_assert!(
            speedup < ideal * 1.03,
            "speedup {} above ideal {}",
            speedup,
            ideal
        );

        // Offload accounting.
        let kernels = accel.offloads_dispatched + accel.offloads_suppressed;
        prop_assert_eq!(accel.offloads_suppressed, 0);
        let expected_kernels =
            accel.completed_requests * workload.kernels_per_request as u64;
        // All completed requests' kernels were dispatched (in-flight
        // requests may add a few more).
        prop_assert!(kernels >= expected_kernels);
    }

    /// Selective offload with a threshold above the whole distribution
    /// degenerates to the baseline (everything suppressed); a threshold
    /// of zero offloads everything.
    #[test]
    fn selection_thresholds_degenerate_correctly(
        workload in workload_strategy(),
        seed in 0u64..1_000,
    ) {
        let mk = |min_bytes: Option<f64>| {
            let mut cfg = config(workload.clone(), seed, 1);
            cfg.offload = Some(OffloadConfig {
                design: ThreadingDesign::Sync,
                strategy: AccelerationStrategy::OnChip,
                driver: DriverMode::Posted,
                device: DeviceKind::PerCore,
                peak_speedup: 8.0,
                interface_latency: 0.0,
                setup_cycles: 0.0,
                dispatch_pollution: 0.0,
                min_offload_bytes: min_bytes,
            });
            Simulator::new(cfg).run()
        };
        let baseline = Simulator::new(config(workload.clone(), seed, 1)).run();
        let all_suppressed = mk(Some(1e12));
        prop_assert_eq!(all_suppressed.offloads_dispatched, 0);
        // Suppressing everything = baseline, exactly (same RNG stream).
        prop_assert_eq!(
            all_suppressed.completed_requests,
            baseline.completed_requests
        );
        let all_offloaded = mk(Some(0.0));
        prop_assert_eq!(all_offloaded.offloads_suppressed, 0);
        prop_assert!(all_offloaded.completed_requests >= baseline.completed_requests);
    }
}
