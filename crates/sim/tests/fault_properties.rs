//! Property-based tests of the fault-injection subsystem: a disabled
//! fault plan must be a bit-exact no-op on arbitrary configurations,
//! fault sweeps must be deterministic at any pool width, and the
//! metrics produced under injected faults must still satisfy the
//! engine's conservation laws.

use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_sim::parallel::ExecPool;
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    run_fault_sweep_with, run_sharded, DegradationWindow, DeviceKind, FaultPlan, FaultScenario,
    NamedPolicy, OffloadConfig, RecoveryPolicy, SimConfig, Simulator,
};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        500.0..20_000.0_f64, // non-kernel cycles
        1usize..3,           // kernels per request
        64.0..4_096.0_f64,   // granularity scale
        0.5..8.0_f64,        // Cb
    )
        .prop_map(|(non_kernel, kernels, scale, cb)| WorkloadSpec {
            non_kernel_cycles: non_kernel,
            kernels_per_request: kernels,
            granularity: GranularityCdf::from_points(vec![
                (scale, 0.5),
                (scale * 4.0, 0.9),
                (scale * 16.0, 1.0),
            ])
            .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(cb),
        })
}

fn design_strategy() -> impl Strategy<Value = (ThreadingDesign, AccelerationStrategy)> {
    (
        prop::sample::select(ThreadingDesign::ALL.to_vec()),
        prop::sample::select(AccelerationStrategy::ALL.to_vec()),
    )
}

fn fault_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000,       // fault RNG stream
        0.0..0.2_f64,      // failure probability
        0.0..0.2_f64,      // spike probability
        1_000.0..50_000.0, // spike cycles
        any::<bool>(),     // include a degradation window?
        any::<bool>(),     // full downtime?
        1.5..8.0_f64,      // slowdown multiplier
    )
        .prop_map(
            |(seed, failure, spike_p, spike, windowed, down, multiplier)| FaultPlan {
                seed,
                failure_probability: failure,
                spike_probability: spike_p,
                spike_cycles: spike,
                degradation: if windowed {
                    vec![DegradationWindow {
                        start: 2e6,
                        end: 4e6,
                        multiplier,
                        down,
                    }]
                } else {
                    Vec::new()
                },
            },
        )
}

fn recovery_strategy() -> impl Strategy<Value = RecoveryPolicy> {
    (
        (any::<bool>(), 10_000.0..100_000.0_f64),
        0u32..4,
        500.0..5_000.0_f64,
        any::<bool>(),
        (any::<bool>(), 10_000.0..100_000.0_f64),
    )
        .prop_map(
            |((has_timeout, timeout), retries, backoff, fallback, (has_shed, shed))| {
                RecoveryPolicy {
                    timeout_cycles: has_timeout.then_some(timeout),
                    max_retries: retries,
                    backoff_base_cycles: backoff,
                    fallback_to_host: fallback,
                    shed_backlog_cycles: has_shed.then_some(shed),
                }
            },
        )
}

fn config(
    workload: WorkloadSpec,
    seed: u64,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
) -> SimConfig {
    let horizon = workload.mean_request_cycles() * 2_000.0;
    SimConfig {
        cores: 2,
        threads: if design == ThreadingDesign::SyncOs { 8 } else { 2 },
        context_switch_cycles: 300.0,
        horizon,
        seed,
        workload,
        offload: Some(OffloadConfig {
            design,
            strategy,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 4 },
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault: Default::default(),
        recovery: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `FaultPlan::none()` + `RecoveryPolicy::none()` is a bit-exact
    /// no-op: every metric equals the fault-free engine's output on
    /// arbitrary workloads and offload designs, and the serialized
    /// bytes are identical (no `faults` key appears).
    #[test]
    fn disabled_faults_are_a_bit_exact_noop(
        workload in workload_strategy(),
        (design, strategy) in design_strategy(),
        seed in 0u64..1_000,
    ) {
        let clean = config(workload.clone(), seed, design, strategy);
        let mut disabled = clean.clone();
        disabled.fault = FaultPlan::none();
        disabled.recovery = RecoveryPolicy::none();
        let a = Simulator::new(clean).run();
        let b = Simulator::new(disabled).run();
        prop_assert_eq!(&a, &b);
        let a_json = serde_json::to_string(&a).expect("metrics serialize");
        prop_assert_eq!(
            &a_json,
            &serde_json::to_string(&b).expect("metrics serialize")
        );
        prop_assert!(!a_json.contains("faults"));
    }

    /// Under arbitrary fault plans and recovery policies the engine
    /// still satisfies its conservation laws: identical reruns are
    /// byte-identical, percentiles stay ordered, goodput never exceeds
    /// throughput, device utilization stays within [0, 1], and the
    /// fault counters are mutually consistent.
    #[test]
    fn faulty_runs_are_deterministic_and_conserve(
        workload in workload_strategy(),
        (design, strategy) in design_strategy(),
        fault in fault_strategy(),
        recovery in recovery_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut cfg = config(workload, seed, design, strategy);
        cfg.fault = fault;
        cfg.recovery = recovery;
        let a = Simulator::new(cfg.clone()).run();
        let b = Simulator::new(cfg).run();
        prop_assert_eq!(&a, &b);

        prop_assert!(a.latency.p50 <= a.latency.p95 + 1e-9);
        prop_assert!(a.latency.p95 <= a.latency.p99 + 1e-9);
        prop_assert!(a.latency.p99 <= a.latency.max + 1e-9);
        // Fallback host re-execution occupies real scheduler slices and
        // every slice is clamped at the horizon, so core capacity is
        // conserved exactly — even under arbitrary fault plans.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a.core_utilization));
        let util = a.device_utilization;
        prop_assert!((0.0..=1.0 + 1e-9).contains(&util), "device util {}", util);
        let f = a.faults;
        prop_assert!(f.active);
        prop_assert!(f.goodput_per_gcycle <= a.throughput_per_gcycle + 1e-9);
        prop_assert!(f.failed_requests <= a.completed_requests);
        // Every abandoned offload stems from an injected failure or a
        // timeout, and retries only happen in response to those.
        prop_assert!(f.abandoned_offloads <= f.injected_failures + f.timeouts);
        prop_assert!(f.fallbacks + f.abandoned_offloads <= f.injected_failures + f.timeouts);
        if f.retries > 0 {
            prop_assert!(f.injected_failures + f.timeouts > 0);
        }
    }

    /// Core capacity is conserved under arbitrary `FaultPlan` ×
    /// `RecoveryPolicy` combinations on the *sharded* runner too:
    /// `core_utilization <= 1` (fallback slices and horizon clamping
    /// are per-shard properties that must survive the merge), and the
    /// report stays byte-identical at any worker-pool width.
    #[test]
    fn sharded_faulty_runs_conserve_core_capacity(
        workload in workload_strategy(),
        (design, strategy) in design_strategy(),
        fault in fault_strategy(),
        recovery in recovery_strategy(),
        seed in 0u64..1_000,
        width in 1usize..5,
    ) {
        let mut cfg = config(workload, seed, design, strategy);
        // A shardable machine shape: gcd(4 cores, 8 threads, 4 servers)
        // decomposes into 4 per-shard engines.
        cfg.cores = 4;
        cfg.threads = 8;
        cfg.fault = fault;
        cfg.recovery = recovery;
        let reference = run_sharded(&ExecPool::new(1), &cfg).expect("valid config");
        prop_assert!(
            (0.0..=1.0 + 1e-9).contains(&reference.core_utilization),
            "core util {}",
            reference.core_utilization
        );
        let wide = run_sharded(&ExecPool::new(width), &cfg).expect("valid config");
        prop_assert_eq!(reference, wide);
    }

    /// A fault sweep produces a byte-identical report at pool width 1
    /// and width 8 — the `--jobs` invariance the CLI relies on.
    #[test]
    fn fault_sweep_is_pool_width_invariant(
        workload in workload_strategy(),
        fault in fault_strategy(),
        recovery in recovery_strategy(),
        seed in 0u64..1_000,
    ) {
        let scenario = FaultScenario {
            base: config(
                workload,
                seed,
                ThreadingDesign::AsyncSameThread,
                AccelerationStrategy::Remote,
            ),
            plan: fault,
            policies: vec![
                NamedPolicy { name: "none".into(), policy: RecoveryPolicy::none() },
                NamedPolicy { name: "candidate".into(), policy: recovery },
            ],
            slo_min_p99_ratio: 0.5,
        };
        let one = run_fault_sweep_with(&ExecPool::new(1), &scenario).expect("sweep runs");
        let eight = run_fault_sweep_with(&ExecPool::new(8), &scenario).expect("sweep runs");
        prop_assert_eq!(
            serde_json::to_string(&one).expect("report serializes"),
            serde_json::to_string(&eight).expect("report serializes")
        );
    }
}
