//! Property-based proof of the sampling pipeline's bit-exactness: runs
//! that consume pre-drawn requests — through the engine's sample bank at
//! any block size, or through an adopted frozen trace of any prefix
//! length, sharded or not, faulted or not — must produce `SimMetrics`
//! and `EngineStats` identical to direct per-request drawing. The only
//! counters allowed to differ are `bank_refills` and
//! `trace_requests_replayed`, which exist precisely to report *where*
//! requests came from.

use std::sync::Arc;

use accelerometer::exec::ExecPool;
use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_sim::fault::{DegradationWindow, FaultPlan, RecoveryPolicy};
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    run_sharded, run_sharded_traced, DeviceKind, EngineStats, FrozenTrace, OffloadConfig,
    SimConfig, Simulator, TraceStore,
};
use proptest::prelude::*;

/// Strips the sampling-provenance counters, which report which pipeline
/// level supplied each request and so differ by construction between
/// the compared paths. Everything else must match exactly.
fn sans_provenance(mut stats: EngineStats) -> EngineStats {
    stats.bank_refills = 0;
    stats.trace_requests_replayed = 0;
    stats
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        500.0..20_000.0_f64, // non-kernel cycles
        0usize..3,           // kernels per request (0 exercises the Host(1.0) path)
        64.0..4_096.0_f64,   // granularity scale
        0.5..8.0_f64,        // Cb
    )
        .prop_map(|(non_kernel, kernels, scale, cb)| WorkloadSpec {
            non_kernel_cycles: non_kernel,
            kernels_per_request: kernels,
            granularity: GranularityCdf::from_points(vec![
                (scale, 0.5),
                (scale * 4.0, 0.9),
                (scale * 16.0, 1.0),
            ])
            .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(cb),
        })
}

fn design_strategy() -> impl Strategy<Value = (ThreadingDesign, AccelerationStrategy)> {
    (
        prop::sample::select(ThreadingDesign::ALL.to_vec()),
        prop::sample::select(AccelerationStrategy::ALL.to_vec()),
    )
}

/// An optionally-active fault plan plus recovery policy. Fault RNG is a
/// separate derived stream, so pre-drawn workload sampling must stay
/// exact under it.
fn fault_strategy(horizon_hint: f64) -> impl Strategy<Value = (FaultPlan, RecoveryPolicy)> {
    prop_oneof![
        Just((FaultPlan::none(), RecoveryPolicy::none())),
        (0.001..0.05_f64, 1u64..100).prop_map(move |(p, fseed)| {
            (
                FaultPlan {
                    seed: fseed,
                    failure_probability: p,
                    spike_probability: p / 2.0,
                    spike_cycles: 20_000.0,
                    degradation: vec![DegradationWindow::downtime(
                        horizon_hint * 0.3,
                        horizon_hint * 0.5,
                    )],
                },
                RecoveryPolicy {
                    max_retries: 2,
                    backoff_base_cycles: 1_000.0,
                    timeout_cycles: Some(30_000.0),
                    fallback_to_host: true,
                    ..RecoveryPolicy::none()
                },
            )
        }),
    ]
}

fn config(
    workload: WorkloadSpec,
    seed: u64,
    (design, strategy): (ThreadingDesign, AccelerationStrategy),
    (fault, recovery): (FaultPlan, RecoveryPolicy),
) -> SimConfig {
    let horizon = workload.mean_request_cycles() * 4_000.0;
    let threads = if design == ThreadingDesign::SyncOs { 8 } else { 2 };
    SimConfig {
        cores: 2,
        threads,
        context_switch_cycles: 300.0,
        horizon,
        seed,
        workload,
        offload: Some(OffloadConfig {
            design,
            strategy,
            driver: DriverMode::Posted,
            device: match strategy {
                AccelerationStrategy::OnChip => DeviceKind::PerCore,
                AccelerationStrategy::OffChip => DeviceKind::Shared { servers: 2 },
                AccelerationStrategy::Remote => DeviceKind::Unlimited,
            },
            peak_speedup: 4.0,
            interface_latency: 1_500.0,
            setup_cycles: 25.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault,
        recovery,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Level 1: the sample bank is a pure reordering of *when* draws
    /// happen, never of what they produce — every refill block size
    /// (1 degenerates to the historical draw-per-request schedule)
    /// yields identical metrics and engine counters.
    #[test]
    fn banked_runs_are_block_size_invariant(
        workload in workload_strategy(),
        design in design_strategy(),
        faults in fault_strategy(50_000.0 * 300.0),
        seed in 0u64..1_000,
    ) {
        let cfg = config(workload, seed, design, faults);
        let mut reference = None;
        for block in [1usize, 3, 64, 1_000] {
            let mut sim = Simulator::try_new(cfg.clone()).expect("valid config");
            sim.set_bank_block(block);
            let got = sim.run_instrumented_in_place();
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    prop_assert_eq!(&got.0, &want.0, "metrics diverged at block {}", block);
                    prop_assert_eq!(
                        sans_provenance(got.1),
                        sans_provenance(want.1),
                        "stats diverged at block {}",
                        block
                    );
                }
            }
        }
    }

    /// Level 2: adopting a frozen trace of *any* prefix length — empty,
    /// shorter than the run (exercising the resume-RNG continuation),
    /// right-sized, or oversized — is bit-identical to direct drawing,
    /// at construction and across `reset_with_trace` reuse.
    #[test]
    fn frozen_trace_runs_are_bit_identical(
        workload in workload_strategy(),
        design in design_strategy(),
        faults in fault_strategy(50_000.0 * 300.0),
        prefix in prop::sample::select(vec![0usize, 1, 7, 500, 100_000]),
        seed in 0u64..1_000,
    ) {
        let cfg = config(workload, seed, design, faults);
        let direct = Simulator::try_new(cfg.clone())
            .expect("valid config")
            .run_instrumented();
        let trace = Arc::new(FrozenTrace::draw(cfg.seed, &cfg.workload, prefix));
        let traced = Simulator::try_new_with_trace(cfg.clone(), Some(Arc::clone(&trace)))
            .expect("matching trace")
            .run_instrumented();
        prop_assert_eq!(&traced.0, &direct.0, "metrics diverged at prefix {}", prefix);
        prop_assert_eq!(
            sans_provenance(traced.1),
            sans_provenance(direct.1),
            "stats diverged at prefix {}",
            prefix
        );

        // Reset-and-reuse with the trace re-adopted (the sweep runners'
        // path) must replay identically too.
        let mut sim = Simulator::try_new(cfg.clone()).expect("valid config");
        let _ = sim.run_instrumented_in_place();
        sim.reset_with_trace(cfg, Some(trace)).expect("matching trace");
        let reused = sim.run_instrumented_in_place();
        prop_assert_eq!(&reused.0, &direct.0);
        prop_assert_eq!(sans_provenance(reused.1), sans_provenance(direct.1));
        prop_assert_eq!(reused.1.trace_requests_replayed, traced.1.trace_requests_replayed);
    }

    /// Sharded runs with a trace store — each shard looking up its
    /// decorrelated derived seed — match the untraced sharded runner at
    /// every worker-pool width.
    #[test]
    fn sharded_traced_runs_match_untraced(
        workload in workload_strategy(),
        faults in fault_strategy(50_000.0 * 300.0),
        seed in 0u64..1_000,
    ) {
        // cores 2 / threads 8 / servers 2 decomposes into 2 shards.
        let mut cfg = config(
            workload,
            seed,
            (ThreadingDesign::SyncOs, AccelerationStrategy::OffChip),
            faults,
        );
        cfg.threads = 8;
        let untraced = run_sharded(&ExecPool::new(1), &cfg).expect("valid config");
        let store = TraceStore::eager();
        for width in [1usize, 4] {
            let traced = run_sharded_traced(&ExecPool::new(width), &cfg, Some(&store))
                .expect("valid config");
            prop_assert_eq!(&traced, &untraced, "diverged at width {}", width);
        }
    }
}

/// Installing a trace drawn for a different seed or workload must be a
/// structured error, not silent divergence.
#[test]
fn mismatched_traces_are_rejected() {
    let workload = WorkloadSpec {
        non_kernel_cycles: 4_000.0,
        kernels_per_request: 1,
        granularity: GranularityCdf::from_points(vec![(512.0, 1.0)]).unwrap(),
        cycles_per_byte: cycles_per_byte(2.0),
    };
    let cfg = SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 0.0,
        horizon: 1e6,
        seed: 1,
        workload: workload.clone(),
        offload: None,
        fault: FaultPlan::none(),
        recovery: RecoveryPolicy::none(),
    };
    let wrong_seed = Arc::new(FrozenTrace::draw(2, &workload, 16));
    assert!(Simulator::try_new_with_trace(cfg.clone(), Some(wrong_seed.clone())).is_err());
    let mut sim = Simulator::try_new(cfg.clone()).unwrap();
    assert!(sim.reset_with_trace(cfg.clone(), Some(wrong_seed)).is_err());
    let right = Arc::new(FrozenTrace::for_config(&cfg));
    assert!(sim.reset_with_trace(cfg, Some(right)).is_ok());
}
