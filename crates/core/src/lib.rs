//! # Accelerometer
//!
//! A Rust implementation of the **Accelerometer** analytical model from
//! *"Accelerometer: Understanding Acceleration Opportunities for Data
//! Center Overheads at Hyperscale"* (Sriraman & Dhanotia, ASPLOS 2020).
//!
//! Accelerometer projects the **throughput speedup** and **per-request
//! latency reduction** a microservice gains from offloading a kernel
//! (compression, encryption, memory copy, ML inference, …) to a hardware
//! accelerator, accounting for the offload-induced overheads that prior
//! models (Amdahl, LogCA) miss when the offload is asynchronous:
//!
//! * the threading design used to offload — [`ThreadingDesign::Sync`],
//!   [`ThreadingDesign::SyncOs`] (thread oversubscription), and the
//!   asynchronous variants;
//! * the acceleration strategy — [`AccelerationStrategy::OnChip`],
//!   [`AccelerationStrategy::OffChip`] (PCIe), and
//!   [`AccelerationStrategy::Remote`] (network);
//! * per-offload overheads: setup `o0`, interface latency `L`, queueing
//!   `Q`, and thread-switch cost `o1` (Table 5 of the paper).
//!
//! ## Quick start
//!
//! Reproduce the paper's AES-NI case study (Table 6, row 1):
//!
//! ```
//! use accelerometer::{AccelerationStrategy, ModelParams, Scenario, ThreadingDesign};
//!
//! let params = ModelParams::builder()
//!     .host_cycles(2.0e9)        // C: one second at the host's busy frequency
//!     .kernel_fraction(0.165844) // α: encryption's share of cycles
//!     .offloads(298_951.0)       // n: encryptions per second
//!     .setup_cycles(10.0)        // o0
//!     .interface_cycles(3.0)     // L
//!     .peak_speedup(6.0)         // A
//!     .build()?;
//! let scenario = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip);
//! let est = scenario.estimate();
//! assert!((est.throughput_gain_percent() - 15.7).abs() < 0.1);
//! # Ok::<(), accelerometer::ModelError>(())
//! ```
//!
//! For end-to-end projections from a profiled workload — break-even
//! granularity, lucrative-offload selection, and the model evaluation —
//! see [`project`] and the [`projection`] module. For the validation
//! substrate (discrete-event simulation, synthetic profiling, workload
//! datasets) see the companion crates `accelerometer-sim`,
//! `accelerometer-profiler`, and `accelerometer-fleet`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amdahl;
pub mod bounds;
pub mod breakeven;
pub mod complexity;
pub mod config;
pub mod error;
pub mod exec;
pub mod granularity;
pub mod interface;
pub mod logca;
pub mod model;
pub mod multi;
pub mod params;
pub mod projection;
pub mod queueing;
pub mod slo;
pub mod strategy;
pub mod sweep;
pub mod threading;
pub mod timeline;
pub mod units;

pub use bounds::{diagnose, BoundReport, BoundTerm};
pub use breakeven::{
    latency_breakeven, offload_improves_throughput, offload_reduces_latency,
    throughput_breakeven, BreakEven, OffloadContext,
};
pub use interface::{throughput_breakeven_with_transfer, TransferModel};
pub use slo::LatencySlo;
pub use complexity::{Complexity, KernelCost};
pub use config::{ConfigFile, ScenarioConfig};
pub use error::{ModelError, Result};
pub use granularity::{select_lucrative, GranularityCdf, GranularitySampler, LucrativeSelection};
pub use model::{
    estimate, estimate_with_faults, estimate_with_queue_distribution, net_speedup_condition,
    DriverMode, Estimate, Scenario,
};
pub use multi::{KernelComponent, MultiKernelPlan};
pub use params::{ModelParams, ModelParamsBuilder, OffloadOverheads};
pub use projection::{
    project, project_with_context, project_with_faults, AcceleratorSpec, KernelProfile,
    OffloadPolicy, Projection,
};
pub use strategy::AccelerationStrategy;
pub use threading::ThreadingDesign;
pub use timeline::{Timeline, TimelineSpec};
pub use units::{Bytes, Cycles, CyclesPerByte};
