//! Microservice threading designs for offloading work to an accelerator.
//!
//! The central insight of the Accelerometer paper (§3) is that the speedup
//! achievable from a hardware accelerator depends not only on the device
//! but on *how the microservice threads interact with it*. Prior models
//! (LogCA, LogP) assume the host blocks for the duration of the offload;
//! real microservices frequently overlap useful work with the offload,
//! which changes which overheads land on the throughput-critical path.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How a microservice thread interacts with the accelerator for an offload.
///
/// The variants correspond to the scenarios modeled in §3 of the paper
/// (Figs. 12–14) and validated in §4:
///
/// * [`Sync`](ThreadingDesign::Sync) — one thread per core; the core idles
///   while the accelerator operates (Fig. 12). Used by Cache1 with AES-NI.
/// * [`SyncOs`](ThreadingDesign::SyncOs) — threads are oversubscribed, so
///   the OS switches to another ready thread while the offloading thread
///   blocks; two thread switches (out and back) land on the throughput path
///   (Fig. 13).
/// * [`AsyncSameThread`](ThreadingDesign::AsyncSameThread) — the thread
///   continues working and later picks up the response itself; no thread
///   switch is incurred (Fig. 14).
/// * [`AsyncDistinctThread`](ThreadingDesign::AsyncDistinctThread) — a
///   dedicated response thread picks up completions; one thread switch per
///   offload. Used by Ads1's remote inference (§4, case study 3).
/// * [`AsyncNoResponse`](ThreadingDesign::AsyncNoResponse) — the host never
///   consumes the accelerator's response (e.g. an encryption device that
///   forwards the encrypted RPC directly downstream). Used by Cache3's
///   off-chip encryption (§4, case study 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ThreadingDesign {
    /// Synchronous offload with one thread per core: the core waits.
    Sync,
    /// Synchronous offload with thread oversubscription (`Sync-OS`).
    SyncOs,
    /// Asynchronous offload; the offloading thread picks up the response.
    AsyncSameThread,
    /// Asynchronous offload; a distinct thread picks up the response.
    AsyncDistinctThread,
    /// Asynchronous offload; the host does not consume the response.
    AsyncNoResponse,
}

impl ThreadingDesign {
    /// All threading designs, in the order they appear in the paper.
    pub const ALL: [ThreadingDesign; 5] = [
        ThreadingDesign::Sync,
        ThreadingDesign::SyncOs,
        ThreadingDesign::AsyncSameThread,
        ThreadingDesign::AsyncDistinctThread,
        ThreadingDesign::AsyncNoResponse,
    ];

    /// Number of thread-switch overheads (`o1`) on the **throughput**
    /// (speedup) critical path per offload.
    ///
    /// Sync-OS pays two switches (away from the blocked thread and back);
    /// an async design with a distinct response thread pays one; all other
    /// designs pay none.
    #[must_use]
    pub fn thread_switches_on_throughput_path(self) -> f64 {
        match self {
            ThreadingDesign::Sync
            | ThreadingDesign::AsyncSameThread
            | ThreadingDesign::AsyncNoResponse => 0.0,
            ThreadingDesign::SyncOs => 2.0,
            ThreadingDesign::AsyncDistinctThread => 1.0,
        }
    }

    /// Number of thread-switch overheads (`o1`) on the **per-request
    /// latency** critical path per offload.
    ///
    /// On the latency path, Sync-OS and distinct-thread async both pay a
    /// single switch: the request cannot complete until the response is
    /// picked up by a (re)scheduled thread.
    #[must_use]
    pub fn thread_switches_on_latency_path(self) -> f64 {
        match self {
            ThreadingDesign::Sync
            | ThreadingDesign::AsyncSameThread
            | ThreadingDesign::AsyncNoResponse => 0.0,
            ThreadingDesign::SyncOs | ThreadingDesign::AsyncDistinctThread => 1.0,
        }
    }

    /// Whether the accelerator's own operating time (`αC/A`) sits on the
    /// throughput-critical path.
    ///
    /// Only the plain synchronous design leaves the host core idle while
    /// the accelerator operates; every other design overlaps host work with
    /// accelerator work, removing `αC/A` from `CS`.
    #[must_use]
    pub fn accelerator_time_on_throughput_path(self) -> bool {
        matches!(self, ThreadingDesign::Sync)
    }

    /// Whether the host consumes the accelerator's response at all.
    #[must_use]
    pub fn consumes_response(self) -> bool {
        !matches!(self, ThreadingDesign::AsyncNoResponse)
    }

    /// `true` for the synchronous designs (`Sync`, `Sync-OS`).
    #[must_use]
    pub fn is_synchronous(self) -> bool {
        matches!(self, ThreadingDesign::Sync | ThreadingDesign::SyncOs)
    }
}

impl fmt::Display for ThreadingDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ThreadingDesign::Sync => "Sync",
            ThreadingDesign::SyncOs => "Sync-OS",
            ThreadingDesign::AsyncSameThread => "Async (same thread)",
            ThreadingDesign::AsyncDistinctThread => "Async (distinct thread)",
            ThreadingDesign::AsyncNoResponse => "Async (no response)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_counts_match_paper_equations() {
        // Eqn (3): Sync-OS pays 2*o1 on the throughput path.
        assert_eq!(ThreadingDesign::SyncOs.thread_switches_on_throughput_path(), 2.0);
        // §3 "(2) Asynchronous": distinct response thread pays a single o1.
        assert_eq!(
            ThreadingDesign::AsyncDistinctThread.thread_switches_on_throughput_path(),
            1.0
        );
        // Eqn (6): same-thread async pays no o1.
        assert_eq!(
            ThreadingDesign::AsyncSameThread.thread_switches_on_throughput_path(),
            0.0
        );
        assert_eq!(ThreadingDesign::Sync.thread_switches_on_throughput_path(), 0.0);
        assert_eq!(
            ThreadingDesign::AsyncNoResponse.thread_switches_on_throughput_path(),
            0.0
        );
    }

    #[test]
    fn latency_switch_counts_match_eqn_5() {
        // Eqn (5): Sync-OS latency accounts for a single o1.
        assert_eq!(ThreadingDesign::SyncOs.thread_switches_on_latency_path(), 1.0);
        assert_eq!(
            ThreadingDesign::AsyncDistinctThread.thread_switches_on_latency_path(),
            1.0
        );
        assert_eq!(ThreadingDesign::Sync.thread_switches_on_latency_path(), 0.0);
    }

    #[test]
    fn only_sync_blocks_the_core() {
        for design in ThreadingDesign::ALL {
            assert_eq!(
                design.accelerator_time_on_throughput_path(),
                design == ThreadingDesign::Sync
            );
        }
    }

    #[test]
    fn response_consumption() {
        assert!(ThreadingDesign::Sync.consumes_response());
        assert!(ThreadingDesign::AsyncSameThread.consumes_response());
        assert!(!ThreadingDesign::AsyncNoResponse.consumes_response());
    }

    #[test]
    fn synchronous_classification() {
        assert!(ThreadingDesign::Sync.is_synchronous());
        assert!(ThreadingDesign::SyncOs.is_synchronous());
        assert!(!ThreadingDesign::AsyncSameThread.is_synchronous());
    }

    #[test]
    fn display_names() {
        assert_eq!(ThreadingDesign::SyncOs.to_string(), "Sync-OS");
        assert_eq!(ThreadingDesign::Sync.to_string(), "Sync");
    }

    #[test]
    fn serde_kebab_case() {
        let json = serde_json::to_string(&ThreadingDesign::AsyncDistinctThread).unwrap();
        assert_eq!(json, "\"async-distinct-thread\"");
        let back: ThreadingDesign = serde_json::from_str("\"sync-os\"").unwrap();
        assert_eq!(back, ThreadingDesign::SyncOs);
    }
}
