//! The LogCA prior model (Altaf & Wood, ISCA'17) that Accelerometer
//! extends.
//!
//! LogCA models a *single* offload of granularity `g` to an accelerator,
//! assuming the host blocks for the offload's duration (i.e. every offload
//! is what Accelerometer calls `Sync`). Its five parameters are:
//!
//! * `L` — cycles to move data across the interface (latency),
//! * `o` — host-side setup cycles per offload (overhead),
//! * `g` — offload granularity in bytes,
//! * `C` — the *computational index*: host cycles per byte (×`g^β` for
//!   non-linear kernels), and
//! * `A` — peak accelerator speedup.
//!
//! Accelerometer generalizes LogCA with threading designs and per-window
//! accounting; when the design is `Sync` and exactly one offload covers
//! the whole kernel, the two models agree (tested in the integration
//! suite). Keeping LogCA here gives the benches a faithful prior-work
//! baseline to compare against.

use serde::{Deserialize, Serialize};

use crate::complexity::{Complexity, KernelCost};
use crate::units::{Bytes, Cycles, CyclesPerByte};

/// LogCA model parameters for a single kernel offload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogCa {
    /// `L`: interface latency in cycles (unpipelined: paid per offload).
    pub latency: Cycles,
    /// `o`: host-side per-offload setup cycles.
    pub overhead: Cycles,
    /// `C`: the computational index in host cycles per byte.
    pub computational_index: CyclesPerByte,
    /// `β`: kernel complexity exponent.
    pub complexity: Complexity,
    /// `A`: peak accelerator speedup.
    pub acceleration: f64,
}

impl LogCa {
    /// Unaccelerated host time for a `g`-byte kernel: `C·g^β`.
    #[must_use]
    pub fn unaccelerated_time(&self, g: Bytes) -> Cycles {
        self.kernel_cost().host_cycles(g)
    }

    /// Accelerated time for a `g`-byte kernel:
    /// `o + L + C·g^β / A` (unpipelined offload, blocking host).
    #[must_use]
    pub fn accelerated_time(&self, g: Bytes) -> Cycles {
        self.overhead + self.latency + self.kernel_cost().accelerator_cycles(g, self.acceleration)
    }

    /// Speedup for a single `g`-byte offload:
    /// `C·g^β / (o + L + C·g^β/A)`.
    #[must_use]
    pub fn speedup(&self, g: Bytes) -> f64 {
        self.unaccelerated_time(g) / self.accelerated_time(g)
    }

    /// The break-even granularity `g₁`: the smallest `g` with speedup 1.
    ///
    /// Solves `C·g^β (1 − 1/A) = o + L`. Returns `None` when `A ≤ 1`
    /// (no granularity ever breaks even).
    #[must_use]
    pub fn g1(&self) -> Option<Bytes> {
        if self.acceleration <= 1.0 {
            return None;
        }
        let denom = self.computational_index.get() * (1.0 - 1.0 / self.acceleration);
        let target = (self.overhead + self.latency).get() / denom;
        Some(self.complexity.invert(target))
    }

    /// The half-peak granularity `g_{A/2}`: the smallest `g` achieving
    /// half the peak speedup `A/2`.
    ///
    /// Solves `speedup(g) = A/2`, i.e. `C·g^β/A = o + L` (the kernel's
    /// accelerated time equals its offload overhead). Returns `None` when
    /// `A ≤ 1`.
    #[must_use]
    pub fn g_half(&self) -> Option<Bytes> {
        if self.acceleration <= 1.0 {
            return None;
        }
        let target =
            self.acceleration * (self.overhead + self.latency).get() / self.computational_index.get();
        Some(self.complexity.invert(target))
    }

    /// The asymptotic speedup bound as `g → ∞`, which is simply `A`.
    #[must_use]
    pub fn peak_bound(&self) -> f64 {
        self.acceleration
    }

    /// Samples the speedup curve at the given granularities, as the LogCA
    /// paper plots.
    #[must_use]
    pub fn speedup_curve(&self, granularities: &[f64]) -> Vec<(f64, f64)> {
        granularities
            .iter()
            .map(|&g| (g, self.speedup(Bytes::new(g))))
            .collect()
    }

    fn kernel_cost(&self) -> KernelCost {
        KernelCost {
            cycles_per_byte: self.computational_index,
            complexity: self.complexity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{bytes, cycles, cycles_per_byte};

    fn model() -> LogCa {
        LogCa {
            latency: cycles(2_300.0),
            overhead: cycles(0.0),
            computational_index: cycles_per_byte(5.62),
            complexity: Complexity::LINEAR,
            acceleration: 27.0,
        }
    }

    #[test]
    fn speedup_at_g1_is_one() {
        let m = model();
        let g1 = m.g1().unwrap();
        assert!((m.speedup(g1) - 1.0).abs() < 1e-9);
        // Matches the Accelerometer off-chip Sync compression break-even
        // (425 B) since LogCA ≡ Sync.
        assert!((g1.get() - 425.0).abs() < 1.0);
    }

    #[test]
    fn speedup_at_g_half_is_half_peak() {
        let m = model();
        let gh = m.g_half().unwrap();
        assert!((m.speedup(gh) - m.acceleration / 2.0).abs() < 1e-9);
        assert!(gh > m.g1().unwrap());
    }

    #[test]
    fn speedup_approaches_peak_bound() {
        let m = model();
        let s = m.speedup(bytes(1e12));
        assert!(s < m.peak_bound());
        assert!(s > 0.999 * m.peak_bound());
    }

    #[test]
    fn no_breakeven_without_acceleration() {
        let mut m = model();
        m.acceleration = 1.0;
        assert!(m.g1().is_none());
        assert!(m.g_half().is_none());
        // Every offload is a pure loss.
        assert!(m.speedup(bytes(1e9)) < 1.0);
    }

    #[test]
    fn curve_is_monotonic_for_linear_kernels() {
        let m = model();
        let gs: Vec<f64> = (1..=20).map(|i| 2f64.powi(i)).collect();
        let curve = m.speedup_curve(&gs);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "speedup dipped at g={}", w[1].0);
        }
    }

    #[test]
    fn accelerated_time_components() {
        let m = model();
        let g = bytes(1_000.0);
        let t = m.accelerated_time(g).get();
        assert!((t - (2_300.0 + 5.62 * 1_000.0 / 27.0)).abs() < 1e-9);
        assert!((m.unaccelerated_time(g).get() - 5_620.0).abs() < 1e-9);
    }
}
