//! Per-offload profitability tests and break-even granularities
//! (eqns 2, 4, 7 and their latency counterparts).
//!
//! Not every offload is worth dispatching: for very small granularities
//! the dispatch overheads dominate the cycles saved. The paper assumes
//! software can *selectively* offload only the lucrative granularities
//! (§4, validation methodology), so determining the break-even `g` is the
//! first step of every case study and every Fig. 20 projection — e.g.
//! off-chip synchronous compression for Feed1 only pays off at
//! `g ≥ 425 B`.

use serde::{Deserialize, Serialize};

use crate::complexity::KernelCost;
use crate::model::{
    accelerator_time_in_latency, latency_overhead_per_offload_raw,
    throughput_overhead_per_offload_raw, DriverMode,
};
use crate::params::OffloadOverheads;
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;
use crate::units::Bytes;

/// The minimum lucrative offload granularity, or the reason none exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BreakEven {
    /// Offloads of at least this many bytes are profitable.
    AtLeast(Bytes),
    /// Every offload is profitable (zero effective overhead and `A > 1`).
    Always,
    /// No granularity is profitable (e.g. `A = 1` with the accelerator on
    /// the critical path: the offload can never recoup its overheads).
    Never,
}

impl BreakEven {
    /// Whether an offload of `g` bytes clears this break-even point.
    #[must_use]
    pub fn is_lucrative(&self, g: Bytes) -> bool {
        match *self {
            BreakEven::AtLeast(min) => g > min,
            BreakEven::Always => g.get() > 0.0,
            BreakEven::Never => false,
        }
    }

    /// The threshold in bytes, if one exists. [`BreakEven::Always`] maps
    /// to zero bytes; [`BreakEven::Never`] maps to `None`.
    #[must_use]
    pub fn threshold(&self) -> Option<Bytes> {
        match *self {
            BreakEven::AtLeast(min) => Some(min),
            BreakEven::Always => Some(Bytes::ZERO),
            BreakEven::Never => None,
        }
    }
}

/// The hardware/threading context for a profitability test: everything
/// except the kernel's own cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadContext {
    /// Per-offload overhead cycles (`o0`, `L`, `Q`, `o1`).
    pub overheads: OffloadOverheads,
    /// `A`: the accelerator's peak speedup.
    pub peak_speedup: f64,
    /// Threading design used to offload.
    pub design: ThreadingDesign,
    /// Acceleration strategy (on-chip, off-chip, remote).
    pub strategy: AccelerationStrategy,
    /// Device-driver acknowledgement behaviour.
    pub driver: DriverMode,
}

impl OffloadContext {
    /// Creates a context with the driver mode defaulted from the strategy.
    #[must_use]
    pub fn new(
        overheads: OffloadOverheads,
        peak_speedup: f64,
        design: ThreadingDesign,
        strategy: AccelerationStrategy,
    ) -> Self {
        let driver = if strategy.driver_awaits_ack_by_default() {
            DriverMode::AwaitsAck
        } else {
            DriverMode::Posted
        };
        Self {
            overheads,
            peak_speedup,
            design,
            strategy,
            driver,
        }
    }
}

/// Solves `Cb·g^β > keep·Cb·g^β/A + overhead` for `g`, where `keep` is 1
/// if the accelerator's time is on the relevant critical path and 0
/// otherwise.
fn solve(
    cost: &KernelCost,
    overhead_cycles: f64,
    accelerator_on_path: bool,
    peak_speedup: f64,
) -> BreakEven {
    // Cycles saved per unit of g^β.
    let saved_per_scale = if accelerator_on_path {
        cost.cycles_per_byte.get() * (1.0 - 1.0 / peak_speedup)
    } else {
        cost.cycles_per_byte.get()
    };
    if saved_per_scale <= 0.0 {
        // A = 1 with the accelerator on the critical path: offloading can
        // never save cycles, so no overhead however small is recoverable.
        return BreakEven::Never;
    }
    if overhead_cycles <= 0.0 {
        return BreakEven::Always;
    }
    BreakEven::AtLeast(cost.complexity.invert(overhead_cycles / saved_per_scale))
}

/// Minimum granularity at which a single offload improves **throughput**.
///
/// Implements eqn (2) for Sync (`Cb·g > Cb·g/A + o0 + L + Q`), eqn (4) for
/// Sync-OS (`Cb·g > o0 + L + Q + 2·o1`), and eqn (7) for Async
/// (`Cb·g > o0 + L + Q`), generalized to `g^β` kernels and to the
/// strategy/driver rules governing which overheads stay on the throughput
/// path.
///
/// # Examples
///
/// Feed1's off-chip synchronous compression breaks even at 425 B (§5):
///
/// ```
/// use accelerometer::{
///     throughput_breakeven, AccelerationStrategy, BreakEven, KernelCost, OffloadContext,
///     OffloadOverheads, ThreadingDesign,
/// };
/// use accelerometer::units::cycles_per_byte;
///
/// let ctx = OffloadContext::new(
///     OffloadOverheads::new(0.0, 2_300.0, 0.0, 0.0),
///     27.0,
///     ThreadingDesign::Sync,
///     AccelerationStrategy::OffChip,
/// );
/// let cost = KernelCost::linear(cycles_per_byte(5.62));
/// let BreakEven::AtLeast(g) = throughput_breakeven(&cost, &ctx) else {
///     panic!("expected a finite break-even");
/// };
/// assert!((g.get() - 425.0).abs() < 1.0);
/// ```
#[must_use]
pub fn throughput_breakeven(cost: &KernelCost, ctx: &OffloadContext) -> BreakEven {
    let overhead =
        throughput_overhead_per_offload_raw(ctx.overheads, ctx.design, ctx.strategy, ctx.driver);
    solve(
        cost,
        overhead.get(),
        ctx.design.accelerator_time_on_throughput_path(),
        ctx.peak_speedup,
    )
}

/// Minimum granularity at which a single offload reduces **per-request
/// latency**.
///
/// Implements the latency-side conditions of §3: e.g. for Sync-OS,
/// `Cb·g > Cb·g/A + (o0 + L + Q + o1)`.
#[must_use]
pub fn latency_breakeven(cost: &KernelCost, ctx: &OffloadContext) -> BreakEven {
    let overhead = latency_overhead_per_offload_raw(ctx.overheads, ctx.design);
    solve(
        cost,
        overhead.get(),
        accelerator_time_in_latency(ctx.design, ctx.strategy),
        ctx.peak_speedup,
    )
}

/// Whether a single offload of `g` bytes improves throughput.
#[must_use]
pub fn offload_improves_throughput(cost: &KernelCost, ctx: &OffloadContext, g: Bytes) -> bool {
    throughput_breakeven(cost, ctx).is_lucrative(g)
}

/// Whether a single offload of `g` bytes reduces per-request latency.
#[must_use]
pub fn offload_reduces_latency(cost: &KernelCost, ctx: &OffloadContext, g: Bytes) -> bool {
    latency_breakeven(cost, ctx).is_lucrative(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{bytes, cycles_per_byte};

    fn linear(cb: f64) -> KernelCost {
        KernelCost::linear(cycles_per_byte(cb))
    }

    /// §4 case study 1: AES-NI breaks even at g ≥ 1 B.
    #[test]
    fn aes_ni_breaks_even_at_one_byte() {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(10.0, 3.0, 0.0, 0.0),
            6.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
        );
        // OpenSSL AES software encryption costs ~20 cycles/byte.
        let cost = linear(20.0);
        let be = throughput_breakeven(&cost, &ctx);
        let g = be.threshold().expect("finite break-even");
        assert!(g.get() <= 1.0, "break-even {g} should be <= 1 B");
        assert!(be.is_lucrative(bytes(4.0)));
    }

    /// §5 compression: off-chip Sync breaks even at 425 B with
    /// Cb = 5.62 cycles/B, L = 2300, A = 27.
    #[test]
    fn feed1_off_chip_sync_compression_425_bytes() {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 2_300.0, 0.0, 0.0),
            27.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let be = throughput_breakeven(&linear(5.62), &ctx);
        let g = be.threshold().unwrap();
        assert!((g.get() - 425.0).abs() < 1.0, "break-even {g}");
    }

    /// §5 compression Sync-OS: threshold rises to ≈2455 B because two
    /// thread switches (2 × 5750) join the overhead — eqn (4).
    #[test]
    fn feed1_off_chip_sync_os_compression() {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 2_300.0, 0.0, 5_750.0),
            27.0,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::OffChip,
        );
        let be = throughput_breakeven(&linear(5.62), &ctx);
        let g = be.threshold().unwrap();
        let expected = (2_300.0 + 2.0 * 5_750.0) / 5.62;
        assert!((g.get() - expected).abs() < 1.0, "break-even {g}");
    }

    /// §5 compression Async: eqn (7), threshold ≈409 B (overhead only,
    /// no accelerator term).
    #[test]
    fn feed1_off_chip_async_compression() {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 2_300.0, 0.0, 0.0),
            27.0,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
        );
        let be = throughput_breakeven(&linear(5.62), &ctx);
        let g = be.threshold().unwrap();
        assert!((g.get() - 2_300.0 / 5.62).abs() < 0.5, "break-even {g}");
    }

    #[test]
    fn zero_overhead_is_always_lucrative() {
        let ctx = OffloadContext::new(
            OffloadOverheads::NONE,
            4.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
        );
        let be = throughput_breakeven(&linear(1.0), &ctx);
        assert_eq!(be, BreakEven::Always);
        assert!(be.is_lucrative(bytes(1.0)));
        assert!(!be.is_lucrative(bytes(0.0)));
        assert_eq!(be.threshold(), Some(Bytes::ZERO));
    }

    #[test]
    fn unit_speedup_sync_is_never_lucrative() {
        // A remote general-purpose CPU (A = 1) contacted synchronously can
        // never improve throughput: the host waits just as long and pays
        // overheads on top.
        let ctx = OffloadContext::new(
            OffloadOverheads::new(100.0, 0.0, 0.0, 0.0),
            1.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::Remote,
        );
        let be = throughput_breakeven(&linear(5.0), &ctx);
        assert_eq!(be, BreakEven::Never);
        assert!(!be.is_lucrative(bytes(1e12)));
        assert_eq!(be.threshold(), None);
    }

    #[test]
    fn unit_speedup_async_can_still_be_lucrative() {
        // Case study 3: offloading to a remote CPU with A = 1 still frees
        // host cycles because the offload is asynchronous.
        let ctx = OffloadContext::new(
            OffloadOverheads::new(100.0, 0.0, 0.0, 0.0),
            1.0,
            ThreadingDesign::AsyncDistinctThread,
            AccelerationStrategy::Remote,
        );
        let be = throughput_breakeven(&linear(5.0), &ctx);
        let g = be.threshold().unwrap();
        // Cb·g > o0 + o1 (= 100 + 0) → g > 20.
        assert!((g.get() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn latency_breakeven_exceeds_throughput_breakeven_for_sync_os() {
        // Latency pays the accelerator time and the transfer; throughput
        // with a posted driver does not.
        let ctx = OffloadContext {
            overheads: OffloadOverheads::new(0.0, 2_300.0, 0.0, 5_750.0),
            peak_speedup: 27.0,
            design: ThreadingDesign::SyncOs,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::Posted,
        };
        let cost = linear(5.62);
        let tp = throughput_breakeven(&cost, &ctx).threshold().unwrap();
        let lat = latency_breakeven(&cost, &ctx).threshold().unwrap();
        // Throughput (posted): (o0 + 2·o1)/Cb = 11_500/5.62 ≈ 2046.
        assert!((tp.get() - 11_500.0 / 5.62).abs() < 1.0);
        // Latency: Cb·g(1-1/27) > 2_300 + 5_750 → g ≈ 1487.8.
        let expected_lat = (2_300.0 + 5_750.0) / (5.62 * (1.0 - 1.0 / 27.0));
        assert!((lat.get() - expected_lat).abs() < 1.0);
    }

    #[test]
    fn predicate_helpers_agree_with_breakeven() {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 2_300.0, 0.0, 0.0),
            27.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let cost = linear(5.62);
        assert!(!offload_improves_throughput(&cost, &ctx, bytes(100.0)));
        assert!(offload_improves_throughput(&cost, &ctx, bytes(1_000.0)));
        assert!(offload_reduces_latency(&cost, &ctx, bytes(1_000.0)));
    }

    #[test]
    fn super_linear_kernels_break_even_sooner() {
        use crate::complexity::Complexity;
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 10_000.0, 0.0, 0.0),
            8.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let lin = linear(2.0);
        let sup = KernelCost {
            cycles_per_byte: cycles_per_byte(2.0),
            complexity: Complexity::new(1.5).unwrap(),
        };
        let g_lin = throughput_breakeven(&lin, &ctx).threshold().unwrap();
        let g_sup = throughput_breakeven(&sup, &ctx).threshold().unwrap();
        assert!(g_sup < g_lin, "super-linear {g_sup} vs linear {g_lin}");
    }
}
