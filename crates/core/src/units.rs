//! Strongly-typed scalar quantities used throughout the model.
//!
//! The Accelerometer model manipulates three physical dimensions: CPU
//! **cycles**, offload **bytes**, and the host's per-byte cost in
//! **cycles per byte** (`Cb` in Table 5 of the paper). Mixing these up is
//! the classic source of silent modeling bugs, so each gets a newtype with
//! only the dimensionally-valid arithmetic implemented:
//!
//! * `CyclesPerByte * Bytes -> Cycles`
//! * `Cycles / Bytes -> CyclesPerByte`
//! * `Cycles / CyclesPerByte -> Bytes`
//!
//! All quantities are `f64` internally: the model works with averages and
//! rates (e.g. 2.3e9 cycles per second, 0.55 cycles per byte), not discrete
//! counts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// A zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw `f64` value.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is finite and non-negative.
            #[must_use]
            pub fn is_valid_magnitude(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// A quantity of CPU cycles.
    ///
    /// The model's `C`, `o0`, `L`, `Q`, and `o1` parameters (Table 5) are
    /// all cycle quantities. `C` is typically the host's busy-frequency
    /// cycles over a one-second accounting window (e.g. `2.3e9`).
    Cycles,
    "cycles"
);

quantity!(
    /// A quantity of bytes; the model's offload granularity `g`.
    Bytes,
    "B"
);

quantity!(
    /// Host cycles spent per byte of offload data (`Cb` in Table 5).
    CyclesPerByte,
    "cycles/B"
);

impl Mul<Bytes> for CyclesPerByte {
    type Output = Cycles;
    fn mul(self, rhs: Bytes) -> Cycles {
        Cycles::new(self.get() * rhs.get())
    }
}

impl Mul<CyclesPerByte> for Bytes {
    type Output = Cycles;
    fn mul(self, rhs: CyclesPerByte) -> Cycles {
        rhs * self
    }
}

impl Div<Bytes> for Cycles {
    type Output = CyclesPerByte;
    fn div(self, rhs: Bytes) -> CyclesPerByte {
        CyclesPerByte::new(self.get() / rhs.get())
    }
}

impl Div<CyclesPerByte> for Cycles {
    type Output = Bytes;
    fn div(self, rhs: CyclesPerByte) -> Bytes {
        Bytes::new(self.get() / rhs.get())
    }
}

/// Convenience constructor: `cycles(2.3e9)`.
#[must_use]
pub fn cycles(value: f64) -> Cycles {
    Cycles::new(value)
}

/// Convenience constructor: `bytes(425.0)`.
#[must_use]
pub fn bytes(value: f64) -> Bytes {
    Bytes::new(value)
}

/// Convenience constructor: `cycles_per_byte(0.55)`.
#[must_use]
pub fn cycles_per_byte(value: f64) -> CyclesPerByte {
    CyclesPerByte::new(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_products() {
        let cb = cycles_per_byte(2.0);
        let g = bytes(100.0);
        assert_eq!((cb * g).get(), 200.0);
        assert_eq!((g * cb).get(), 200.0);
    }

    #[test]
    fn dimensional_quotients() {
        let c = cycles(200.0);
        assert_eq!((c / bytes(100.0)).get(), 2.0);
        assert_eq!((c / cycles_per_byte(2.0)).get(), 100.0);
    }

    #[test]
    fn like_quantity_ratio_is_dimensionless() {
        let ratio: f64 = cycles(10.0) / cycles(4.0);
        assert_eq!(ratio, 2.5);
    }

    #[test]
    fn arithmetic_and_accessors() {
        let mut c = cycles(5.0);
        c += cycles(1.0);
        c -= cycles(2.0);
        assert_eq!(c.get(), 4.0);
        assert_eq!((c * 2.0).get(), 8.0);
        assert_eq!((2.0 * c).get(), 8.0);
        assert_eq!((c / 4.0).get(), 1.0);
        assert_eq!((-c).get(), -4.0);
        assert_eq!(Cycles::ZERO.get(), 0.0);
    }

    #[test]
    fn min_max_and_validity() {
        assert_eq!(cycles(3.0).min(cycles(5.0)).get(), 3.0);
        assert_eq!(cycles(3.0).max(cycles(5.0)).get(), 5.0);
        assert!(cycles(1.0).is_valid_magnitude());
        assert!(!cycles(-1.0).is_valid_magnitude());
        assert!(!cycles(f64::NAN).is_valid_magnitude());
        assert!(!cycles(f64::INFINITY).is_valid_magnitude());
    }

    #[test]
    fn sum_of_quantities() {
        let total: Cycles = [cycles(1.0), cycles(2.0), cycles(3.0)].into_iter().sum();
        assert_eq!(total.get(), 6.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(cycles(2.0).to_string(), "2 cycles");
        assert_eq!(bytes(3.0).to_string(), "3 B");
        assert_eq!(cycles_per_byte(0.5).to_string(), "0.5 cycles/B");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let json = serde_json::to_string(&cycles(2.5)).unwrap();
        assert_eq!(json, "2.5");
        let back: Cycles = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cycles(2.5));
    }
}
