//! Hardware acceleration strategies: on-chip, off-chip, and remote.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Cycles;

/// Where the accelerator sits relative to the host CPU (§3, "Acceleration
/// strategies").
///
/// The strategy determines the *scale* of the interface latency `L` and
/// which overheads reach the host's critical path:
///
/// * [`OnChip`](AccelerationStrategy::OnChip) — on-die optimizations such
///   as AES-NI or wider SIMD; offload latency is ns-scale and usually
///   negligible.
/// * [`OffChip`](AccelerationStrategy::OffChip) — devices reached over
///   PCIe or a coherent interconnect (GPUs, smart NICs, ASICs); offload
///   latency is µs-scale.
/// * [`Remote`](AccelerationStrategy::Remote) — off-platform devices
///   reached over the network (remote inference CPUs, in-network
///   accelerators); offload latency is ms-scale on commodity ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum AccelerationStrategy {
    /// Acceleration integrated into the CPU die (e.g. AES-NI, SIMD).
    OnChip,
    /// Accelerator reached via PCIe or a coherent interconnect.
    OffChip,
    /// Accelerator reached via the datacenter network.
    Remote,
}

impl AccelerationStrategy {
    /// All strategies in paper order.
    pub const ALL: [AccelerationStrategy; 3] = [
        AccelerationStrategy::OnChip,
        AccelerationStrategy::OffChip,
        AccelerationStrategy::Remote,
    ];

    /// Typical one-way interface latency for the strategy, expressed in
    /// host cycles assuming a 2 GHz host clock.
    ///
    /// These are order-of-magnitude defaults from §3 (ns-scale on-chip,
    /// µs-scale over PCIe, ms-scale over commodity ethernet); real designs
    /// should measure `L` as the paper does (device specification sheets or
    /// micro-benchmarks).
    #[must_use]
    pub fn typical_interface_latency(self) -> Cycles {
        match self {
            // A few nanoseconds.
            AccelerationStrategy::OnChip => Cycles::new(10.0),
            // ~1 µs PCIe round trip (Neugebauer et al. [91]).
            AccelerationStrategy::OffChip => Cycles::new(2_000.0),
            // ~1 ms network round trip (Rasley et al. [102]).
            AccelerationStrategy::Remote => Cycles::new(2_000_000.0),
        }
    }

    /// Whether the interface/queueing overhead (`L + Q`) reaches the
    /// host's throughput path under a Sync-OS design.
    ///
    /// §3 (eqn 3 discussion): `(L + Q)` persists when the host's device
    /// driver synchronously awaits an offload acknowledgement from an
    /// *off-chip* accelerator before switching threads, but `(L + Q) = 0`
    /// when the accelerator is remote (the network stack is asynchronous).
    /// For on-chip optimizations there is no device driver at all.
    #[must_use]
    pub fn driver_awaits_ack_by_default(self) -> bool {
        matches!(self, AccelerationStrategy::OffChip)
    }

    /// Whether the accelerator's operating time can appear in the
    /// *microservice's* per-request latency.
    ///
    /// §3 (Async no-response discussion): a remote accelerator's operation
    /// happens after the RPC has left the microservice, so it shows up in
    /// the end-to-end application latency rather than this microservice's
    /// request latency.
    #[must_use]
    pub fn accelerator_time_in_request_latency(self) -> bool {
        !matches!(self, AccelerationStrategy::Remote)
    }
}

impl fmt::Display for AccelerationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccelerationStrategy::OnChip => "on-chip",
            AccelerationStrategy::OffChip => "off-chip",
            AccelerationStrategy::Remote => "remote",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_are_ordered() {
        let on = AccelerationStrategy::OnChip.typical_interface_latency();
        let off = AccelerationStrategy::OffChip.typical_interface_latency();
        let remote = AccelerationStrategy::Remote.typical_interface_latency();
        assert!(on < off);
        assert!(off < remote);
    }

    #[test]
    fn only_off_chip_driver_waits() {
        assert!(!AccelerationStrategy::OnChip.driver_awaits_ack_by_default());
        assert!(AccelerationStrategy::OffChip.driver_awaits_ack_by_default());
        assert!(!AccelerationStrategy::Remote.driver_awaits_ack_by_default());
    }

    #[test]
    fn remote_latency_leaves_request_path() {
        assert!(AccelerationStrategy::OnChip.accelerator_time_in_request_latency());
        assert!(AccelerationStrategy::OffChip.accelerator_time_in_request_latency());
        assert!(!AccelerationStrategy::Remote.accelerator_time_in_request_latency());
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(AccelerationStrategy::OnChip.to_string(), "on-chip");
        let json = serde_json::to_string(&AccelerationStrategy::OffChip).unwrap();
        assert_eq!(json, "\"off-chip\"");
        let back: AccelerationStrategy = serde_json::from_str("\"remote\"").unwrap();
        assert_eq!(back, AccelerationStrategy::Remote);
    }
}
