//! Amdahl's-law baseline: speedup with no offload overheads.
//!
//! Accelerometer's equations reduce to Amdahl's law when every offload
//! overhead is zero; the paper's Fig. 20 "Ideal" bars are exactly the
//! `A → ∞` limit. This module provides that baseline plus the standard
//! inversions, both as a sanity anchor for the full model and as the
//! comparison point for the "performance bounds from accelerator offload
//! limit achievable speedup" result.

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};

/// Amdahl's-law speedup for accelerating a fraction `alpha` of execution
/// by a factor `a`: `1 / ((1 − α) + α/A)`.
///
/// `a` may be `f64::INFINITY`, yielding the ideal speedup `1 / (1 − α)`.
///
/// # Examples
///
/// Feed1 spends 15% of cycles compressing, so ideal compression
/// acceleration yields 17.6% (§5):
///
/// ```
/// let s = accelerometer::amdahl::speedup(0.15, f64::INFINITY);
/// assert!((s - 1.176).abs() < 0.001);
/// ```
#[must_use]
pub fn speedup(alpha: f64, a: f64) -> f64 {
    1.0 / ((1.0 - alpha) + alpha / a)
}

/// The ideal (infinite-accelerator) speedup `1 / (1 − α)`.
#[must_use]
pub fn ideal_speedup(alpha: f64) -> f64 {
    1.0 / (1.0 - alpha)
}

/// Inverts Amdahl's law: the accelerated fraction required to achieve
/// `target` speedup with acceleration factor `a`.
///
/// # Errors
///
/// Returns [`crate::ModelError::InvalidParameter`] if `target < 1`, if
/// `a <= 1`, or if the target exceeds the asymptotic limit `a` (no
/// fraction suffices).
pub fn required_fraction(target: f64, a: f64) -> Result<f64> {
    ensure(target >= 1.0, "target", target, "speedup target must be >= 1")?;
    ensure(a > 1.0, "A", a, "acceleration factor must exceed 1")?;
    // 1/((1-α) + α/A) = S  →  α = (1 − 1/S) / (1 − 1/A).
    let alpha = (1.0 - 1.0 / target) / (1.0 - 1.0 / a);
    ensure(
        alpha <= 1.0,
        "target",
        target,
        "speedup target exceeds the acceleration factor's asymptote",
    )?;
    Ok(alpha)
}

/// Inverts Amdahl's law for `A`: the acceleration factor required to reach
/// `target` speedup on a fraction `alpha`.
///
/// # Errors
///
/// Returns [`crate::ModelError::InvalidParameter`] if `target < 1`,
/// `alpha` is outside `(0, 1]`, or the target exceeds the ideal speedup
/// `1/(1−α)`.
pub fn required_acceleration(target: f64, alpha: f64) -> Result<f64> {
    ensure(target >= 1.0, "target", target, "speedup target must be >= 1")?;
    ensure(
        alpha > 0.0 && alpha <= 1.0,
        "alpha",
        alpha,
        "must satisfy 0 < alpha <= 1",
    )?;
    ensure(
        target < ideal_speedup(alpha) || (alpha == 1.0),
        "target",
        target,
        "speedup target exceeds the ideal speedup 1/(1-alpha)",
    )?;
    // α/A = 1/S − (1 − α)  →  A = α / (1/S − 1 + α).
    Ok(alpha / (1.0 / target - 1.0 + alpha))
}

/// The maximum fleet-wide throughput gain from eliminating a functionality
/// entirely, as the paper uses for its "even infinite inference
/// acceleration only yields 1.49×–2.38×" observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealGain {
    /// The fraction of cycles the functionality consumes.
    pub fraction: f64,
    /// The resulting ideal speedup `1 / (1 − fraction)`.
    pub speedup: f64,
}

impl IdealGain {
    /// Computes the ideal gain for a cycle fraction.
    #[must_use]
    pub fn for_fraction(fraction: f64) -> Self {
        Self {
            fraction,
            speedup: ideal_speedup(fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_matches_infinite_a() {
        for alpha in [0.1, 0.33, 0.58, 0.9] {
            assert!((speedup(alpha, f64::INFINITY) - ideal_speedup(alpha)).abs() < 1e-12);
        }
    }

    /// §2.4: inference fractions of 33% and 58% bound the net gain from
    /// infinite inference acceleration to 1.49×–2.38×.
    #[test]
    fn inference_bounds_from_paper() {
        assert!((ideal_speedup(0.33) - 1.49).abs() < 0.005);
        assert!((ideal_speedup(0.58) - 2.38).abs() < 0.005);
    }

    /// §1: "an important ML microservice can speed up by only 49% even if
    /// its ML inference takes no time."
    #[test]
    fn ml_service_49_percent() {
        let gain = IdealGain::for_fraction(0.33);
        assert!((gain.speedup - 1.49).abs() < 0.005);
        assert_eq!(gain.fraction, 0.33);
    }

    #[test]
    fn no_acceleration_is_identity() {
        assert!((speedup(0.5, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_fraction_inverts_speedup() {
        let alpha = required_fraction(1.2, 4.0).unwrap();
        assert!((speedup(alpha, 4.0) - 1.2).abs() < 1e-12);
        assert!(required_fraction(0.9, 4.0).is_err());
        assert!(required_fraction(1.2, 1.0).is_err());
        // A 4× accelerator cannot deliver 5× no matter the fraction.
        assert!(required_fraction(5.0, 4.0).is_err());
    }

    #[test]
    fn required_acceleration_inverts_speedup() {
        let a = required_acceleration(1.1, 0.15).unwrap();
        assert!((speedup(0.15, a) - 1.1).abs() < 1e-12);
        // Target beyond the ideal limit is impossible.
        assert!(required_acceleration(1.2, 0.15).is_err());
        assert!(required_acceleration(0.5, 0.15).is_err());
        assert!(required_acceleration(1.1, 0.0).is_err());
    }

    #[test]
    fn full_fraction_gives_a() {
        let a = required_acceleration(3.0, 1.0).unwrap();
        assert!((a - 3.0).abs() < 1e-12);
    }
}
