//! Error types for model construction and evaluation.

use std::fmt;

/// Errors produced when building or evaluating an Accelerometer model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (paper notation, e.g. `alpha`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A granularity distribution was constructed from no data points.
    EmptyDistribution,
    /// A granularity distribution was not monotonically non-decreasing.
    NonMonotonicCdf {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// A configuration file could not be parsed.
    Config(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            ModelError::EmptyDistribution => {
                write!(f, "granularity distribution has no data points")
            }
            ModelError::NonMonotonicCdf { index } => {
                write!(f, "cdf is not monotonically non-decreasing at breakpoint {index}")
            }
            ModelError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenient result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

pub(crate) fn ensure(
    condition: bool,
    name: &'static str,
    value: f64,
    reason: &'static str,
) -> Result<()> {
    if condition {
        Ok(())
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let err = ModelError::InvalidParameter {
            name: "alpha",
            value: 1.5,
            reason: "must satisfy 0 < alpha <= 1",
        };
        let msg = err.to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains("1.5"));

        assert!(ModelError::EmptyDistribution.to_string().contains("no data"));
        assert!(ModelError::NonMonotonicCdf { index: 3 }.to_string().contains('3'));
        assert!(ModelError::Config("bad json".into()).to_string().contains("bad json"));
    }

    #[test]
    fn ensure_accepts_and_rejects() {
        assert!(ensure(true, "x", 0.0, "ok").is_ok());
        let err = ensure(false, "x", 2.0, "must be small").unwrap_err();
        assert_eq!(
            err,
            ModelError::InvalidParameter {
                name: "x",
                value: 2.0,
                reason: "must be small"
            }
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_error(ModelError::EmptyDistribution);
    }
}
