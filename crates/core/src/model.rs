//! The Accelerometer speedup and latency-reduction equations (§3).
//!
//! The model projects two quantities for a kernel offloaded to an
//! accelerator:
//!
//! * **throughput speedup** `C/CS` — the ratio of host cycles consumed per
//!   accounting window without acceleration to host cycles consumed with
//!   acceleration. Freeing host cycles lets the service absorb more QPS.
//! * **latency reduction** `C/CL` — the ratio of unaccelerated cycles to
//!   the total cycles on the *request's* critical path (host plus
//!   accelerator plus offload overheads). This guards the latency SLO.
//!
//! Which overheads land in `CS` versus `CL` depends on the
//! [`ThreadingDesign`] and [`AccelerationStrategy`]; the mapping below
//! implements equations (1)–(8) of the paper exactly.
//!
//! | Paper eqn | Quantity | Scenario |
//! |---|---|---|
//! | (1) | speedup & latency | Sync |
//! | (3) | speedup | Sync-OS (2·`o1`) and Async-distinct-thread (1·`o1`) |
//! | (5) | latency | Sync-OS and Async-distinct-thread (1·`o1`) |
//! | (6) | speedup | Async same-thread / no-response; also latency for remote no-response |
//! | (8) | latency | Async same-thread; off-chip no-response |

use serde::{Deserialize, Serialize};

use crate::params::ModelParams;
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;
use crate::units::Cycles;

/// Whether the host's device driver synchronously awaits an offload
/// acknowledgement from an off-chip accelerator before switching threads
/// (§3, Sync-OS discussion).
///
/// With [`DriverMode::AwaitsAck`], the `(L + Q)` overhead stays on the
/// Sync-OS throughput path; with [`DriverMode::Posted`] the driver fires
/// and switches immediately, so `(L + Q)` vanishes from that path. The
/// driver mode never affects the latency path: the request cannot complete
/// before its data has crossed the interface.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DriverMode {
    /// The driver blocks until the accelerator acknowledges receipt.
    #[default]
    AwaitsAck,
    /// The driver posts the offload and returns immediately.
    Posted,
}

/// A fully-specified acceleration scenario: parameters plus the threading
/// design, strategy, and driver behaviour that determine which overheads
/// reach each critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Table 5 parameters for the kernel under study.
    pub params: ModelParams,
    /// How microservice threads interact with the accelerator.
    pub design: ThreadingDesign,
    /// Where the accelerator sits (on-chip, off-chip, remote).
    pub strategy: AccelerationStrategy,
    /// Device-driver acknowledgement behaviour (Sync-OS only).
    pub driver: DriverMode,
}

impl Scenario {
    /// Creates a scenario with the driver mode defaulted from the strategy
    /// (off-chip drivers await acknowledgements; on-chip and remote do
    /// not).
    #[must_use]
    pub fn new(
        params: ModelParams,
        design: ThreadingDesign,
        strategy: AccelerationStrategy,
    ) -> Self {
        let driver = if strategy.driver_awaits_ack_by_default() {
            DriverMode::AwaitsAck
        } else {
            DriverMode::Posted
        };
        Self {
            params,
            design,
            strategy,
            driver,
        }
    }

    /// Overrides the driver mode.
    #[must_use]
    pub fn with_driver(mut self, driver: DriverMode) -> Self {
        self.driver = driver;
        self
    }

    /// Evaluates the model for this scenario.
    #[must_use]
    pub fn estimate(&self) -> Estimate {
        estimate(&self.params, self.design, self.strategy, self.driver)
    }
}

/// The model's output for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Throughput speedup `C/CS` (e.g. `1.157` means +15.7% throughput).
    pub throughput_speedup: f64,
    /// Per-request latency reduction `C/CL`.
    pub latency_reduction: f64,
    /// `CS`: host cycles consumed per window with acceleration.
    pub host_cycles_accelerated: Cycles,
    /// `CL`: total cycles on the request critical path with acceleration.
    pub request_path_cycles: Cycles,
}

impl Estimate {
    /// Throughput speedup expressed as a percentage gain
    /// (`15.7` for a `1.157×` speedup), matching how the paper reports
    /// Table 6 and Fig. 20.
    #[must_use]
    pub fn throughput_gain_percent(&self) -> f64 {
        (self.throughput_speedup - 1.0) * 100.0
    }

    /// Latency reduction expressed as a percentage gain.
    #[must_use]
    pub fn latency_gain_percent(&self) -> f64 {
        (self.latency_reduction - 1.0) * 100.0
    }

    /// Whether acceleration improves throughput at all (net speedup > 1).
    #[must_use]
    pub fn improves_throughput(&self) -> bool {
        self.throughput_speedup > 1.0
    }

    /// Whether acceleration reduces per-request latency at all.
    #[must_use]
    pub fn reduces_latency(&self) -> bool {
        self.latency_reduction > 1.0
    }

    /// Fraction of host cycles freed per window, `1 − CS/C`.
    ///
    /// E.g. the AES-NI case study frees 12.8% of Cache1's cycles.
    #[must_use]
    pub fn freed_cycle_fraction(&self, params: &ModelParams) -> f64 {
        1.0 - self.host_cycles_accelerated / params.host_cycles()
    }
}

/// Per-offload overhead cycles charged to the throughput path for one
/// offload under the given design/strategy/driver combination.
pub(crate) fn throughput_overhead_per_offload_raw(
    ovh: crate::params::OffloadOverheads,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> Cycles {
    let transfer = ovh.interface + ovh.queueing;
    let transfer_on_path = match design {
        // The blocked core pays the full round trip.
        ThreadingDesign::Sync => transfer,
        // §3: (L+Q) persists only while an off-chip driver awaits an ack;
        // it is zero for posted drivers and for remote accelerators.
        ThreadingDesign::SyncOs => match (strategy, driver) {
            (AccelerationStrategy::Remote, _) => Cycles::ZERO,
            (_, DriverMode::Posted) => Cycles::ZERO,
            (_, DriverMode::AwaitsAck) => transfer,
        },
        // Eqn (6) keeps (L+Q) on the async throughput path: the host-side
        // driver still moves the (unpipelined) offload across the
        // interface. A remote offload rides the asynchronous network
        // stack, so the transfer happens off the host's cycle budget.
        ThreadingDesign::AsyncSameThread
        | ThreadingDesign::AsyncDistinctThread
        | ThreadingDesign::AsyncNoResponse => match strategy {
            AccelerationStrategy::Remote => Cycles::ZERO,
            _ => transfer,
        },
    };
    ovh.setup
        + transfer_on_path
        + ovh.thread_switch * design.thread_switches_on_throughput_path()
}

fn throughput_overhead_per_offload(
    params: &ModelParams,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> Cycles {
    throughput_overhead_per_offload_raw(params.overheads(), design, strategy, driver)
}

/// Per-offload overhead cycles charged to the request-latency path.
pub(crate) fn latency_overhead_per_offload_raw(
    ovh: crate::params::OffloadOverheads,
    design: ThreadingDesign,
) -> Cycles {
    // The request cannot complete before its data crosses the interface
    // and clears the accelerator queue, regardless of driver behaviour.
    ovh.setup
        + ovh.interface
        + ovh.queueing
        + ovh.thread_switch * design.thread_switches_on_latency_path()
}

fn latency_overhead_per_offload(params: &ModelParams, design: ThreadingDesign) -> Cycles {
    latency_overhead_per_offload_raw(params.overheads(), design)
}

/// Whether the accelerator's operating time appears on the request-latency
/// path for this design/strategy combination.
pub(crate) fn accelerator_time_in_latency(
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
) -> bool {
    design.consumes_response() || strategy.accelerator_time_in_request_latency()
}

/// Evaluates equations (1)–(8) for the given scenario.
///
/// # Examples
///
/// Reproducing the AES-NI case study (Table 6): estimated speedup 15.7%.
///
/// ```
/// use accelerometer::{estimate, AccelerationStrategy, DriverMode, ModelParams, ThreadingDesign};
///
/// let params = ModelParams::builder()
///     .host_cycles(2.0e9)
///     .kernel_fraction(0.165844)
///     .offloads(298_951.0)
///     .setup_cycles(10.0)
///     .interface_cycles(3.0)
///     .peak_speedup(6.0)
///     .build()?;
/// let est = estimate(
///     &params,
///     ThreadingDesign::Sync,
///     AccelerationStrategy::OnChip,
///     DriverMode::Posted,
/// );
/// assert!((est.throughput_gain_percent() - 15.7).abs() < 0.1);
/// # Ok::<(), accelerometer::ModelError>(())
/// ```
#[must_use]
pub fn estimate(
    params: &ModelParams,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> Estimate {
    let c = params.host_cycles();
    let n = params.offloads();
    let alpha = params.kernel_fraction();
    let accel_term = alpha / params.peak_speedup();

    // --- Throughput path: CS ---------------------------------------------
    let mut cs_fraction = 1.0 - alpha;
    if design.accelerator_time_on_throughput_path() {
        cs_fraction += accel_term;
    }
    let ovh_s = throughput_overhead_per_offload(params, design, strategy, driver);
    cs_fraction += n * ovh_s.get() / c.get();

    // --- Latency path: CL -------------------------------------------------
    let mut cl_fraction = 1.0 - alpha;
    // §3: a remote accelerator's operating time shows up in end-to-end
    // application latency, not this microservice's request latency — but
    // only when the host does not wait for the response. If the host
    // consumes the response (sync or async), the round trip is on the
    // request path no matter where the accelerator is.
    if accelerator_time_in_latency(design, strategy) {
        cl_fraction += accel_term;
    }
    let ovh_l = latency_overhead_per_offload(params, design);
    cl_fraction += n * ovh_l.get() / c.get();

    Estimate {
        throughput_speedup: 1.0 / cs_fraction,
        latency_reduction: 1.0 / cl_fraction,
        host_cycles_accelerated: c * cs_fraction,
        request_path_cycles: c * cl_fraction,
    }
}

/// Evaluates the model under a fault/recovery regime described by a
/// [`FaultLoad`](crate::queueing::FaultLoad).
///
/// Two fault terms extend eqn (1), mirroring what the simulator now
/// schedules as real work:
///
/// * **Retry inflation.** Every saga attempt crosses the interface and
///   occupies the accelerator, so the per-offload overhead `o0 + (L+Q)`
///   and the accelerator operating time `α/A` are multiplied by the
///   expected attempts `E[a] = (1 − p^(r+1)) / (1 − p)`. Callers
///   driving the `Q` estimators should likewise inflate the arrival
///   rate with [`FaultLoad::inflated_arrival_rate`].
/// * **Fallback load.** A saga that exhausts its attempts under a
///   fallback policy re-executes the kernel on the host: expected host
///   demand `p_fb · α·C` lands back on the throughput *and* latency
///   paths (`p_fb = p^(r+1)` with fallback, 0 without).
///
/// Retry backoff waits are thread-idle time, not host cycles, so they
/// appear on neither path. With `p = 0` the result is bit-identical to
/// [`estimate`].
#[must_use]
pub fn estimate_with_faults(
    params: &ModelParams,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
    load: &crate::queueing::FaultLoad,
) -> Estimate {
    let c = params.host_cycles();
    let n = params.offloads();
    let alpha = params.kernel_fraction();
    let accel_term = alpha / params.peak_speedup();
    let attempts = load.expected_attempts;
    let fallback_term = load.host_fallback_probability() * alpha;

    // --- Throughput path: CS ---------------------------------------------
    let mut cs_fraction = 1.0 - alpha + fallback_term;
    if design.accelerator_time_on_throughput_path() {
        cs_fraction += accel_term * attempts;
    }
    let ovh_s = throughput_overhead_per_offload(params, design, strategy, driver);
    cs_fraction += n * attempts * ovh_s.get() / c.get();

    // --- Latency path: CL -------------------------------------------------
    let mut cl_fraction = 1.0 - alpha + fallback_term;
    if accelerator_time_in_latency(design, strategy) {
        cl_fraction += accel_term * attempts;
    }
    let ovh_l = latency_overhead_per_offload(params, design);
    cl_fraction += n * attempts * ovh_l.get() / c.get();

    Estimate {
        throughput_speedup: 1.0 / cs_fraction,
        latency_reduction: 1.0 / cl_fraction,
        host_cycles_accelerated: c * cs_fraction,
        request_path_cycles: c * cl_fraction,
    }
}

/// Evaluates the model with an explicit per-offload queueing distribution,
/// replacing the mean-queueing term `n·Q` with `Σᵢ Qᵢ` (§3, eqn (1)
/// discussion).
///
/// `queue_samples` holds the queueing delay observed (or projected) for
/// each offload in the window; its length is used as `n`, overriding
/// `params.offloads()`, and its sum replaces `n·Q`.
#[must_use]
pub fn estimate_with_queue_distribution(
    params: &ModelParams,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
    queue_samples: &[Cycles],
) -> Estimate {
    let mean_q = if queue_samples.is_empty() {
        0.0
    } else {
        queue_samples.iter().map(|q| q.get()).sum::<f64>() / queue_samples.len() as f64
    };
    let adjusted = ModelParams::builder()
        .host_cycles(params.host_cycles().get())
        .kernel_fraction(params.kernel_fraction())
        .offloads(queue_samples.len() as f64)
        .setup_cycles(params.overheads().setup.get())
        .interface_cycles(params.overheads().interface.get())
        .queueing_cycles(mean_q)
        .thread_switch_cycles(params.overheads().thread_switch.get())
        .peak_speedup(params.peak_speedup())
        .build()
        .expect("derived parameters from a valid ModelParams are valid");
    estimate(&adjusted, design, strategy, driver)
}

/// The net-speedup condition for the scenario: `α·C` must exceed the total
/// accelerated cost on the throughput path (§3, after eqns (1), (3), (6)).
///
/// Returns the unaccelerated kernel cycles and the accelerated cost, so
/// callers can report *how far* a design is from profitability.
#[must_use]
pub fn net_speedup_condition(
    params: &ModelParams,
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> (Cycles, Cycles) {
    let unaccelerated = params.kernel_cycles();
    let n = params.offloads();
    let mut accelerated =
        throughput_overhead_per_offload(params, design, strategy, driver) * n;
    if design.accelerator_time_on_throughput_path() {
        accelerated += params.accelerator_cycles();
    }
    (unaccelerated, accelerated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::cycles;

    #[allow(clippy::too_many_arguments)]
    fn params(c: f64, alpha: f64, n: f64, o0: f64, l: f64, q: f64, o1: f64, a: f64) -> ModelParams {
        ModelParams::builder()
            .host_cycles(c)
            .kernel_fraction(alpha)
            .offloads(n)
            .setup_cycles(o0)
            .interface_cycles(l)
            .queueing_cycles(q)
            .thread_switch_cycles(o1)
            .peak_speedup(a)
            .build()
            .unwrap()
    }

    /// Table 6, row 1: AES-NI for Cache1 (Sync, on-chip) → 15.7%.
    #[test]
    fn table6_aes_ni_sync_on_chip() {
        let p = params(2.0e9, 0.165844, 298_951.0, 10.0, 3.0, 0.0, 0.0, 6.0);
        let est = estimate(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
        );
        assert!(
            (est.throughput_gain_percent() - 15.7).abs() < 0.1,
            "got {}",
            est.throughput_gain_percent()
        );
        // Eqn (1): latency reduction equals speedup for Sync.
        assert!((est.latency_reduction - est.throughput_speedup).abs() < 1e-12);
    }

    /// Table 6, row 2: off-chip encryption for Cache3 (Async, no response)
    /// → 8.6%.
    #[test]
    fn table6_encryption_async_off_chip() {
        let p = params(2.3e9, 0.19154, 101_863.0, 0.0, 2_530.0, 0.0, 0.0, 27.0);
        let est = estimate(
            &p,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        assert!(
            (est.throughput_gain_percent() - 8.6).abs() < 0.1,
            "got {}",
            est.throughput_gain_percent()
        );
    }

    /// Table 6, row 3: remote inference for Ads1 (Async, distinct response
    /// thread, remote CPU with A = 1) → 72.39%.
    #[test]
    fn table6_remote_inference() {
        let p = params(2.5e9, 0.52, 10.0, 25_000_000.0, 0.0, 0.0, 12_500.0, 1.0);
        let est = estimate(
            &p,
            ThreadingDesign::AsyncDistinctThread,
            AccelerationStrategy::Remote,
            DriverMode::Posted,
        );
        assert!(
            (est.throughput_gain_percent() - 72.39).abs() < 0.05,
            "got {}",
            est.throughput_gain_percent()
        );
    }

    /// Eqn (3) with 2·o1: hand-computed Sync-OS case.
    #[test]
    fn sync_os_speedup_matches_hand_computation() {
        // C=1e9, α=0.2, n=1000, o0=100, L=200, Q=50, o1=500, A=10.
        let p = params(1e9, 0.2, 1000.0, 100.0, 200.0, 50.0, 500.0, 10.0);
        let est = estimate(
            &p,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        // denom = (1-0.2) + 1000*(100+200+50+1000)/1e9 = 0.8 + 1.35e-3.
        let expected = 1.0 / (0.8 + 1000.0 * 1350.0 / 1e9);
        assert!((est.throughput_speedup - expected).abs() < 1e-12);
        // Eqn (5): latency denom = 0.8 + 0.02 + 1000*(100+200+50+500)/1e9.
        let expected_lat = 1.0 / (0.8 + 0.02 + 1000.0 * 850.0 / 1e9);
        assert!((est.latency_reduction - expected_lat).abs() < 1e-12);
    }

    /// Sync-OS with a posted driver removes (L+Q) from the throughput path
    /// but not the latency path.
    #[test]
    fn sync_os_posted_driver_drops_transfer_from_throughput_only() {
        let p = params(1e9, 0.2, 1000.0, 100.0, 200.0, 50.0, 500.0, 10.0);
        let waits = estimate(
            &p,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        let posted = estimate(
            &p,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::OffChip,
            DriverMode::Posted,
        );
        assert!(posted.throughput_speedup > waits.throughput_speedup);
        assert!((posted.latency_reduction - waits.latency_reduction).abs() < 1e-12);
    }

    /// Sync-OS to a remote accelerator drops (L+Q) even when the driver
    /// nominally awaits acknowledgements.
    #[test]
    fn sync_os_remote_drops_transfer() {
        let p = params(1e9, 0.2, 1000.0, 100.0, 200.0, 50.0, 500.0, 10.0);
        let remote = estimate(
            &p,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::Remote,
            DriverMode::AwaitsAck,
        );
        let expected = 1.0 / (0.8 + 1000.0 * (100.0 + 2.0 * 500.0) / 1e9);
        assert!((remote.throughput_speedup - expected).abs() < 1e-12);
    }

    /// Eqn (6) vs eqn (8): async same-thread latency includes αC/A, and
    /// the speedup does not.
    #[test]
    fn async_same_thread_matches_eqns_6_and_8() {
        let p = params(1e9, 0.3, 2000.0, 10.0, 100.0, 20.0, 999.0, 5.0);
        let est = estimate(
            &p,
            ThreadingDesign::AsyncSameThread,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        let per_offload = 10.0 + 100.0 + 20.0;
        let expected_speedup = 1.0 / (0.7 + 2000.0 * per_offload / 1e9);
        let expected_latency = 1.0 / (0.7 + 0.3 / 5.0 + 2000.0 * per_offload / 1e9);
        assert!((est.throughput_speedup - expected_speedup).abs() < 1e-12);
        assert!((est.latency_reduction - expected_latency).abs() < 1e-12);
        // o1 must not appear anywhere for same-thread async.
        let p_no_o1 = params(1e9, 0.3, 2000.0, 10.0, 100.0, 20.0, 0.0, 5.0);
        let est_no_o1 = estimate(
            &p_no_o1,
            ThreadingDesign::AsyncSameThread,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        assert_eq!(est.throughput_speedup, est_no_o1.throughput_speedup);
    }

    /// Async no-response to a *remote* accelerator: latency reduction uses
    /// the eqn (6) form (no αC/A term).
    #[test]
    fn async_no_response_remote_latency_excludes_accelerator_time() {
        let p = params(1e9, 0.3, 2000.0, 10.0, 0.0, 0.0, 0.0, 5.0);
        let remote = estimate(
            &p,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::Remote,
            DriverMode::Posted,
        );
        assert!((remote.latency_reduction - remote.throughput_speedup).abs() < 1e-12);
        let off_chip = estimate(
            &p,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
            DriverMode::Posted,
        );
        assert!(off_chip.latency_reduction < off_chip.throughput_speedup);
    }

    #[test]
    fn freed_cycle_fraction_matches_case_study_1() {
        // §4 case study 1: AES-NI frees up 12.8% of Cache1's cycles — the
        // kernel drops from α·C to α·C/A plus offload overheads.
        let p = params(2.0e9, 0.165844, 298_951.0, 10.0, 3.0, 0.0, 0.0, 6.0);
        let est = estimate(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
        );
        let freed = est.freed_cycle_fraction(&p);
        assert!((freed - 0.128).abs() < 0.01, "freed {freed}");
    }

    #[test]
    fn queue_distribution_matches_mean_queueing() {
        let p = params(1e9, 0.2, 4.0, 10.0, 100.0, 25.0, 0.0, 5.0);
        let mean_est = estimate(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        let samples = [cycles(0.0), cycles(50.0), cycles(10.0), cycles(40.0)];
        let dist_est = estimate_with_queue_distribution(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
            &samples,
        );
        // Same mean (25 cycles) and same n (4) → identical estimates.
        assert!((dist_est.throughput_speedup - mean_est.throughput_speedup).abs() < 1e-12);
    }

    #[test]
    fn net_speedup_condition_agrees_with_estimate() {
        let p = params(1e9, 0.01, 1_000_000.0, 50.0, 100.0, 0.0, 0.0, 10.0);
        let (unacc, acc) = net_speedup_condition(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        let est = estimate(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
            DriverMode::AwaitsAck,
        );
        // Overheads (150 cycles × 1e6 offloads) dwarf the 1e7 kernel
        // cycles: acceleration must hurt, and the condition must agree.
        assert!(acc > unacc);
        assert!(!est.improves_throughput());
    }

    #[test]
    fn healthy_fault_load_degenerates_to_estimate() {
        // p = 0 → one attempt, no fallback: bit-identical to the
        // fault-free model on every design × strategy combination.
        let p = params(2.0e9, 0.165844, 298_951.0, 10.0, 3.0, 25.0, 40.0, 6.0);
        let load = crate::queueing::fault_load(0.0, 3, true).unwrap();
        for design in ThreadingDesign::ALL {
            for strategy in AccelerationStrategy::ALL {
                let healthy = estimate(&p, design, strategy, DriverMode::AwaitsAck);
                let faulted =
                    estimate_with_faults(&p, design, strategy, DriverMode::AwaitsAck, &load);
                assert_eq!(healthy, faulted, "{design:?}/{strategy:?}");
            }
        }
    }

    #[test]
    fn fault_terms_match_hand_computation() {
        // C = 1e9, α = 0.4, n = 1000, o0+L = 13, A = 4; p = 0.5, r = 1,
        // fallback on → E[a] = 1.5, p_fb = 0.25.
        let p = params(1e9, 0.4, 1_000.0, 10.0, 3.0, 0.0, 0.0, 4.0);
        let load = crate::queueing::fault_load(0.5, 1, true).unwrap();
        let est = estimate_with_faults(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
            &load,
        );
        // CS/C = (1 − α) + p_fb·α + (α/A)·E[a] + n·E[a]·13/C
        let expected =
            0.6 + 0.25 * 0.4 + 0.1 * 1.5 + 1_000.0 * 1.5 * 13.0 / 1e9;
        assert!(
            (est.throughput_speedup - 1.0 / expected).abs() < 1e-12,
            "speedup {} vs {}",
            est.throughput_speedup,
            1.0 / expected
        );
        // Retries and fallback can only hurt: strictly worse than the
        // healthy estimate on both paths.
        let healthy = estimate(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
        );
        assert!(est.throughput_speedup < healthy.throughput_speedup);
        assert!(est.latency_reduction < healthy.latency_reduction);
        // Without fallback the host sheds the exhausted work instead of
        // re-executing it: higher throughput than with fallback (the
        // goodput cost is not the model's axis).
        let abandon = crate::queueing::fault_load(0.5, 1, false).unwrap();
        let est_abandon = estimate_with_faults(
            &p,
            ThreadingDesign::Sync,
            AccelerationStrategy::OnChip,
            DriverMode::Posted,
            &abandon,
        );
        assert!(est_abandon.throughput_speedup > est.throughput_speedup);
    }

    #[test]
    fn gain_percent_helpers() {
        let est = Estimate {
            throughput_speedup: 1.157,
            latency_reduction: 1.05,
            host_cycles_accelerated: cycles(1.0),
            request_path_cycles: cycles(1.0),
        };
        assert!((est.throughput_gain_percent() - 15.7).abs() < 1e-9);
        assert!((est.latency_gain_percent() - 5.0).abs() < 1e-9);
        assert!(est.improves_throughput());
        assert!(est.reduces_latency());
    }

    #[test]
    fn scenario_facade_defaults_driver_from_strategy() {
        let p = params(2.3e9, 0.19154, 101_863.0, 0.0, 2_530.0, 0.0, 0.0, 27.0);
        let s = Scenario::new(
            p,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::OffChip,
        );
        assert_eq!(s.driver, DriverMode::AwaitsAck);
        let est = s.estimate();
        assert!((est.throughput_gain_percent() - 8.6).abs() < 0.1);
        let s2 = Scenario::new(p, ThreadingDesign::Sync, AccelerationStrategy::Remote)
            .with_driver(DriverMode::AwaitsAck);
        assert_eq!(s2.driver, DriverMode::AwaitsAck);
    }
}
